//! Nonblocking communication requests (`MPI_Isend` / `MPI_Irecv`
//! equivalents).
//!
//! Sends in this substrate are buffered and complete immediately, so
//! [`Comm::isend`] exists for API parity and returns an already-complete
//! request. [`Comm::irecv`] posts a receive that can be tested without
//! blocking and waited on later — the overlap pattern iterative solvers use
//! to hide halo-exchange latency.

use crate::comm::Comm;
use crate::datum::Pod;

/// Handle to a posted nonblocking send. Complete on creation (sends are
/// buffered); `wait` exists so code ported from MPI keeps its shape.
#[derive(Debug)]
pub struct SendRequest(());

impl SendRequest {
    /// Complete the send (a no-op; the payload was buffered at post time).
    pub fn wait(self) {}

    /// Nonblocking completion test — always true.
    pub fn test(&self) -> bool {
        true
    }
}

/// Handle to a posted nonblocking receive from a fixed `(source, tag)`.
pub struct RecvRequest<T: Pod> {
    comm: Comm,
    src: usize,
    tag: u32,
    done: Option<Vec<T>>,
}

impl<T: Pod> RecvRequest<T> {
    /// Nonblocking test: if the matching message has arrived, consume it
    /// and return true. After `test` returns true, `wait` returns the data
    /// without blocking.
    pub fn test(&mut self) -> bool {
        if self.done.is_some() {
            return true;
        }
        if self.comm.iprobe(Some(self.src), Some(self.tag)) {
            self.done = Some(self.comm.recv(self.src, self.tag));
            true
        } else {
            false
        }
    }

    /// Block until the message arrives and return it.
    pub fn wait(mut self) -> Vec<T> {
        match self.done.take() {
            Some(v) => v,
            None => self.comm.recv(self.src, self.tag),
        }
    }
}

impl Comm {
    /// Post a nonblocking send (completes immediately; returned request is
    /// for MPI-shaped code).
    pub fn isend<T: Pod>(&self, dst: usize, tag: u32, data: &[T]) -> SendRequest {
        self.send(dst, tag, data);
        SendRequest(())
    }

    /// Post a nonblocking receive from `(src, tag)`.
    pub fn irecv<T: Pod>(&self, src: usize, tag: u32) -> RecvRequest<T> {
        assert!(src < self.size(), "source rank {src} out of range");
        RecvRequest {
            comm: self.clone(),
            src,
            tag,
            done: None,
        }
    }
}

#[cfg(test)]
mod tests {

    use crate::{NetModel, Universe};

    #[test]
    fn overlap_computation_with_communication() {
        Universe::new(2, 1, NetModel::ideal())
            .launch(2, None, "overlap", |comm| {
                if comm.rank() == 0 {
                    let req = comm.isend(1, 5, &[1.0f64, 2.0]);
                    assert!(req.test());
                    req.wait();
                } else {
                    let mut req = comm.irecv::<f64>(0, 5);
                    // "Compute" while the message is in flight; test drains.
                    let mut spins = 0;
                    while !req.test() {
                        spins += 1;
                        std::thread::yield_now();
                        assert!(spins < 1_000_000, "message never arrived");
                    }
                    assert_eq!(req.wait(), vec![1.0, 2.0]);
                }
            })
            .join_ok();
    }

    #[test]
    fn wait_without_test_blocks_until_arrival() {
        Universe::new(2, 1, NetModel::ideal())
            .launch(2, None, "wait", |comm| {
                if comm.rank() == 0 {
                    comm.advance(1.0);
                    comm.send(1, 9, &[7u64]);
                } else {
                    let req = comm.irecv::<u64>(0, 9);
                    assert_eq!(req.wait(), vec![7]);
                }
            })
            .join_ok();
    }

    #[test]
    fn test_does_not_steal_other_tags() {
        Universe::new(2, 1, NetModel::ideal())
            .launch(2, None, "tags", |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, &[10u64]);
                    comm.send(1, 2, &[20u64]);
                } else {
                    let mut r2 = comm.irecv::<u64>(0, 2);
                    // Poll until tag-2 arrives; tag-1 must stay receivable.
                    while !r2.test() {
                        std::thread::yield_now();
                    }
                    assert_eq!(r2.wait(), vec![20]);
                    assert_eq!(comm.recv::<u64>(0, 1), vec![10]);
                }
            })
            .join_ok();
    }
}
