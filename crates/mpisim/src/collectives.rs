//! Collective operations over an intracommunicator.
//!
//! All collectives are implemented from point-to-point messages using the
//! classic binomial-tree algorithms, so their virtual-time cost follows the
//! `O(log p)` depth a real MPI implementation would exhibit.

use bytes::Bytes;

use crate::comm::{Comm, TAG_ALLGATHER, TAG_ALLTOALL, TAG_BARRIER, TAG_BCAST, TAG_GATHER, TAG_REDUCE, TAG_SCATTER};
use crate::datum::{from_bytes, to_bytes, Pod, Reducible};

/// Elementwise reduction operator for [`Comm::reduce`] / [`Comm::allreduce`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn combine<T: Reducible>(self, acc: &mut [T], other: &[T]) {
        assert_eq!(
            acc.len(),
            other.len(),
            "reduction buffers disagree on length"
        );
        for (a, &b) in acc.iter_mut().zip(other) {
            *a = match self {
                ReduceOp::Sum => a.add(b),
                ReduceOp::Max => {
                    if b > *a {
                        b
                    } else {
                        *a
                    }
                }
                ReduceOp::Min => {
                    if b < *a {
                        b
                    } else {
                        *a
                    }
                }
            };
        }
    }
}

impl Comm {
    /// Binomial-tree broadcast of raw bytes rooted at `root`.
    pub(crate) fn bcast_raw(&self, root: usize, tag: u32, mut payload: Bytes) -> Bytes {
        let p = self.size();
        if p == 1 {
            return payload;
        }
        let vrank = (self.rank + p - root) % p;
        // Receive phase: find the bit where we hear from our parent.
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % p;
                let (_, _, data) = self.recv_raw(Some(src), Some(tag));
                payload = data;
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children at all lower bits.
        mask >>= 1;
        while mask > 0 {
            if vrank & mask == 0 && (vrank | mask) < p {
                let dst = ((vrank | mask) + root) % p;
                self.send_raw(dst, tag, payload.clone());
            }
            mask >>= 1;
        }
        payload
    }

    /// Broadcast `data` from `root` to all ranks; every rank returns the
    /// root's buffer.
    pub fn bcast<T: Pod>(&self, root: usize, data: &[T]) -> Vec<T> {
        reshape_telemetry::incr("mpisim.collectives.bcast", 1);
        let payload = if self.rank == root {
            to_bytes(data)
        } else {
            Bytes::new()
        };
        from_bytes(&self.bcast_raw(root, TAG_BCAST, payload))
    }

    /// Synchronize all ranks (and their virtual clocks: every rank leaves the
    /// barrier at a time ≥ every rank's entry time).
    pub fn barrier(&self) {
        reshape_telemetry::incr("mpisim.collectives.barrier", 1);
        // Reduce an empty message to rank 0, then broadcast back down.
        let p = self.size();
        if p == 1 {
            return;
        }
        let vrank = self.rank;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                self.send_raw(vrank - mask, TAG_BARRIER, Bytes::new());
                break;
            }
            if (vrank | mask) < p {
                let (_, _, _) = self.recv_raw(Some(vrank | mask), Some(TAG_BARRIER));
            }
            mask <<= 1;
        }
        self.bcast_raw(0, TAG_BARRIER, Bytes::new());
    }

    /// Elementwise reduction to `root`. Returns `Some(result)` on the root,
    /// `None` elsewhere.
    pub fn reduce<T: Reducible>(&self, root: usize, op: ReduceOp, data: &[T]) -> Option<Vec<T>> {
        reshape_telemetry::incr("mpisim.collectives.reduce", 1);
        let p = self.size();
        let mut acc = data.to_vec();
        let vrank = (self.rank + p - root) % p;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let dst = (vrank - mask + root) % p;
                self.send_raw(dst, TAG_REDUCE, to_bytes(&acc));
                break;
            }
            if (vrank | mask) < p {
                let src = ((vrank | mask) + root) % p;
                let (_, _, payload) = self.recv_raw(Some(src), Some(TAG_REDUCE));
                let other: Vec<T> = from_bytes(&payload);
                op.combine(&mut acc, &other);
            }
            mask <<= 1;
        }
        if self.rank == root {
            Some(acc)
        } else {
            None
        }
    }

    /// Reduction whose result is returned on every rank.
    pub fn allreduce<T: Reducible>(&self, op: ReduceOp, data: &[T]) -> Vec<T> {
        reshape_telemetry::incr("mpisim.collectives.allreduce", 1);
        let reduced = self.reduce(0, op, data);
        let payload = match &reduced {
            Some(v) => to_bytes(v),
            None => Bytes::new(),
        };
        from_bytes(&self.bcast_raw(0, TAG_BCAST, payload))
    }

    /// Gather variable-length contributions at `root`, in rank order.
    /// Returns `Some(per-rank vectors)` on the root, `None` elsewhere.
    pub fn gather<T: Pod>(&self, root: usize, data: &[T]) -> Option<Vec<Vec<T>>> {
        reshape_telemetry::incr("mpisim.collectives.gather", 1);
        if self.rank == root {
            let mut out = Vec::with_capacity(self.size());
            for r in 0..self.size() {
                if r == root {
                    out.push(data.to_vec());
                } else {
                    let (_, _, payload) = self.recv_raw(Some(r), Some(TAG_GATHER));
                    out.push(from_bytes(&payload));
                }
            }
            Some(out)
        } else {
            self.send_raw(root, TAG_GATHER, to_bytes(data));
            None
        }
    }

    /// Gather variable-length contributions on every rank.
    pub fn allgather<T: Pod>(&self, data: &[T]) -> Vec<Vec<T>> {
        reshape_telemetry::incr("mpisim.collectives.allgather", 1);
        let gathered = self.gather(0, data);
        // Flatten with a length header so one broadcast carries everything.
        let encoded: Vec<u8> = match &gathered {
            Some(parts) => {
                let mut buf: Vec<u64> = Vec::with_capacity(1 + parts.len());
                buf.push(parts.len() as u64);
                for p in parts {
                    buf.push((p.len() * std::mem::size_of::<T>()) as u64);
                }
                let mut bytes: Vec<u8> = to_bytes(&buf).to_vec();
                for p in parts {
                    bytes.extend_from_slice(&to_bytes(p));
                }
                bytes
            }
            None => Vec::new(),
        };
        let all = self.bcast_raw(0, TAG_ALLGATHER, Bytes::from(encoded));
        // Decode.
        let nparts = u64::from_le_bytes(all[0..8].try_into().expect("header")) as usize;
        let mut lens = Vec::with_capacity(nparts);
        for i in 0..nparts {
            let off = 8 + i * 8;
            lens.push(u64::from_le_bytes(all[off..off + 8].try_into().expect("len")) as usize);
        }
        let mut out = Vec::with_capacity(nparts);
        let mut off = 8 + nparts * 8;
        for len in lens {
            out.push(from_bytes(&all.slice(off..off + len)));
            off += len;
        }
        out
    }

    /// Scatter per-rank slices from `root`; rank i receives `parts[i]`.
    /// Non-roots pass `None`.
    pub fn scatter<T: Pod>(&self, root: usize, parts: Option<&[Vec<T>]>) -> Vec<T> {
        reshape_telemetry::incr("mpisim.collectives.scatter", 1);
        if self.rank == root {
            let parts = parts.expect("root must supply scatter data");
            assert_eq!(parts.len(), self.size(), "need one part per rank");
            for (r, part) in parts.iter().enumerate() {
                if r != root {
                    self.send_raw(r, TAG_SCATTER, to_bytes(part));
                }
            }
            parts[root].clone()
        } else {
            let (_, _, payload) = self.recv_raw(Some(root), Some(TAG_SCATTER));
            from_bytes(&payload)
        }
    }

    /// Personalized all-to-all exchange: rank i sends `parts[j]` to rank j
    /// and returns the vector of contributions received, indexed by source.
    pub fn alltoallv<T: Pod>(&self, parts: &[Vec<T>]) -> Vec<Vec<T>> {
        reshape_telemetry::incr("mpisim.collectives.alltoallv", 1);
        assert_eq!(parts.len(), self.size(), "need one part per rank");
        // All sends are buffered, so issue them first, then receive in rank
        // order — deadlock-free.
        for (r, part) in parts.iter().enumerate() {
            if r != self.rank {
                self.send_raw(r, TAG_ALLTOALL, to_bytes(part));
            }
        }
        let mut out = Vec::with_capacity(self.size());
        for (r, part) in parts.iter().enumerate() {
            if r == self.rank {
                out.push(part.clone());
            } else {
                let (_, _, payload) = self.recv_raw(Some(r), Some(TAG_ALLTOALL));
                out.push(from_bytes(&payload));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetModel, Universe};

    fn run(p: usize, f: impl Fn(Comm) + Send + Sync + 'static) {
        Universe::new(p, 1, NetModel::ideal())
            .launch(p, None, "coll", f)
            .join_ok();
    }

    #[test]
    fn bcast_from_every_root() {
        for root in 0..5 {
            run(5, move |comm| {
                let data = if comm.rank() == root {
                    vec![root as f64; 3]
                } else {
                    vec![]
                };
                let got = comm.bcast(root, &data);
                assert_eq!(got, vec![root as f64; 3]);
            });
        }
    }

    #[test]
    fn bcast_single_rank() {
        run(1, |comm| {
            let got = comm.bcast(0, &[7u32]);
            assert_eq!(got, vec![7]);
        });
    }

    #[test]
    fn bcast_non_power_of_two() {
        run(7, |comm| {
            let data = if comm.rank() == 3 { vec![99u64] } else { vec![] };
            assert_eq!(comm.bcast(3, &data), vec![99]);
        });
    }

    #[test]
    fn reduce_sum() {
        run(6, |comm| {
            let mine = vec![comm.rank() as f64, 1.0];
            let got = comm.reduce(2, ReduceOp::Sum, &mine);
            if comm.rank() == 2 {
                assert_eq!(got.unwrap(), vec![15.0, 6.0]);
            } else {
                assert!(got.is_none());
            }
        });
    }

    #[test]
    fn allreduce_max_min() {
        run(5, |comm| {
            let mine = vec![comm.rank() as i64];
            assert_eq!(comm.allreduce(ReduceOp::Max, &mine), vec![4]);
            assert_eq!(comm.allreduce(ReduceOp::Min, &mine), vec![0]);
        });
    }

    #[test]
    fn gather_preserves_rank_order() {
        run(4, |comm| {
            let mine = vec![comm.rank() as u64; comm.rank() + 1];
            let got = comm.gather(0, &mine);
            if comm.rank() == 0 {
                let parts = got.unwrap();
                for (r, part) in parts.iter().enumerate() {
                    assert_eq!(part, &vec![r as u64; r + 1]);
                }
            }
        });
    }

    #[test]
    fn allgather_varying_lengths() {
        run(4, |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            let got = comm.allgather(&mine);
            assert_eq!(got.len(), 4);
            for (r, part) in got.iter().enumerate() {
                assert_eq!(part, &vec![r as f64; r + 1]);
            }
        });
    }

    #[test]
    fn allgather_with_empty_contribution() {
        run(3, |comm| {
            let mine: Vec<u32> = if comm.rank() == 1 { vec![] } else { vec![comm.rank() as u32] };
            let got = comm.allgather(&mine);
            assert_eq!(got[0], vec![0]);
            assert!(got[1].is_empty());
            assert_eq!(got[2], vec![2]);
        });
    }

    #[test]
    fn scatter_distributes_parts() {
        run(4, |comm| {
            let parts: Option<Vec<Vec<u64>>> = if comm.rank() == 1 {
                Some((0..4).map(|r| vec![r as u64 * 10]).collect())
            } else {
                None
            };
            let got = comm.scatter(1, parts.as_deref());
            assert_eq!(got, vec![comm.rank() as u64 * 10]);
        });
    }

    #[test]
    fn alltoallv_transpose() {
        run(4, |comm| {
            let parts: Vec<Vec<u64>> = (0..4)
                .map(|dst| vec![(comm.rank() * 10 + dst) as u64])
                .collect();
            let got = comm.alltoallv(&parts);
            for (src, part) in got.iter().enumerate() {
                assert_eq!(part, &vec![(src * 10 + comm.rank()) as u64]);
            }
        });
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        Universe::new(3, 1, NetModel::ideal())
            .launch(3, None, "barrier", |comm| {
                if comm.rank() == 1 {
                    comm.advance(5.0);
                }
                comm.barrier();
                assert!(comm.vtime() >= 5.0, "vtime {} < 5.0", comm.vtime());
            })
            .join_ok();
    }

    #[test]
    fn consecutive_collectives_do_not_interfere() {
        run(4, |comm| {
            for i in 0..10u64 {
                let data = if comm.rank() == 0 { vec![i] } else { vec![] };
                assert_eq!(comm.bcast(0, &data), vec![i]);
                let s = comm.allreduce(ReduceOp::Sum, &[i]);
                assert_eq!(s, vec![4 * i]);
            }
        });
    }
}
