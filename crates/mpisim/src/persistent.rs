//! Persistent communication requests.
//!
//! The paper's redistribution engine transfers each communication-schedule
//! step "using MPI's persistent communication functions": the (peer, tag)
//! envelope is set up once and re-armed every step, amortizing matching
//! setup. These types model that usage pattern — fixed endpoints created
//! before the schedule runs, fired once per step — and let the executor
//! reuse receive buffers across steps.

use crate::comm::Comm;
use crate::datum::Pod;

/// A reusable send channel to a fixed `(destination, tag)`.
pub struct PersistentSend {
    comm: Comm,
    dst: usize,
    tag: u32,
}

impl PersistentSend {
    pub fn new(comm: &Comm, dst: usize, tag: u32) -> Self {
        assert!(dst < comm.size(), "destination {dst} out of range");
        PersistentSend {
            comm: comm.clone(),
            dst,
            tag,
        }
    }

    pub fn dst(&self) -> usize {
        self.dst
    }

    /// Arm and fire the request with this step's payload.
    pub fn start<T: Pod>(&self, data: &[T]) {
        self.comm.send(self.dst, self.tag, data);
    }
}

/// A reusable receive channel from a fixed `(source, tag)`.
pub struct PersistentRecv {
    comm: Comm,
    src: usize,
    tag: u32,
}

impl PersistentRecv {
    pub fn new(comm: &Comm, src: usize, tag: u32) -> Self {
        assert!(src < comm.size(), "source {src} out of range");
        PersistentRecv {
            comm: comm.clone(),
            src,
            tag,
        }
    }

    pub fn src(&self) -> usize {
        self.src
    }

    /// Complete the receive, allocating a fresh buffer.
    pub fn wait<T: Pod>(&self) -> Vec<T> {
        self.comm.recv(self.src, self.tag)
    }

    /// Complete the receive into a reused buffer.
    pub fn wait_into<T: Pod>(&self, out: &mut Vec<T>) {
        self.comm.recv_into(self.src, self.tag, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetModel, Universe};

    #[test]
    fn persistent_pair_reused_across_steps() {
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.launch(2, None, "persistent", |comm| {
            if comm.rank() == 0 {
                let req = PersistentSend::new(&comm, 1, 17);
                for step in 0..5u64 {
                    req.start(&[step, step * step]);
                }
            } else {
                let req = PersistentRecv::new(&comm, 0, 17);
                let mut buf: Vec<u64> = Vec::new();
                for step in 0..5u64 {
                    req.wait_into(&mut buf);
                    assert_eq!(buf, vec![step, step * step]);
                }
            }
        })
        .join_ok();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_destination_rejected_at_setup() {
        let uni = Universe::new(1, 1, NetModel::ideal());
        uni.launch(1, None, "bad", |comm| {
            let _ = PersistentSend::new(&comm, 5, 0);
        })
        .join_ok();
    }
}
