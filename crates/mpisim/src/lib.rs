//! # reshape-mpisim — a simulated MPI-2 substrate with dynamic process management
//!
//! The ReSHAPE paper (Sudarsan & Ribbens, ICPP 2007) resizes running MPI
//! applications with `MPI_Comm_spawn_multiple` and intercommunicator merges.
//! No mature Rust MPI binding supports dynamic process management, and the
//! paper's 50-node cluster is unavailable, so this crate provides an
//! in-process substitute that exercises the same code paths:
//!
//! * **Ranks are OS threads.** A [`Universe`] models a homogeneous cluster of
//!   compute nodes; process groups are launched onto (virtual) nodes and
//!   communicate through communicators ([`Comm`]).
//! * **MPI semantics.** Point-to-point messages are matched by
//!   `(communicator, source, tag)` with non-overtaking FIFO order per source,
//!   exactly like MPI. Collectives (barrier, broadcast, reduce, allreduce,
//!   gather, scatter, all-to-all) are built from point-to-point trees.
//! * **Dynamic process management.** [`Comm::spawn`] launches new ranks and
//!   returns an [`InterComm`]; [`InterComm::merge`] produces the expanded
//!   intracommunicator — the exact mechanism ReSHAPE's resizing library uses
//!   to grow an application. Shrinking is the reverse: ranks outside the
//!   retained subset simply leave the computation and terminate.
//! * **Virtual time.** Every process carries a virtual clock advanced by a
//!   configurable network cost model ([`NetModel`]: per-message latency +
//!   bytes/bandwidth) and by explicit [`Comm::advance`] calls for modeled
//!   computation. Message causality (a receive cannot complete before the
//!   matching send) makes virtual timestamps deterministic, which the
//!   ReSHAPE scheduler tests rely on.
//!
//! The crate is deliberately synchronous and single-machine: it is a
//! *substrate for reproducing scheduling research*, not a production MPI.
//!
//! ## Quick example
//!
//! ```
//! use reshape_mpisim::{Universe, NetModel};
//!
//! let uni = Universe::new(4, 2, NetModel::ideal());
//! let h = uni.launch(4, None, "ring", |comm| {
//!     let next = (comm.rank() + 1) % comm.size();
//!     let prev = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send(next, 7, &[comm.rank() as u64]);
//!     let got: Vec<u64> = comm.recv(prev, 7);
//!     assert_eq!(got, vec![prev as u64]);
//! });
//! h.join_ok();
//! ```

mod comm;
mod collectives;
mod datum;
mod endpoint;
mod fault;
mod net;
mod persistent;
mod request;
mod router;
mod spawn;
mod universe;

pub use collectives::ReduceOp;
pub use comm::{Comm, CommStats, Group, NodeId, TAG_CTRL_BASE};
pub use datum::{from_bytes, to_bytes, Pod, Reducible};
pub use net::NetModel;
pub use persistent::{PersistentRecv, PersistentSend};
pub use request::{RecvRequest, SendRequest};
pub use router::ProcId;
pub use spawn::{InterComm, SpawnCtx};
pub use universe::{GroupHandle, ProcEvent, ProcStatus, Universe};

/// Wildcard source selector for [`Comm::recv_match`].
pub const ANY_SOURCE: Option<usize> = None;
/// Wildcard tag selector for [`Comm::recv_match`].
pub const ANY_TAG: Option<u32> = None;
