//! Dynamic process management: `MPI_Comm_spawn_multiple` +
//! `MPI_Intercomm_merge`, the mechanism ReSHAPE's resizing library uses to
//! grow an application's processor set without restarting it.

use std::sync::Arc;

use bytes::Bytes;

use crate::comm::{Comm, Group, NodeId, TAG_MERGE, TAG_SPAWN};
use crate::datum::{from_bytes, to_bytes};
use crate::router::{Envelope, ProcId};
use crate::universe::UniverseCore;

/// What a dynamically spawned process receives on startup: its own world
/// communicator (the set of processes spawned together) and the
/// intercommunicator back to its parents.
pub struct SpawnCtx {
    pub world: Comm,
    pub parent: InterComm,
}

/// An intercommunicator: two disjoint groups (the spawning parents — the
/// *low* group — and the spawned children — the *high* group) that can
/// message each other and merge into a single intracommunicator.
pub struct InterComm {
    pub(crate) id: u64,
    /// This side's intracommunicator.
    pub(crate) local: Comm,
    /// The other side's group.
    pub(crate) remote: Arc<Group>,
    /// True on the parent (spawning) side; parents occupy the low ranks of a
    /// merged communicator.
    pub(crate) is_low: bool,
}

impl InterComm {
    /// This side's intracommunicator.
    pub fn local(&self) -> &Comm {
        &self.local
    }

    /// Number of processes on the other side.
    pub fn remote_size(&self) -> usize {
        self.remote.size()
    }

    /// Send to a rank of the remote group.
    pub fn send_remote<T: crate::Pod>(&self, dst: usize, tag: u32, data: &[T]) {
        self.send_remote_raw(dst, tag, to_bytes(data));
    }

    fn send_remote_raw(&self, dst: usize, tag: u32, payload: Bytes) {
        let core = self.local.core();
        let arrival = {
            let mut ep = self.local.ep.borrow_mut();
            ep.now += core.net.send_cost(payload.len());
            ep.now + core.net.latency
        };
        core.fault.deliver_faulty(
            &core.router,
            self.remote.members[dst],
            Envelope {
                comm: self.id,
                src: self.local.rank(),
                tag,
                arrival,
                payload,
            },
        );
    }

    /// Non-blocking probe for a pending message from remote rank `src` with
    /// tag `tag`. Unlike [`InterComm::recv_remote`] this never blocks, so
    /// control protocols (e.g. an ack/retransmit handshake over a lossy
    /// wire) can poll without committing to a receive.
    pub fn iprobe_remote(&self, src: usize, tag: u32) -> bool {
        self.local
            .ep
            .borrow_mut()
            .iprobe(self.id, Some(src), Some(tag))
    }

    /// Receive from a rank of the remote group.
    pub fn recv_remote<T: crate::Pod>(&self, src: usize, tag: u32) -> Vec<T> {
        let core = self.local.core();
        let env = self
            .local
            .ep
            .borrow_mut()
            .recv_match(self.id, Some(src), Some(tag), &core.net);
        from_bytes(&env.payload)
    }

    /// Merge both sides into one intracommunicator, low (parent) group
    /// first. Collective over every process on both sides. Ends with a
    /// barrier so virtual clocks are synchronized across the expanded set —
    /// matching the paper's "merge the new and old BLACS context" step.
    pub fn merge(&self) -> Comm {
        let core = Arc::clone(self.local.core());
        // Agree on the merged communicator id: the low-side root allocates
        // and forwards it to the high-side root; each root broadcasts
        // locally.
        let payload = if self.local.rank() == 0 {
            let id = if self.is_low {
                let id = core.router.alloc_comm_id();
                self.send_remote(0, TAG_MERGE, &[id]);
                id
            } else {
                self.recv_remote::<u64>(0, TAG_MERGE)[0]
            };
            to_bytes(&[id])
        } else {
            Bytes::new()
        };
        let merged_id = from_bytes::<u64>(&self.local.bcast_raw(0, TAG_MERGE, payload))[0];
        let (low, high) = if self.is_low {
            (self.local.group(), &self.remote)
        } else {
            (&self.remote, self.local.group())
        };
        let mut members = low.members.clone();
        members.extend_from_slice(&high.members);
        let mut nodes = low.nodes.clone();
        nodes.extend_from_slice(&high.nodes);
        let rank = if self.is_low {
            self.local.rank()
        } else {
            low.size() + self.local.rank()
        };
        let merged = Comm {
            group: Arc::new(Group {
                id: merged_id,
                members,
                nodes,
            }),
            rank,
            ep: std::rc::Rc::clone(&self.local.ep),
            core,
            stats: std::rc::Rc::default(),
        };
        merged.barrier();
        merged
    }
}

impl Comm {
    /// Collectively spawn `n` new processes running `entry`, returning the
    /// intercommunicator to them. Every rank of `self` must call this.
    ///
    /// The paper's resizing library calls `MPI_Comm_spawn_multiple` here,
    /// spawning onto the node list handed down by the Remap Scheduler;
    /// `nodes` plays that role (defaults to round-robin placement).
    pub fn spawn<F>(&self, n: usize, nodes: Option<Vec<NodeId>>, name: &str, entry: F) -> InterComm
    where
        F: Fn(SpawnCtx) + Send + Sync + 'static,
    {
        assert!(n > 0, "cannot spawn an empty group");
        let payload = if self.rank() == 0 {
            let core = Arc::clone(self.core());
            // Virtual spawn cost: process startup is far from free on a real
            // cluster (fork/exec, connection setup).
            self.advance(core.net.spawn_overhead);
            // An injected spawn cap grants fewer processes than requested,
            // like MPI_Comm_spawn_multiple partially failing; callers see the
            // shortfall via `remote_size()` and must cope.
            let granted = core.fault.next_spawn_cap(n);
            // A placement on an already-crashed node could never produce a
            // useful process (it would die on its first operation, wedging
            // any collective that includes it). Decline such placements
            // like any other partial grant, so callers go through the
            // normal shortfall abort/retry path.
            let now = self.vtime();
            let nodes = nodes.map(|mut v| {
                v.truncate(granted);
                let before = v.len();
                v.retain(|&nd| !core.fault.crashed_by(nd, now));
                if v.len() < before {
                    reshape_telemetry::incr(
                        "mpisim.spawns_declined_dead_node",
                        (before - v.len()) as u64,
                    );
                }
                v
            });
            let granted = nodes.as_ref().map_or(granted, Vec::len);
            reshape_telemetry::incr("mpisim.spawns", 1);
            reshape_telemetry::incr("mpisim.spawned_procs", granted as u64);
            if granted < n {
                reshape_telemetry::incr("mpisim.spawn_shortfalls", 1);
                reshape_telemetry::record(reshape_telemetry::Event::SpawnFault {
                    time: self.vtime(),
                    requested: n,
                    granted,
                });
            }
            reshape_telemetry::observe("mpisim.spawn_overhead_seconds", core.net.spawn_overhead);
            let span = reshape_telemetry::span("mpisim.spawn_wall_seconds");
            let (inter_id, child_group) = spawn_children(
                &core,
                granted,
                nodes,
                name,
                entry,
                Arc::clone(self.group()),
                self.vtime(),
            );
            span.stop();
            if reshape_telemetry::trace::enabled() {
                // The launcher's own slice of a spawn, stamped in virtual
                // time (`now` predates the charged spawn overhead) and
                // parented to whatever span the calling rank is inside.
                use reshape_telemetry::trace;
                let ctx = trace::current();
                trace::complete(
                    ctx.trace,
                    ctx.parent,
                    format!("mpi_spawn {granted}/{n}"),
                    "spawn",
                    "mpisim",
                    now,
                    self.vtime(),
                );
            }
            let mut msg: Vec<u64> = vec![inter_id, granted as u64];
            msg.extend(child_group.members.iter().map(|p| p.0));
            msg.extend(child_group.nodes.iter().map(|nd| nd.0 as u64));
            to_bytes(&msg)
        } else {
            Bytes::new()
        };
        let msg: Vec<u64> = from_bytes(&self.bcast_raw(0, TAG_SPAWN, payload));
        let inter_id = msg[0];
        let n_children = msg[1] as usize;
        let members: Vec<ProcId> = msg[2..2 + n_children].iter().map(|&v| ProcId(v)).collect();
        let nodes: Vec<NodeId> = msg[2 + n_children..2 + 2 * n_children]
            .iter()
            .map(|&v| NodeId(v as u32))
            .collect();
        let remote = Arc::new(Group {
            id: 0, // children's world id is private to them
            members,
            nodes,
        });
        InterComm {
            id: inter_id,
            local: self.clone(),
            remote,
            is_low: true,
        }
    }

    /// Convenience: spawn `n` processes and immediately merge, returning the
    /// expanded intracommunicator (parents in the low ranks). The spawned
    /// processes' `entry` receives the [`SpawnCtx`]; they typically call
    /// `ctx.parent.merge()` themselves and then join the application's
    /// iteration loop.
    ///
    /// ```
    /// use reshape_mpisim::{NetModel, Universe};
    ///
    /// let uni = Universe::new(4, 1, NetModel::ideal());
    /// uni.launch(2, None, "doc", |comm| {
    ///     // Grow from 2 to 4 ranks, ReSHAPE-style.
    ///     let bigger = comm.spawn_merge(2, None, "extra", |ctx| {
    ///         let merged = ctx.parent.merge();
    ///         assert_eq!(merged.size(), 4);
    ///         merged.barrier();
    ///     });
    ///     assert_eq!(bigger.size(), 4);
    ///     assert_eq!(bigger.rank(), comm.rank()); // parents keep low ranks
    ///     bigger.barrier();
    /// })
    /// .join_ok();
    /// uni.join_spawned();
    /// ```
    pub fn spawn_merge<F>(&self, n: usize, nodes: Option<Vec<NodeId>>, name: &str, entry: F) -> Comm
    where
        F: Fn(SpawnCtx) + Send + Sync + 'static,
    {
        self.spawn(n, nodes, name, entry).merge()
    }
}

/// Parent-root half of spawning: register and start the child threads.
fn spawn_children<F>(
    core: &Arc<UniverseCore>,
    n: usize,
    nodes: Option<Vec<NodeId>>,
    name: &str,
    entry: F,
    parent_group: Arc<Group>,
    start_vtime: f64,
) -> (u64, Arc<Group>)
where
    F: Fn(SpawnCtx) + Send + Sync + 'static,
{
    let nodes = nodes.unwrap_or_else(|| {
        (0..n)
            .map(|i| NodeId(((i / core.slots_per_node) % core.num_nodes) as u32))
            .collect()
    });
    assert_eq!(nodes.len(), n, "need one node per spawned process");
    let entry = Arc::new(entry);
    let inter_id = core.router.alloc_comm_id();
    let child_world_id = core.router.alloc_comm_id();
    let regs: Vec<_> = (0..n).map(|_| core.router.register()).collect();
    let members: Vec<ProcId> = regs.iter().map(|(p, _)| *p).collect();
    let child_group = Arc::new(Group {
        id: child_world_id,
        members: members.clone(),
        nodes: nodes.clone(),
    });
    for (rank, (pid, rx)) in regs.into_iter().enumerate() {
        let child_group = Arc::clone(&child_group);
        let parent_group = Arc::clone(&parent_group);
        let entry = Arc::clone(&entry);
        let core2 = Arc::clone(core);
        let node = nodes[rank];
        core.start_proc(
            pid,
            rx,
            node,
            format!("{name}.spawn{rank}"),
            start_vtime,
            move |ep| {
                let world = Comm {
                    group: child_group,
                    rank,
                    ep: std::rc::Rc::clone(&ep),
                    core: Arc::clone(&core2),
                    stats: std::rc::Rc::default(),
                };
                let parent = InterComm {
                    id: inter_id,
                    local: world.clone(),
                    remote: parent_group,
                    is_low: false,
                };
                entry(SpawnCtx { world, parent });
            },
            true,
        );
    }
    (
        inter_id,
        Arc::new(Group {
            id: 0,
            members,
            nodes,
        }),
    )
}

#[cfg(test)]
mod tests {
    use crate::{NetModel, ReduceOp, Universe};

    #[test]
    fn spawn_and_merge_expands_group() {
        let uni = Universe::new(8, 1, NetModel::ideal());
        let h = uni.launch(2, None, "parents", |comm| {
            let expanded = comm.spawn_merge(3, None, "kids", |ctx| {
                assert_eq!(ctx.world.size(), 3);
                let merged = ctx.parent.merge();
                assert_eq!(merged.size(), 5);
                // Children occupy the high ranks.
                assert_eq!(merged.rank(), 2 + ctx.world.rank());
                let s = merged.allreduce(ReduceOp::Sum, &[merged.rank() as u64]);
                assert_eq!(s, vec![10]);
            });
            assert_eq!(expanded.size(), 5);
            assert_eq!(expanded.rank(), comm.rank());
            let s = expanded.allreduce(ReduceOp::Sum, &[expanded.rank() as u64]);
            assert_eq!(s, vec![10]);
        });
        h.join_ok();
        uni.join_spawned();
    }

    #[test]
    fn spawn_declines_placements_on_crashed_nodes() {
        use crate::NodeId;
        let uni = Universe::new(4, 1, NetModel::ideal());
        // Node 3 is dead from the start; a spawn targeting nodes 2 and 3
        // must be granted only the live placement, surfacing as the usual
        // short grant rather than a process that dies on arrival.
        uni.inject_node_crash(NodeId(3), 0.0);
        let h = uni.launch(1, None, "root", |comm| {
            comm.advance(1.0);
            let inter = comm.spawn(
                2,
                Some(vec![NodeId(2), NodeId(3)]),
                "kids",
                |ctx| {
                    assert_eq!(ctx.world.size(), 1, "only the live node spawned");
                },
            );
            assert_eq!(inter.remote_size(), 1, "dead-node placement declined");
        });
        h.join_ok();
        uni.join_spawned();
        uni.clear_faults();
    }

    #[test]
    fn intercomm_messaging_before_merge() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        let h = uni.launch(1, None, "root", |comm| {
            let inter = comm.spawn(2, None, "kids", |ctx| {
                let v: Vec<u64> = ctx.parent.recv_remote(0, 5);
                assert_eq!(v, vec![ctx.world.rank() as u64]);
                ctx.parent.send_remote(0, 6, &[v[0] * 2]);
            });
            inter.send_remote(0, 5, &[0u64]);
            inter.send_remote(1, 5, &[1u64]);
            let a: Vec<u64> = inter.recv_remote(0, 6);
            let b: Vec<u64> = inter.recv_remote(1, 6);
            assert_eq!((a[0], b[0]), (0, 2));
        });
        h.join_ok();
        uni.join_spawned();
    }

    #[test]
    fn repeated_expansion() {
        // Grow 1 -> 2 -> 4 the way ReSHAPE grows an application in steps.
        let uni = Universe::new(8, 1, NetModel::ideal());
        let h = uni.launch(1, None, "seed", |comm| {
            let c2 = comm.spawn_merge(1, None, "g1", |ctx| {
                let c2 = ctx.parent.merge();
                let c4 = c2.spawn_merge(2, None, "g2", |ctx2| {
                    let c4 = ctx2.parent.merge();
                    assert_eq!(c4.size(), 4);
                    c4.barrier();
                });
                assert_eq!(c4.size(), 4);
                c4.barrier();
            });
            assert_eq!(c2.size(), 2);
            let c4 = c2.spawn_merge(2, None, "g2", |ctx2| {
                let c4 = ctx2.parent.merge();
                assert_eq!(c4.size(), 4);
                c4.barrier();
            });
            assert_eq!(c4.size(), 4);
            c4.barrier();
        });
        h.join_ok();
        uni.join_spawned();
    }

    #[test]
    fn shrink_via_split() {
        // The ReSHAPE shrink path: redistribute (elsewhere), split off the
        // retained subset, surplus ranks exit.
        let uni = Universe::new(4, 1, NetModel::ideal());
        let h = uni.launch(4, None, "app", |comm| {
            let keep = comm.rank() < 2;
            let sub = comm.split(if keep { Some(0) } else { None }, comm.rank() as i64);
            if keep {
                let sub = sub.expect("retained ranks get the new communicator");
                assert_eq!(sub.size(), 2);
                sub.barrier();
            } else {
                assert!(sub.is_none());
                // Surplus rank simply returns — process terminates and its
                // node is free for the scheduler to reallocate.
            }
        });
        h.join_ok();
    }

    #[test]
    fn spawn_charges_virtual_overhead() {
        let uni = Universe::new(4, 1, NetModel::gigabit_ethernet());
        let h = uni.launch(1, None, "root", |comm| {
            let t0 = comm.vtime();
            let merged = comm.spawn_merge(1, None, "kid", |ctx| {
                ctx.parent.merge().barrier();
            });
            merged.barrier();
            assert!(comm.vtime() - t0 >= NetModel::gigabit_ethernet().spawn_overhead);
        });
        h.join_ok();
        uni.join_spawned();
    }

    #[test]
    fn spawned_children_inherit_parent_vtime() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        let h = uni.launch(1, None, "root", |comm| {
            comm.advance(42.0);
            comm.spawn_merge(2, None, "kids", |ctx| {
                assert!(ctx.world.vtime() >= 42.0);
                ctx.parent.merge();
            });
        });
        h.join_ok();
        uni.join_spawned();
    }
}
