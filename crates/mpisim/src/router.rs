//! Message routing between simulated processes.
//!
//! The router owns one unbounded channel per live process and delivers
//! [`Envelope`]s by global process id. Matching (by communicator, source and
//! tag) happens on the receiving side, in [`crate::endpoint::Endpoint`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;

/// Globally unique identifier of a simulated process (an OS thread).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u64);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A message in flight. `arrival` is the earliest virtual time at which the
/// receiver may observe the message (sender clock after serialization, plus
/// wire latency).
#[derive(Debug)]
pub(crate) struct Envelope {
    pub comm: u64,
    pub src: usize,
    pub tag: u32,
    pub arrival: f64,
    pub payload: Bytes,
}

/// Central registry mapping live processes to their mailboxes, plus the
/// allocators for process and communicator ids.
pub(crate) struct Router {
    mailboxes: Mutex<HashMap<u64, Sender<Envelope>>>,
    next_proc: AtomicU64,
    next_comm: AtomicU64,
}

impl Router {
    pub fn new() -> Self {
        Router {
            mailboxes: Mutex::new(HashMap::new()),
            next_proc: AtomicU64::new(0),
            next_comm: AtomicU64::new(1),
        }
    }

    /// Create a mailbox for a new process and return its id plus the
    /// receiving end of the mailbox.
    pub fn register(&self) -> (ProcId, Receiver<Envelope>) {
        let id = ProcId(self.next_proc.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = crossbeam_channel::unbounded();
        self.mailboxes.lock().insert(id.0, tx);
        (id, rx)
    }

    /// Remove a terminated process's mailbox. Subsequent sends to it panic,
    /// surfacing protocol bugs (e.g. messaging a rank that already shrank
    /// away) immediately instead of hanging.
    pub fn deregister(&self, id: ProcId) {
        self.mailboxes.lock().remove(&id.0);
    }

    /// Allocate a fresh communicator id. Agreement among members is arranged
    /// by the collective that triggers allocation (split/dup/spawn/merge).
    pub fn alloc_comm_id(&self) -> u64 {
        self.next_comm.fetch_add(1, Ordering::Relaxed)
    }

    pub fn deliver(&self, dst: ProcId, env: Envelope) {
        if let Err(_env) = self.try_deliver(dst, env) {
            panic!("send to unknown or terminated process {dst}");
        }
    }

    /// Like [`Router::deliver`] but hands the envelope back instead of
    /// panicking when the destination has no mailbox, so fault-aware callers
    /// (e.g. redistribution abort paths) can decline gracefully.
    pub fn try_deliver(&self, dst: ProcId, env: Envelope) -> Result<(), Envelope> {
        let tx = {
            let boxes = self.mailboxes.lock();
            boxes.get(&dst.0).cloned()
        };
        match tx {
            // The receiver may have terminated between the lookup and the
            // send; a closed channel is equally a dead destination.
            Some(tx) => tx.send(env).map_err(|e| e.0),
            None => Err(env),
        }
    }

    pub fn is_live(&self, id: ProcId) -> bool {
        self.mailboxes.lock().contains_key(&id.0)
    }

    #[allow(dead_code)]
    pub fn live_count(&self) -> usize {
        self.mailboxes.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_deliver() {
        let r = Router::new();
        let (id, rx) = r.register();
        r.deliver(
            id,
            Envelope {
                comm: 1,
                src: 0,
                tag: 9,
                arrival: 0.0,
                payload: Bytes::from_static(b"hi"),
            },
        );
        let env = rx.recv().unwrap();
        assert_eq!(env.tag, 9);
        assert_eq!(&env.payload[..], b"hi");
    }

    #[test]
    fn ids_are_unique() {
        let r = Router::new();
        let a = r.register().0;
        let b = r.register().0;
        assert_ne!(a, b);
        assert_eq!(r.live_count(), 2);
    }

    #[test]
    #[should_panic(expected = "terminated process")]
    fn deliver_to_dead_panics() {
        let r = Router::new();
        let (id, rx) = r.register();
        drop(rx);
        r.deregister(id);
        r.deliver(
            id,
            Envelope {
                comm: 1,
                src: 0,
                tag: 0,
                arrival: 0.0,
                payload: Bytes::new(),
            },
        );
    }

    #[test]
    fn comm_ids_monotonic() {
        let r = Router::new();
        let a = r.alloc_comm_id();
        let b = r.alloc_comm_id();
        assert!(b > a);
    }
}
