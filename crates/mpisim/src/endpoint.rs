//! Per-process receive endpoint: mailbox, unexpected-message queue and the
//! virtual clock.

use std::collections::VecDeque;
use std::time::Duration;

use crossbeam_channel::Receiver;

use crate::net::NetModel;
use crate::router::{Envelope, ProcId};

/// How long a blocking receive waits before declaring the run deadlocked.
/// Generous for CI, short enough that a hung test fails with context instead
/// of timing out the whole suite. Override with the
/// `RESHAPE_MPISIM_TIMEOUT_SECS` environment variable (e.g. for tests that
/// deliberately provoke deadlocks).
pub(crate) fn deadlock_timeout() -> Duration {
    static TIMEOUT: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        std::env::var("RESHAPE_MPISIM_TIMEOUT_SECS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs)
            .unwrap_or(Duration::from_secs(120))
    })
}

pub(crate) struct Endpoint {
    pub id: ProcId,
    rx: Receiver<Envelope>,
    /// Messages received from the channel that did not match the posted
    /// receive. Kept in arrival order so MPI's non-overtaking guarantee
    /// (per communicator/source/tag) holds.
    unexpected: VecDeque<Envelope>,
    /// Virtual clock, in seconds.
    pub now: f64,
}

impl Endpoint {
    pub fn new(id: ProcId, rx: Receiver<Envelope>, start: f64) -> Self {
        Endpoint {
            id,
            rx,
            unexpected: VecDeque::new(),
            now: start,
        }
    }

    fn matches(env: &Envelope, comm: u64, src: Option<usize>, tag: Option<u32>) -> bool {
        env.comm == comm && src.is_none_or(|s| env.src == s) && tag.is_none_or(|t| env.tag == t)
    }

    /// Blocking matched receive. Advances the virtual clock to respect
    /// message causality: the receive completes no earlier than the
    /// message's arrival time.
    pub fn recv_match(
        &mut self,
        comm: u64,
        src: Option<usize>,
        tag: Option<u32>,
        net: &NetModel,
    ) -> Envelope {
        let env = if let Some(pos) = self
            .unexpected
            .iter()
            .position(|e| Self::matches(e, comm, src, tag))
        {
            self.unexpected.remove(pos).expect("position just found")
        } else {
            loop {
                let timeout = deadlock_timeout();
                let env = self.rx.recv_timeout(timeout).unwrap_or_else(|_| {
                    panic!(
                        "{}: receive on comm {} from {:?} tag {:?} did not complete within {:?} \
                         — likely deadlock or mismatched communication pattern",
                        self.id, comm, src, tag, timeout
                    )
                });
                if Self::matches(&env, comm, src, tag) {
                    break env;
                }
                self.unexpected.push_back(env);
            }
        };
        self.now = self.now.max(env.arrival) + net.recv_cost(env.payload.len());
        env
    }

    /// Non-blocking probe: is a matching message available right now? Drains
    /// the channel into the unexpected queue first so probing sees everything
    /// already delivered.
    pub fn iprobe(&mut self, comm: u64, src: Option<usize>, tag: Option<u32>) -> bool {
        while let Ok(env) = self.rx.try_recv() {
            self.unexpected.push_back(env);
        }
        self.unexpected
            .iter()
            .any(|e| Self::matches(e, comm, src, tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crossbeam_channel::unbounded;

    fn env(comm: u64, src: usize, tag: u32, arrival: f64) -> Envelope {
        Envelope {
            comm,
            src,
            tag,
            arrival,
            payload: Bytes::new(),
        }
    }

    #[test]
    fn matching_skips_unrelated_messages() {
        let (tx, rx) = unbounded();
        let mut ep = Endpoint::new(ProcId(0), rx, 0.0);
        tx.send(env(1, 0, 5, 0.0)).unwrap();
        tx.send(env(1, 0, 7, 0.0)).unwrap();
        let got = ep.recv_match(1, Some(0), Some(7), &NetModel::ideal());
        assert_eq!(got.tag, 7);
        // The skipped message is still receivable.
        let got = ep.recv_match(1, Some(0), Some(5), &NetModel::ideal());
        assert_eq!(got.tag, 5);
    }

    #[test]
    fn fifo_order_preserved_for_same_match() {
        let (tx, rx) = unbounded();
        let mut ep = Endpoint::new(ProcId(0), rx, 0.0);
        tx.send(Envelope {
            comm: 1,
            src: 0,
            tag: 5,
            arrival: 1.0,
            payload: Bytes::from_static(b"first"),
        })
        .unwrap();
        tx.send(Envelope {
            comm: 1,
            src: 0,
            tag: 5,
            arrival: 2.0,
            payload: Bytes::from_static(b"second"),
        })
        .unwrap();
        let a = ep.recv_match(1, Some(0), Some(5), &NetModel::ideal());
        let b = ep.recv_match(1, Some(0), Some(5), &NetModel::ideal());
        assert_eq!(&a.payload[..], b"first");
        assert_eq!(&b.payload[..], b"second");
    }

    #[test]
    fn clock_respects_arrival() {
        let (tx, rx) = unbounded();
        let mut ep = Endpoint::new(ProcId(0), rx, 1.0);
        tx.send(env(1, 0, 0, 5.5)).unwrap();
        ep.recv_match(1, Some(0), Some(0), &NetModel::ideal());
        assert_eq!(ep.now, 5.5);
    }

    #[test]
    fn clock_keeps_later_local_time() {
        let (tx, rx) = unbounded();
        let mut ep = Endpoint::new(ProcId(0), rx, 10.0);
        tx.send(env(1, 0, 0, 5.5)).unwrap();
        ep.recv_match(1, Some(0), Some(0), &NetModel::ideal());
        assert_eq!(ep.now, 10.0);
    }

    #[test]
    fn wildcard_source_and_tag() {
        let (tx, rx) = unbounded();
        let mut ep = Endpoint::new(ProcId(0), rx, 0.0);
        tx.send(env(1, 3, 42, 0.0)).unwrap();
        let got = ep.recv_match(1, None, None, &NetModel::ideal());
        assert_eq!((got.src, got.tag), (3, 42));
    }

    #[test]
    fn iprobe_sees_delivered_messages() {
        let (tx, rx) = unbounded();
        let mut ep = Endpoint::new(ProcId(0), rx, 0.0);
        assert!(!ep.iprobe(1, None, None));
        tx.send(env(1, 0, 9, 0.0)).unwrap();
        assert!(ep.iprobe(1, Some(0), Some(9)));
        assert!(!ep.iprobe(2, None, None));
    }
}
