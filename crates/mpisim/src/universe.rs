//! The virtual cluster: node inventory, process lifecycle, and failure
//! reporting.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::comm::{Comm, Group, NodeId};
use crate::endpoint::Endpoint;
use crate::fault::FaultState;
use crate::net::NetModel;
use crate::router::{ProcId, Router};

/// Lifecycle state of a simulated process, as reported to monitors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcStatus {
    Running,
    /// Returned normally from its entry function.
    Finished,
    /// Panicked; the payload is the panic message. ReSHAPE's System Monitor
    /// treats this as a job error and reclaims the job's resources.
    Failed(String),
}

/// Event emitted when a process changes state. The ReSHAPE System Monitor
/// subscribes to these, mirroring the per-node application monitors of the
/// paper.
#[derive(Clone, Debug)]
pub struct ProcEvent {
    pub proc: ProcId,
    pub node: NodeId,
    pub status: ProcStatus,
}

pub(crate) struct UniverseCore {
    pub router: Router,
    pub net: NetModel,
    pub num_nodes: usize,
    pub slots_per_node: usize,
    statuses: Mutex<HashMap<ProcId, ProcStatus>>,
    events_tx: Sender<ProcEvent>,
    events_rx: Receiver<ProcEvent>,
    /// Join handles for *spawned* (mid-run) processes; initial launch groups
    /// keep their own handles in their [`GroupHandle`].
    spawned_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Injected faults (node crashes, spawn caps, link slowdowns).
    pub fault: FaultState,
}

impl UniverseCore {
    /// Register a process, start its thread, and track its status. `entry`
    /// receives the fully constructed communicator-building closure result.
    #[allow(clippy::too_many_arguments)]
    pub fn start_proc<F>(
        self: &Arc<Self>,
        pid: ProcId,
        rx: crossbeam_channel::Receiver<crate::router::Envelope>,
        node: NodeId,
        name: String,
        start_vtime: f64,
        make_and_run: F,
        track_in_core: bool,
    ) -> Option<JoinHandle<()>>
    where
        F: FnOnce(std::rc::Rc<std::cell::RefCell<Endpoint>>) + Send + 'static,
    {
        self.statuses.lock().insert(pid, ProcStatus::Running);
        let core = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let ep = std::rc::Rc::new(std::cell::RefCell::new(Endpoint::new(
                    pid,
                    rx,
                    start_vtime,
                )));
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| make_and_run(ep)));
                let status = match result {
                    Ok(()) => ProcStatus::Finished,
                    Err(e) => {
                        let msg = e
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "unknown panic".to_string());
                        ProcStatus::Failed(msg)
                    }
                };
                core.router.deregister(pid);
                core.statuses.lock().insert(pid, status.clone());
                // A closed event channel just means nobody is listening.
                let _ = core.events_tx.send(ProcEvent {
                    proc: pid,
                    node,
                    status,
                });
            })
            .expect("failed to spawn simulated process thread");
        if track_in_core {
            self.spawned_handles.lock().push(handle);
            None
        } else {
            Some(handle)
        }
    }

    pub fn status_of(&self, pid: ProcId) -> Option<ProcStatus> {
        self.statuses.lock().get(&pid).cloned()
    }
}

/// A simulated homogeneous cluster.
///
/// `Universe::new(nodes, slots_per_node, net)` models a cluster like the
/// paper's System X partition (50 nodes × 2 CPUs, Gigabit Ethernet).
/// Process-group placement onto nodes is advisory metadata consumed by the
/// ReSHAPE scheduler; the message fabric itself is uniform.
pub struct Universe {
    core: Arc<UniverseCore>,
}

impl Universe {
    pub fn new(num_nodes: usize, slots_per_node: usize, net: NetModel) -> Self {
        assert!(num_nodes > 0 && slots_per_node > 0);
        let (events_tx, events_rx) = crossbeam_channel::unbounded();
        Universe {
            core: Arc::new(UniverseCore {
                router: Router::new(),
                net,
                num_nodes,
                slots_per_node,
                statuses: Mutex::new(HashMap::new()),
                events_tx,
                events_rx,
                spawned_handles: Mutex::new(Vec::new()),
                fault: FaultState::default(),
            }),
        }
    }

    /// Total processor slots in the cluster.
    pub fn total_slots(&self) -> usize {
        self.core.num_nodes * self.core.slots_per_node
    }

    /// Number of compute nodes.
    pub fn num_nodes(&self) -> usize {
        self.core.num_nodes
    }

    /// Processor slots per node (the paper's nodes host two CPUs).
    pub fn slots_per_node(&self) -> usize {
        self.core.slots_per_node
    }

    /// The network model in force.
    pub fn net(&self) -> NetModel {
        self.core.net
    }

    /// Subscribe to process lifecycle events (each subscriber sees every
    /// event exactly once per `recv` across clones — use one subscriber).
    pub fn events(&self) -> Receiver<ProcEvent> {
        self.core.events_rx.clone()
    }

    /// Inject a node crash: every process placed on `node` panics at its
    /// first communication or clock advance at virtual time ≥ `at_vtime`.
    /// The failures surface as [`ProcStatus::Failed`] events, exactly like
    /// an application panic, so monitors exercise their real recovery path.
    pub fn inject_node_crash(&self, node: NodeId, at_vtime: f64) {
        self.core.fault.inject_node_crash(node, at_vtime);
    }

    /// Inject a grant cap for an upcoming [`Comm::spawn`]: the next spawn
    /// call is granted at most `cap` processes (possibly zero). Caps queue
    /// up and are consumed one per spawn call, in injection order.
    pub fn inject_spawn_cap(&self, cap: usize) {
        self.core.fault.inject_spawn_cap(cap);
    }

    /// Inject a directed link slowdown: messages from `src` to `dst` pay
    /// `factor`× the modeled network time (factor > 1 slows the link).
    pub fn inject_link_slowdown(&self, src: NodeId, dst: NodeId, factor: f64) {
        self.core.fault.inject_link_slowdown(src, dst, factor);
    }

    /// Inject control-plane message loss: messages with tags in
    /// `[TAG_CTRL_BASE, 2^24)` are dropped with probability `p` (seeded,
    /// deterministic). Data-plane and collective traffic is unaffected.
    pub fn inject_msg_loss(&self, p: f64, seed: u64) {
        self.core.fault.inject_msg_loss(p, seed);
    }

    /// Inject control-plane message duplication: affected messages are
    /// delivered twice with probability `p`.
    pub fn inject_msg_dup(&self, p: f64, seed: u64) {
        self.core.fault.inject_msg_dup(p, seed);
    }

    /// Inject control-plane message reordering: an affected message is held
    /// back and delivered after the next control message to the same
    /// destination, with probability `p`.
    pub fn inject_msg_reorder(&self, p: f64, seed: u64) {
        self.core.fault.inject_msg_reorder(p, seed);
    }

    /// Disarm every injected fault (crashes, spawn caps, link slowdowns and
    /// message faults), flushing any reorder-held control frames. Lets a
    /// long-lived universe be reused across fault experiments.
    pub fn clear_faults(&self) {
        self.core.fault.clear(&self.core.router);
    }

    /// Query a process's last known status.
    pub fn status_of(&self, pid: ProcId) -> Option<ProcStatus> {
        self.core.status_of(pid)
    }

    /// Default round-robin placement of `n` processes over the cluster.
    pub fn default_placement(&self, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(|i| NodeId(((i / self.core.slots_per_node) % self.core.num_nodes) as u32))
            .collect()
    }

    /// Launch a fresh group of `n` processes, each running `entry` with its
    /// own [`Comm`] over a new world communicator. Placement defaults to
    /// round-robin if `nodes` is `None`.
    pub fn launch<F>(&self, n: usize, nodes: Option<Vec<NodeId>>, name: &str, entry: F) -> GroupHandle
    where
        F: Fn(Comm) + Send + Sync + 'static,
    {
        self.launch_at(n, nodes, name, 0.0, entry)
    }

    /// Like [`Universe::launch`] but with an explicit starting virtual time,
    /// so a scheduler can start jobs at their (virtual) arrival times.
    pub fn launch_at<F>(
        &self,
        n: usize,
        nodes: Option<Vec<NodeId>>,
        name: &str,
        start_vtime: f64,
        entry: F,
    ) -> GroupHandle
    where
        F: Fn(Comm) + Send + Sync + 'static,
    {
        assert!(n > 0, "cannot launch an empty group");
        let nodes = nodes.unwrap_or_else(|| self.default_placement(n));
        assert_eq!(nodes.len(), n, "need one node per process");
        let entry = Arc::new(entry);
        let regs: Vec<_> = (0..n).map(|_| self.core.router.register()).collect();
        let members: Vec<ProcId> = regs.iter().map(|(p, _)| *p).collect();
        let group = Arc::new(Group {
            id: self.core.router.alloc_comm_id(),
            members: members.clone(),
            nodes: nodes.clone(),
        });
        let mut handles = Vec::with_capacity(n);
        for (rank, (pid, rx)) in regs.into_iter().enumerate() {
            let group = Arc::clone(&group);
            let entry = Arc::clone(&entry);
            let core = Arc::clone(&self.core);
            let node = nodes[rank];
            let h = self.core.start_proc(
                pid,
                rx,
                node,
                format!("{name}.{rank}"),
                start_vtime,
                move |ep| {
                    let comm = Comm {
                        group,
                        rank,
                        ep,
                        core,
                        stats: std::rc::Rc::default(),
                    };
                    entry(comm);
                },
                false,
            );
            handles.push(h.expect("launch returns handles"));
        }
        GroupHandle {
            members,
            handles,
            core: Arc::clone(&self.core),
        }
    }

    /// Wait for every process spawned dynamically (via [`Comm::spawn`]) to
    /// terminate. Initial groups are joined via their [`GroupHandle`]s.
    pub fn join_spawned(&self) {
        loop {
            let next = self.core.spawned_handles.lock().pop();
            match next {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }

    #[allow(dead_code)]
    pub(crate) fn core(&self) -> &Arc<UniverseCore> {
        &self.core
    }
}

/// Handle to an initially launched process group.
pub struct GroupHandle {
    members: Vec<ProcId>,
    handles: Vec<JoinHandle<()>>,
    core: Arc<UniverseCore>,
}

impl GroupHandle {
    pub fn members(&self) -> &[ProcId] {
        &self.members
    }

    /// Wait for all members and return their final statuses.
    pub fn join(self) -> Vec<(ProcId, ProcStatus)> {
        for h in self.handles {
            let _ = h.join();
        }
        self.members
            .iter()
            .map(|&p| {
                (
                    p,
                    self.core
                        .status_of(p)
                        .expect("launched process must have a status"),
                )
            })
            .collect()
    }

    /// Wait for all members, panicking (with the original message) if any
    /// process failed. Convenience for tests.
    pub fn join_ok(self) {
        for (pid, status) in self.join() {
            if let ProcStatus::Failed(msg) = status {
                panic!("process {pid} failed: {msg}");
            }
        }
    }

    /// Non-blocking check: have all members terminated, and did any fail?
    pub fn poll(&self) -> (bool, Vec<(ProcId, ProcStatus)>) {
        let statuses: Vec<_> = self
            .members
            .iter()
            .map(|&p| (p, self.core.status_of(p).unwrap_or(ProcStatus::Running)))
            .collect();
        let done = statuses
            .iter()
            .all(|(_, s)| !matches!(s, ProcStatus::Running));
        (done, statuses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_and_join() {
        let uni = Universe::new(2, 2, NetModel::ideal());
        let h = uni.launch(4, None, "noop", |comm| {
            assert_eq!(comm.size(), 4);
        });
        let statuses = h.join();
        assert_eq!(statuses.len(), 4);
        assert!(statuses.iter().all(|(_, s)| *s == ProcStatus::Finished));
    }

    #[test]
    fn failure_is_reported() {
        let uni = Universe::new(1, 2, NetModel::ideal());
        let events = uni.events();
        let h = uni.launch(2, None, "fail", |comm| {
            if comm.rank() == 1 {
                panic!("synthetic application error");
            }
        });
        let statuses = h.join();
        let failed: Vec<_> = statuses
            .iter()
            .filter(|(_, s)| matches!(s, ProcStatus::Failed(_)))
            .collect();
        assert_eq!(failed.len(), 1);
        // The event stream saw both terminations.
        let mut seen = 0;
        while let Ok(ev) = events.try_recv() {
            seen += 1;
            if ev.proc == failed[0].0 {
                assert!(matches!(ev.status, ProcStatus::Failed(ref m) if m.contains("synthetic")));
            }
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn default_placement_fills_slots() {
        let uni = Universe::new(3, 2, NetModel::ideal());
        let p = uni.default_placement(6);
        assert_eq!(
            p,
            vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1), NodeId(2), NodeId(2)]
        );
        assert_eq!(uni.total_slots(), 6);
    }

    #[test]
    fn explicit_placement_respected() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        let nodes = vec![NodeId(3), NodeId(1)];
        uni.launch(2, Some(nodes.clone()), "placed", move |comm| {
            assert_eq!(comm.node_of(0), NodeId(3));
            assert_eq!(comm.node_of(1), NodeId(1));
        })
        .join_ok();
    }

    #[test]
    fn poll_reports_completion() {
        let uni = Universe::new(1, 1, NetModel::ideal());
        let h = uni.launch(1, None, "quick", |_comm| {});
        // Wait until done (bounded).
        for _ in 0..1000 {
            let (done, _) = h.poll();
            if done {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("process never finished");
    }

    #[test]
    fn start_vtime_offsets_clock() {
        let uni = Universe::new(1, 1, NetModel::ideal());
        uni.launch_at(1, None, "late", 100.0, |comm| {
            assert_eq!(comm.vtime(), 100.0);
        })
        .join_ok();
    }
}
