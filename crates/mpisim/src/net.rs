//! Network cost model used to advance virtual time.
//!
//! The ReSHAPE experiments ran over switched Gigabit Ethernet; communication
//! cost there is dominated by per-message latency plus volume divided by link
//! bandwidth. The model charges the *sender* clock for serializing the
//! message onto its NIC (which is what makes contention-free redistribution
//! schedules matter: a rank that must send to two destinations in one step
//! pays twice) and stamps the message with an arrival time the receiver
//! cannot observe it before.

/// Linear (latency + volume/bandwidth) network cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetModel {
    /// One-way wire latency in seconds, charged between send completion and
    /// earliest receive.
    pub latency: f64,
    /// Link bandwidth in bytes/second; `f64::INFINITY` disables volume cost.
    pub bandwidth: f64,
    /// Per-message CPU overhead in seconds charged to both endpoints.
    pub overhead: f64,
    /// Virtual cost of spawning one new process (fork/exec + connection
    /// establishment in a real MPI implementation).
    pub spawn_overhead: f64,
}

impl NetModel {
    /// Zero-cost network: virtual time only advances via explicit
    /// [`crate::Comm::advance`] calls. Use for pure-correctness tests.
    pub fn ideal() -> Self {
        NetModel {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            overhead: 0.0,
            spawn_overhead: 0.0,
        }
    }

    /// Parameters approximating the paper's testbed: MPICH2 over switched
    /// Gigabit Ethernet (~125 MB/s per link, ~50 µs end-to-end latency).
    pub fn gigabit_ethernet() -> Self {
        NetModel {
            latency: 50e-6,
            bandwidth: 125e6,
            overhead: 5e-6,
            spawn_overhead: 0.25,
        }
    }

    /// Virtual seconds the sender is busy pushing `bytes` onto the wire.
    #[inline]
    pub fn send_cost(&self, bytes: usize) -> f64 {
        if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            self.overhead + bytes as f64 / self.bandwidth
        } else {
            self.overhead
        }
    }

    /// Virtual seconds the receiver spends draining the message.
    #[inline]
    pub fn recv_cost(&self, _bytes: usize) -> f64 {
        // The volume cost is charged on the send side (store-and-forward
        // through the sender NIC); the receiver pays only fixed overhead.
        self.overhead
    }

    /// End-to-end virtual cost of a single `bytes`-sized message between two
    /// idle endpoints. Used by analytic evaluators.
    #[inline]
    pub fn point_to_point(&self, bytes: usize) -> f64 {
        self.send_cost(bytes) + self.latency + self.recv_cost(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_free() {
        let m = NetModel::ideal();
        assert_eq!(m.send_cost(1 << 30), 0.0);
        assert_eq!(m.point_to_point(12345), 0.0);
    }

    #[test]
    fn gige_costs_scale_with_volume() {
        let m = NetModel::gigabit_ethernet();
        let one_mb = m.point_to_point(1 << 20);
        let ten_mb = m.point_to_point(10 << 20);
        assert!(ten_mb > 9.0 * one_mb / 1.2, "volume term should dominate");
        // 1 MiB over 125 MB/s is ~8.4 ms.
        assert!((one_mb - (1 << 20) as f64 / 125e6).abs() < 1e-3);
    }

    #[test]
    fn latency_floor() {
        let m = NetModel::gigabit_ethernet();
        assert!(m.point_to_point(0) >= m.latency);
    }
}
