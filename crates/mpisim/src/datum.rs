//! Plain-old-data element marshalling for message payloads.
//!
//! Messages are carried as [`bytes::Bytes`]. Element types that may appear in
//! a message implement the [`Pod`] marker; the conversions are raw byte
//! copies, which is sound because every implementor is a fixed-layout
//! primitive with no padding and no invalid bit patterns.

use bytes::Bytes;

/// Marker for element types that can be transported in a message payload.
///
/// # Safety
///
/// Implementors must be inhabited `Copy` types for which **every** bit
/// pattern of `size_of::<Self>()` bytes is a valid value, with no padding
/// bytes (this is what makes the byte-level round trip in [`to_bytes`] /
/// [`from_bytes`] sound). All implementations in this crate are primitive
/// numeric types.
pub unsafe trait Pod: Copy + Send + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for isize {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

/// Serialize a slice of POD elements into an owned byte buffer.
pub fn to_bytes<T: Pod>(data: &[T]) -> Bytes {
    // SAFETY: `T: Pod` guarantees no padding, so viewing the slice as bytes
    // reads only initialized memory.
    let raw = unsafe {
        std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data))
    };
    Bytes::copy_from_slice(raw)
}

/// Deserialize a byte buffer produced by [`to_bytes`] back into elements.
///
/// # Panics
///
/// Panics if the buffer length is not a multiple of `size_of::<T>()`, which
/// indicates a type mismatch between sender and receiver.
pub fn from_bytes<T: Pod>(b: &Bytes) -> Vec<T> {
    let mut out = Vec::new();
    from_bytes_into(b, &mut out);
    out
}

/// Like [`from_bytes`] but reuses the capacity of `out`.
pub fn from_bytes_into<T: Pod>(b: &Bytes, out: &mut Vec<T>) {
    let esz = std::mem::size_of::<T>();
    assert!(
        b.len().is_multiple_of(esz),
        "payload of {} bytes is not a whole number of {}-byte elements \
         (sender/receiver type mismatch?)",
        b.len(),
        esz
    );
    let n = b.len() / esz;
    out.clear();
    out.reserve(n);
    // SAFETY: the destination is freshly reserved and properly aligned for
    // `T`; `T: Pod` means any bit pattern is a valid `T`.
    unsafe {
        std::ptr::copy_nonoverlapping(b.as_ptr(), out.as_mut_ptr() as *mut u8, b.len());
        out.set_len(n);
    }
}

/// Element types usable with arithmetic reductions.
pub trait Reducible: Pod + PartialOrd {
    /// Elementwise addition used by [`crate::ReduceOp::Sum`].
    fn add(self, other: Self) -> Self;
}

macro_rules! impl_reducible {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            #[inline]
            fn add(self, other: Self) -> Self { self + other }
        }
    )*};
}
impl_reducible!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f64() {
        let data = vec![1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        let b = to_bytes(&data);
        assert_eq!(b.len(), data.len() * 8);
        let back: Vec<f64> = from_bytes(&b);
        assert_eq!(back, data);
    }

    #[test]
    fn round_trip_empty() {
        let data: Vec<u32> = vec![];
        let b = to_bytes(&data);
        assert!(b.is_empty());
        let back: Vec<u32> = from_bytes(&b);
        assert!(back.is_empty());
    }

    #[test]
    fn round_trip_usize() {
        let data: Vec<usize> = (0..1000).collect();
        let back: Vec<usize> = from_bytes(&to_bytes(&data));
        assert_eq!(back, data);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn length_mismatch_panics() {
        let data = vec![1u8, 2, 3];
        let b = to_bytes(&data);
        let _: Vec<u32> = from_bytes(&b);
    }

    #[test]
    fn reuse_capacity() {
        let mut buf: Vec<u64> = Vec::with_capacity(100);
        let b = to_bytes(&[1u64, 2, 3]);
        from_bytes_into(&b, &mut buf);
        assert_eq!(buf, vec![1, 2, 3]);
        assert!(buf.capacity() >= 100);
    }
}
