//! Intracommunicators: process groups and point-to-point messaging.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use bytes::Bytes;

use crate::datum::{from_bytes, from_bytes_into, to_bytes, Pod};
use crate::endpoint::Endpoint;
use crate::router::{Envelope, ProcId};
use crate::universe::UniverseCore;

/// Identifier of a (virtual) compute node in the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// An ordered set of processes sharing a communicator, with their node
/// placement. Rank i of the communicator is `members[i]` on `nodes[i]`.
#[derive(Debug)]
pub struct Group {
    pub id: u64,
    pub members: Vec<ProcId>,
    pub nodes: Vec<NodeId>,
}

impl Group {
    pub fn size(&self) -> usize {
        self.members.len()
    }

    pub fn rank_of(&self, p: ProcId) -> Option<usize> {
        self.members.iter().position(|&m| m == p)
    }
}

// Internal tag namespace. User tags must stay below `TAG_INTERNAL`; the
// library reserves the space above for collectives and control so that user
// traffic can never be confused with protocol traffic on the same
// communicator.
pub(crate) const TAG_INTERNAL: u32 = 1 << 24;

/// Start of the *control-plane* tag range `[TAG_CTRL_BASE, 2^24)`. Message
/// faults injected with [`crate::Universe::inject_msg_loss`] (and friends)
/// apply only to tags in this range: control messages like ReSHAPE's
/// expansion commit/abort have retransmit protocols layered on top, whereas
/// data-plane traffic (user tags, the redistribution range at `8_000_000 +
/// step`) and the library's internal collectives assume a reliable
/// transport and would deadlock under loss.
pub const TAG_CTRL_BASE: u32 = 9_000_000;
pub(crate) const TAG_BARRIER: u32 = TAG_INTERNAL;
pub(crate) const TAG_BCAST: u32 = TAG_INTERNAL + 1;
pub(crate) const TAG_REDUCE: u32 = TAG_INTERNAL + 2;
pub(crate) const TAG_GATHER: u32 = TAG_INTERNAL + 3;
pub(crate) const TAG_SCATTER: u32 = TAG_INTERNAL + 4;
pub(crate) const TAG_ALLTOALL: u32 = TAG_INTERNAL + 5;
pub(crate) const TAG_SPLIT: u32 = TAG_INTERNAL + 6;
pub(crate) const TAG_MERGE: u32 = TAG_INTERNAL + 7;
pub(crate) const TAG_SPAWN: u32 = TAG_INTERNAL + 8;
pub(crate) const TAG_ALLGATHER: u32 = TAG_INTERNAL + 9;

/// A communicator handle for the calling process.
///
/// `Comm` is cheap to clone (all clones share the process's endpoint) but is
/// deliberately `!Send`: a communicator belongs to the rank that created it,
/// mirroring MPI usage. New ranks get their own `Comm` via
/// [`crate::Universe::launch`] or [`Comm::spawn`].
///
/// ```
/// use reshape_mpisim::{NetModel, ReduceOp, Universe};
///
/// Universe::new(4, 1, NetModel::ideal())
///     .launch(4, None, "doc", |comm| {
///         // Point-to-point with MPI matching semantics.
///         if comm.rank() == 0 {
///             comm.send(1, 42, &[3.14f64]);
///         } else if comm.rank() == 1 {
///             assert_eq!(comm.recv::<f64>(0, 42), vec![3.14]);
///         }
///         // Collectives.
///         let sum = comm.allreduce(ReduceOp::Sum, &[comm.rank() as u64]);
///         assert_eq!(sum, vec![0 + 1 + 2 + 3]);
///     })
///     .join_ok();
/// ```
pub struct Comm {
    pub(crate) group: Arc<Group>,
    pub(crate) rank: usize,
    pub(crate) ep: Rc<RefCell<Endpoint>>,
    pub(crate) core: Arc<UniverseCore>,
    pub(crate) stats: Rc<CommStats>,
}

/// Per-communicator traffic counters for this rank. Clones of a handle
/// share one set of counters; every *new* communicator (`dup`, `split`,
/// merge, spawn, launch) starts fresh. Always on — two `Cell` bumps per
/// send are free next to the routing work.
#[derive(Debug, Default)]
pub struct CommStats {
    msgs: Cell<u64>,
    bytes: Cell<u64>,
}

impl CommStats {
    /// Messages this rank has sent on the communicator (point-to-point and
    /// collective-internal alike).
    pub fn msgs_sent(&self) -> u64 {
        self.msgs.get()
    }

    /// Payload bytes this rank has sent on the communicator.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes.get()
    }
}

impl Clone for Comm {
    fn clone(&self) -> Self {
        Comm {
            group: Arc::clone(&self.group),
            rank: self.rank,
            ep: Rc::clone(&self.ep),
            core: Arc::clone(&self.core),
            stats: Rc::clone(&self.stats),
        }
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("id", &self.group.id)
            .field("rank", &self.rank)
            .field("size", &self.group.size())
            .finish()
    }
}

impl Comm {
    /// This process's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of processes in the communicator.
    pub fn size(&self) -> usize {
        self.group.size()
    }

    /// The communicator's globally unique id (analogous to a BLACS context
    /// handle).
    pub fn id(&self) -> u64 {
        self.group.id
    }

    /// The process group, for schedulers that need placement information.
    pub fn group(&self) -> &Arc<Group> {
        &self.group
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.group.nodes[rank]
    }

    /// The global process id of this rank.
    pub fn proc_id(&self) -> ProcId {
        self.group.members[self.rank]
    }

    /// Current virtual time at this process, in seconds.
    pub fn vtime(&self) -> f64 {
        self.ep.borrow().now
    }

    /// Advance this process's virtual clock by `dt` seconds of modeled
    /// computation.
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0, "cannot advance virtual time backwards");
        self.ep.borrow_mut().now += dt;
        self.check_crashed();
    }

    /// Panic if this rank's node has an injected crash that has fired by the
    /// current virtual time. Called at every communication checkpoint so the
    /// crash surfaces as a normal process failure.
    fn check_crashed(&self) {
        self.core
            .fault
            .check_crash(self.group.nodes[self.rank], self.ep.borrow().now);
    }

    /// Whether `rank`'s process is still live (has a mailbox). A rank whose
    /// node crashed, or that already terminated, reports `false`. Used by
    /// fault-aware protocols (e.g. the redistribution abort pre-flight).
    pub fn rank_alive(&self, rank: usize) -> bool {
        assert!(rank < self.size(), "rank {rank} out of range");
        self.core.router.is_live(self.group.members[rank])
    }

    /// Whether `rank` must be treated as failed by survivable protocols:
    /// either its process has already terminated (no mailbox), or its node
    /// carries an injected crash firing at or before *this* rank's current
    /// virtual time — the peer is doomed even if its thread has not yet hit
    /// the checkpoint that kills it, because nothing it could still send can
    /// be virtually ordered after the crash.
    pub fn rank_failed(&self, rank: usize) -> bool {
        assert!(rank < self.size(), "rank {rank} out of range");
        !self.core.router.is_live(self.group.members[rank])
            || self
                .core
                .fault
                .crashed_by(self.group.nodes[rank], self.ep.borrow().now)
    }

    /// The universe this communicator lives in (for spawning).
    pub(crate) fn core(&self) -> &Arc<UniverseCore> {
        &self.core
    }

    /// This rank's traffic counters on this communicator.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    pub(crate) fn send_raw(&self, dst: usize, tag: u32, payload: Bytes) {
        assert!(dst < self.size(), "destination rank {dst} out of range");
        self.check_crashed();
        self.stats.msgs.set(self.stats.msgs.get() + 1);
        self.stats.bytes.set(self.stats.bytes.get() + payload.len() as u64);
        reshape_telemetry::incr("mpisim.msgs_sent", 1);
        reshape_telemetry::incr("mpisim.bytes_sent", payload.len() as u64);
        // Injected link degradation multiplies both serialization and wire
        // latency for this (source node, destination node) pair.
        let slow = self
            .core
            .fault
            .link_factor(self.group.nodes[self.rank], self.group.nodes[dst]);
        let arrival = {
            let mut ep = self.ep.borrow_mut();
            ep.now += self.core.net.send_cost(payload.len()) * slow;
            ep.now + self.core.net.latency * slow
        };
        self.core.fault.deliver_faulty(
            &self.core.router,
            self.group.members[dst],
            Envelope {
                comm: self.group.id,
                src: self.rank,
                tag,
                arrival,
                payload,
            },
        );
    }

    pub(crate) fn recv_raw(&self, src: Option<usize>, tag: Option<u32>) -> (usize, u32, Bytes) {
        if let Some(s) = src {
            assert!(s < self.size(), "source rank {s} out of range");
        }
        self.check_crashed();
        let env = self
            .ep
            .borrow_mut()
            .recv_match(self.group.id, src, tag, &self.core.net);
        // Receiving advances the clock to the message arrival time, which may
        // cross this node's injected crash deadline.
        self.check_crashed();
        (env.src, env.tag, env.payload)
    }

    /// Fault-aware variant of [`Comm::send_raw`]: instead of treating a dead
    /// destination as a protocol bug (panic), the failure is reported to the
    /// caller. The send also fails when the destination node's injected
    /// crash fires *before the message would arrive* — the mid-transfer
    /// death case: the virtual transfer is in flight when the node dies, so
    /// the message can never be consumed. Time and traffic are charged
    /// either way, like a real send onto a dying link.
    pub(crate) fn try_send_raw(&self, dst: usize, tag: u32, payload: Bytes) -> Result<(), ()> {
        assert!(dst < self.size(), "destination rank {dst} out of range");
        self.check_crashed();
        self.stats.msgs.set(self.stats.msgs.get() + 1);
        self.stats.bytes.set(self.stats.bytes.get() + payload.len() as u64);
        reshape_telemetry::incr("mpisim.msgs_sent", 1);
        reshape_telemetry::incr("mpisim.bytes_sent", payload.len() as u64);
        let slow = self
            .core
            .fault
            .link_factor(self.group.nodes[self.rank], self.group.nodes[dst]);
        let arrival = {
            let mut ep = self.ep.borrow_mut();
            ep.now += self.core.net.send_cost(payload.len()) * slow;
            ep.now + self.core.net.latency * slow
        };
        if self.core.fault.crashed_by(self.group.nodes[dst], arrival) {
            reshape_telemetry::incr("mpisim.sends_lost_to_crash", 1);
            return Err(());
        }
        self.core
            .router
            .try_deliver(
                self.group.members[dst],
                Envelope {
                    comm: self.group.id,
                    src: self.rank,
                    tag,
                    arrival,
                    payload,
                },
            )
            .map_err(|_| ())
    }

    /// Send a slice of POD elements to `dst` with a user tag.
    ///
    /// Sends are buffered (never block on the receiver), like an eager-mode
    /// MPI send. `tag` must be below `2^24`; higher tags are reserved.
    pub fn send<T: Pod>(&self, dst: usize, tag: u32, data: &[T]) {
        assert!(tag < TAG_INTERNAL, "tag {tag} is in the reserved range");
        self.send_raw(dst, tag, to_bytes(data));
    }

    /// Fault-aware send: `Err(())` when the destination is dead, doomed to
    /// die before the message would arrive, or its mailbox is gone. Used by
    /// the transactional redistribution and other survivable protocols.
    /// The error is deliberately unit: the only failure is "peer dead", and
    /// the caller already knows which peer it addressed.
    #[allow(clippy::result_unit_err)]
    pub fn try_send<T: Pod>(&self, dst: usize, tag: u32, data: &[T]) -> Result<(), ()> {
        assert!(tag < TAG_INTERNAL, "tag {tag} is in the reserved range");
        self.try_send_raw(dst, tag, to_bytes(data))
    }

    /// Blocking receive of a message from `src` with tag `tag`.
    pub fn recv<T: Pod>(&self, src: usize, tag: u32) -> Vec<T> {
        let (_, _, payload) = self.recv_raw(Some(src), Some(tag));
        from_bytes(&payload)
    }

    /// Blocking receive into an existing buffer, reusing its allocation.
    pub fn recv_into<T: Pod>(&self, src: usize, tag: u32, out: &mut Vec<T>) {
        let (_, _, payload) = self.recv_raw(Some(src), Some(tag));
        from_bytes_into(&payload, out);
    }

    /// Blocking receive with optional wildcards; returns `(source, tag,
    /// data)`.
    pub fn recv_match<T: Pod>(&self, src: Option<usize>, tag: Option<u32>) -> (usize, u32, Vec<T>) {
        let (s, t, payload) = self.recv_raw(src, tag);
        (s, t, from_bytes(&payload))
    }

    /// Combined exchange: send `data` to `dst` and receive from `src` with
    /// the same tag. Deadlock-free because sends are buffered.
    pub fn sendrecv<T: Pod>(&self, dst: usize, src: usize, tag: u32, data: &[T]) -> Vec<T> {
        self.send(dst, tag, data);
        self.recv(src, tag)
    }

    /// Fault-aware blocking receive: wait for a matching message from `src`,
    /// or `Err(())` once `src`'s process has terminated without one.
    ///
    /// The outcome is decided by virtual-time semantics, not wall-clock
    /// luck: we only give up after observing the sender's *actual* thread
    /// death, and a dead thread's sends are all already in our mailbox, so a
    /// final probe after the death observation cleanly separates "sent
    /// before crashing" (delivered) from "died first" (`Err`). The poll loop
    /// does not advance this rank's virtual clock — a failed receive costs
    /// no virtual time, matching the usual model where failure detection
    /// rides on the surrounding protocol's own traffic. The error is
    /// deliberately unit: the only failure is "peer died first".
    #[allow(clippy::result_unit_err)]
    pub fn recv_or_failed<T: Pod>(&self, src: usize, tag: u32) -> Result<Vec<T>, ()> {
        assert!(src < self.size(), "source rank {src} out of range");
        self.check_crashed();
        let deadline = std::time::Instant::now() + crate::endpoint::deadlock_timeout();
        loop {
            if self.iprobe(Some(src), Some(tag)) {
                return Ok(self.recv(src, tag));
            }
            if !self.rank_alive(src) {
                // One final drain: everything the dead thread sent is
                // already delivered to our channel.
                if self.iprobe(Some(src), Some(tag)) {
                    return Ok(self.recv(src, tag));
                }
                return Err(());
            }
            if std::time::Instant::now() > deadline {
                panic!(
                    "rank {}: recv_or_failed from rank {src} tag {tag} made no progress \
                     within the deadlock timeout — peer is alive but silent",
                    self.rank
                );
            }
            std::thread::yield_now();
        }
    }

    /// Non-blocking test for a matching incoming message.
    pub fn iprobe(&self, src: Option<usize>, tag: Option<u32>) -> bool {
        self.ep.borrow_mut().iprobe(self.group.id, src, tag)
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Duplicate the communicator: same group, fresh id, so traffic on the
    /// duplicate can never match traffic on the original.
    pub fn dup(&self) -> Comm {
        let id = if self.rank == 0 {
            let id = self.core.router.alloc_comm_id();
            for r in 1..self.size() {
                self.send_raw(r, TAG_SPLIT, to_bytes(&[id]));
            }
            id
        } else {
            let (_, _, payload) = self.recv_raw(Some(0), Some(TAG_SPLIT));
            from_bytes::<u64>(&payload)[0]
        };
        Comm {
            group: Arc::new(Group {
                id,
                members: self.group.members.clone(),
                nodes: self.group.nodes.clone(),
            }),
            rank: self.rank,
            ep: Rc::clone(&self.ep),
            core: Arc::clone(&self.core),
            stats: Rc::default(),
        }
    }

    /// Partition the communicator by `color` (ranks passing `None` get no
    /// new communicator), ordering ranks within each part by `(key, rank)`.
    ///
    /// This is `MPI_Comm_split`; ReSHAPE's shrink path uses it to carve the
    /// retained subset out of the current processor set.
    pub fn split(&self, color: Option<u32>, key: i64) -> Option<Comm> {
        const NO_COLOR: u64 = u64::MAX;
        // Encode (color, key) per rank and gather at rank 0.
        let mine = [
            color.map_or(NO_COLOR, |c| c as u64),
            key as u64,
        ];
        if self.rank == 0 {
            let mut entries: Vec<(u64, i64, usize)> = Vec::with_capacity(self.size());
            entries.push((mine[0], mine[1] as i64, 0));
            for r in 1..self.size() {
                let v: Vec<u64> = {
                    let (_, _, p) = self.recv_raw(Some(r), Some(TAG_SPLIT));
                    from_bytes(&p)
                };
                entries.push((v[0], v[1] as i64, r));
            }
            // Group by color; order by (key, old rank).
            let mut colors: Vec<u64> = entries
                .iter()
                .map(|e| e.0)
                .filter(|&c| c != NO_COLOR)
                .collect();
            colors.sort_unstable();
            colors.dedup();
            // Per old rank: (new comm id, new rank, member list).
            let mut assignments: Vec<Option<(u64, usize, Vec<usize>)>> = vec![None; self.size()];
            for c in colors {
                let mut part: Vec<(i64, usize)> = entries
                    .iter()
                    .filter(|e| e.0 == c)
                    .map(|e| (e.1, e.2))
                    .collect();
                part.sort_unstable();
                let id = self.core.router.alloc_comm_id();
                let old_ranks: Vec<usize> = part.iter().map(|&(_, r)| r).collect();
                for (new_rank, &(_, old_rank)) in part.iter().enumerate() {
                    assignments[old_rank] = Some((id, new_rank, old_ranks.clone()));
                }
            }
            // Scatter assignments: [id, new_rank, n, old_ranks...] or [NO_COLOR].
            let mut my_assignment = None;
            for (old_rank, a) in assignments.into_iter().enumerate() {
                let msg: Vec<u64> = match &a {
                    Some((id, new_rank, old_ranks)) => {
                        let mut m = vec![*id, *new_rank as u64, old_ranks.len() as u64];
                        m.extend(old_ranks.iter().map(|&r| r as u64));
                        m
                    }
                    None => vec![NO_COLOR],
                };
                if old_rank == 0 {
                    my_assignment = a;
                } else {
                    self.send_raw(old_rank, TAG_SPLIT, to_bytes(&msg));
                }
            }
            my_assignment.map(|(id, new_rank, old_ranks)| self.subgroup_comm(id, new_rank, &old_ranks))
        } else {
            self.send_raw(0, TAG_SPLIT, to_bytes(&mine));
            let v: Vec<u64> = {
                let (_, _, p) = self.recv_raw(Some(0), Some(TAG_SPLIT));
                from_bytes(&p)
            };
            if v[0] == NO_COLOR {
                return None;
            }
            let id = v[0];
            let new_rank = v[1] as usize;
            let old_ranks: Vec<usize> = v[3..].iter().map(|&r| r as usize).collect();
            Some(self.subgroup_comm(id, new_rank, &old_ranks))
        }
    }

    /// Build a communicator over `survivors` (old ranks, strictly
    /// ascending) *without any communication* — usable when some ranks of
    /// this communicator are dead and a collective `split` would wedge.
    ///
    /// Every survivor derives the same communicator id locally by hashing
    /// the parent id and the survivor set; bit 63 is forced on, and
    /// [`crate::router::Router::alloc_comm_id`] allocates sequentially from
    /// 1, so derived ids can never collide with allocated ones. Two
    /// different survivor sets of the same parent hash to different ids, so
    /// stale traffic from a disagreeing peer cannot match.
    ///
    /// Returns `None` when this rank is not in `survivors`.
    pub fn survivor_comm(&self, survivors: &[usize]) -> Option<Comm> {
        assert!(
            survivors.windows(2).all(|w| w[0] < w[1]),
            "survivor list must be strictly ascending"
        );
        assert!(
            survivors.iter().all(|&r| r < self.size()),
            "survivor rank out of range"
        );
        let new_rank = survivors.iter().position(|&r| r == self.rank)?;
        let mut h: u64 = self.group.id ^ 0x9E37_79B9_7F4A_7C15;
        for &r in survivors {
            h = h
                .wrapping_mul(0x0000_0100_0000_01B3)
                .wrapping_add(r as u64 + 1)
                ^ (h >> 29);
        }
        Some(self.subgroup_comm(h | (1 << 63), new_rank, survivors))
    }

    fn subgroup_comm(&self, id: u64, new_rank: usize, old_ranks: &[usize]) -> Comm {
        let members = old_ranks.iter().map(|&r| self.group.members[r]).collect();
        let nodes = old_ranks.iter().map(|&r| self.group.nodes[r]).collect();
        Comm {
            group: Arc::new(Group { id, members, nodes }),
            rank: new_rank,
            ep: Rc::clone(&self.ep),
            core: Arc::clone(&self.core),
            stats: Rc::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{NetModel, Universe};

    #[test]
    fn p2p_round_trip() {
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.launch(2, None, "p2p", |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0f64, 2.0, 3.0]);
                let back: Vec<f64> = comm.recv(1, 2);
                assert_eq!(back, vec![6.0]);
            } else {
                let data: Vec<f64> = comm.recv(0, 1);
                comm.send(0, 2, &[data.iter().sum::<f64>()]);
            }
        })
        .join_ok();
    }

    #[test]
    fn self_send() {
        let uni = Universe::new(1, 1, NetModel::ideal());
        uni.launch(1, None, "self", |comm| {
            comm.send(0, 3, &[42u64]);
            let got: Vec<u64> = comm.recv(0, 3);
            assert_eq!(got, vec![42]);
        })
        .join_ok();
    }

    #[test]
    fn sendrecv_ring_shift() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "ring", |comm| {
            let p = comm.size();
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            let got = comm.sendrecv(next, prev, 5, &[comm.rank() as u64]);
            assert_eq!(got, vec![prev as u64]);
        })
        .join_ok();
    }

    #[test]
    fn dup_isolates_traffic() {
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.launch(2, None, "dup", |comm| {
            let dup = comm.dup();
            assert_ne!(dup.id(), comm.id());
            if comm.rank() == 0 {
                comm.send(1, 1, &[10u64]);
                dup.send(1, 1, &[20u64]);
            } else {
                // Receive on dup first: must get the dup message even though
                // the original-comm message arrived earlier.
                let d: Vec<u64> = dup.recv(0, 1);
                let o: Vec<u64> = comm.recv(0, 1);
                assert_eq!((d[0], o[0]), (20, 10));
            }
        })
        .join_ok();
    }

    #[test]
    fn comm_stats_count_sends_per_communicator() {
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.launch(2, None, "stats", |comm| {
            let dup = comm.dup();
            // dup's id handshake travelled on `comm`; the new communicator
            // itself starts fresh.
            assert_eq!(dup.stats().msgs_sent(), 0, "fresh comm starts at zero");
            let base_msgs = comm.stats().msgs_sent();
            let base_bytes = comm.stats().bytes_sent();
            if comm.rank() == 0 {
                comm.send(1, 1, &[1u64, 2, 3]);
                dup.send(1, 1, &[4u64]);
                // Clones share counters; new communicators do not.
                let alias = comm.clone();
                assert_eq!(alias.stats().msgs_sent(), base_msgs + 1);
                assert_eq!(comm.stats().bytes_sent(), base_bytes + 3 * 8);
                assert_eq!(dup.stats().msgs_sent(), 1);
                assert_eq!(dup.stats().bytes_sent(), 8);
            } else {
                let _: Vec<u64> = comm.recv(0, 1);
                let _: Vec<u64> = dup.recv(0, 1);
                assert_eq!(comm.stats().msgs_sent(), 0, "receives are not sends");
            }
        })
        .join_ok();
    }

    #[test]
    fn split_into_halves() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "split", |comm| {
            let color = (comm.rank() / 2) as u32;
            let sub = comm.split(Some(color), comm.rank() as i64).unwrap();
            assert_eq!(sub.size(), 2);
            assert_eq!(sub.rank(), comm.rank() % 2);
            // Message within subgroup.
            if sub.rank() == 0 {
                sub.send(1, 9, &[color as u64]);
            } else {
                let got: Vec<u64> = sub.recv(0, 9);
                assert_eq!(got, vec![color as u64]);
            }
        })
        .join_ok();
    }

    #[test]
    fn split_with_none_color() {
        let uni = Universe::new(3, 1, NetModel::ideal());
        uni.launch(3, None, "split-none", |comm| {
            let color = if comm.rank() == 2 { None } else { Some(0) };
            let sub = comm.split(color, 0);
            if comm.rank() == 2 {
                assert!(sub.is_none());
            } else {
                assert_eq!(sub.unwrap().size(), 2);
            }
        })
        .join_ok();
    }

    #[test]
    fn split_key_reorders_ranks() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "split-key", |comm| {
            // Reverse the order via descending keys.
            let key = -(comm.rank() as i64);
            let sub = comm.split(Some(0), key).unwrap();
            assert_eq!(sub.rank(), comm.size() - 1 - comm.rank());
        })
        .join_ok();
    }

    #[test]
    fn virtual_time_causality() {
        let uni = Universe::new(2, 1, NetModel::gigabit_ethernet());
        uni.launch(2, None, "vtime", |comm| {
            if comm.rank() == 0 {
                comm.advance(1.0); // modeled computation
                comm.send(1, 1, &vec![0u8; 1 << 20]);
            } else {
                let _: Vec<u8> = comm.recv(0, 1);
                // Receiver time must reflect sender compute + transfer.
                assert!(comm.vtime() > 1.0 + (1 << 20) as f64 / 125e6 * 0.9);
            }
        })
        .join_ok();
    }

    #[test]
    fn try_send_and_recv_or_failed_work_between_live_ranks() {
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.launch(2, None, "try-live", |comm| {
            if comm.rank() == 0 {
                comm.try_send(1, 7, &[9u64]).expect("peer is alive");
            } else {
                let got: Vec<u64> = comm.recv_or_failed(0, 7).expect("peer is alive");
                assert_eq!(got, vec![9]);
            }
        })
        .join_ok();
    }

    #[test]
    fn try_send_to_terminated_rank_fails() {
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.launch(2, None, "try-dead", |comm| {
            if comm.rank() == 1 {
                return; // terminates; mailbox is reaped
            }
            while comm.rank_alive(1) {
                std::thread::yield_now();
            }
            comm.try_send(1, 7, &[1u64])
                .expect_err("dead destination must fail the send");
        })
        .join_ok();
    }

    #[test]
    fn try_send_to_doomed_rank_fails_before_it_dies() {
        use crate::NodeId;
        // Node 1 is doomed at t=5.0 but its thread blocks and never reaches
        // the crash checkpoint; a message arriving at t>=5.0 can still never
        // be consumed, so the send must fail deterministically.
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.inject_node_crash(NodeId(1), 5.0);
        uni.launch(2, None, "try-doomed", |comm| {
            if comm.rank() == 1 {
                // Block until rank 0 releases us, then walk into the crash.
                let _: Vec<u64> = comm.recv(0, 8);
                comm.advance(10.0);
                unreachable!("advance crossed the crash deadline");
            }
            comm.advance(6.0); // our clock is past the peer's doom
            comm.try_send(1, 7, &[1u64])
                .expect_err("message would arrive after the destination's crash");
            comm.send(1, 8, &[0u64]); // pre-doom arrival: release the victim
        })
        .join();
    }

    #[test]
    fn recv_or_failed_reports_dead_sender() {
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.launch(2, None, "rof-dead", |comm| {
            if comm.rank() == 1 {
                return;
            }
            comm.recv_or_failed::<u64>(1, 7)
                .expect_err("sender died without sending");
        })
        .join_ok();
    }

    #[test]
    fn recv_or_failed_delivers_message_sent_before_death() {
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.launch(2, None, "rof-race", |comm| {
            if comm.rank() == 1 {
                comm.send(0, 7, &[77u64]);
                return; // dies immediately after sending
            }
            // Wait for the actual death so the final-drain path is the one
            // under test, not the fast path.
            while comm.rank_alive(1) {
                std::thread::yield_now();
            }
            let got: Vec<u64> = comm
                .recv_or_failed(1, 7)
                .expect("message sent before death must be delivered");
            assert_eq!(got, vec![77]);
        })
        .join_ok();
    }

    #[test]
    fn survivor_comm_agrees_without_communication() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "survivors", |comm| {
            if comm.rank() == 2 {
                return; // the casualty
            }
            while comm.rank_alive(2) {
                std::thread::yield_now();
            }
            let sub = comm
                .survivor_comm(&[0, 1, 3])
                .expect("every survivor is in the set");
            assert_eq!(sub.size(), 3);
            assert_ne!(sub.id(), comm.id());
            assert!(sub.id() & (1 << 63) != 0, "derived ids carry the high bit");
            // Ranks compact: old 0,1,3 -> new 0,1,2; messaging works.
            let expect_rank = match comm.rank() {
                0 => 0,
                1 => 1,
                _ => 2,
            };
            assert_eq!(sub.rank(), expect_rank);
            let sum = sub.allreduce(crate::ReduceOp::Sum, &[comm.rank() as u64]);
            assert_eq!(sum, vec![4], "sum of old ranks 0, 1, 3");
        })
        .join_ok();
    }

    #[test]
    fn survivor_comm_excludes_non_survivors() {
        let uni = Universe::new(3, 1, NetModel::ideal());
        uni.launch(3, None, "not-in-set", |comm| {
            let sub = comm.survivor_comm(&[0, 1]);
            assert_eq!(sub.is_some(), comm.rank() < 2);
            comm.barrier();
        })
        .join_ok();
    }

    #[test]
    #[should_panic(expected = "reserved range")]
    fn reserved_tag_rejected() {
        let uni = Universe::new(1, 1, NetModel::ideal());
        let h = uni.launch(1, None, "tag", |comm| {
            comm.send(0, 1 << 25, &[0u8]);
        });
        h.join_ok();
    }
}
