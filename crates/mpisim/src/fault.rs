//! Seeded fault injection for the simulated cluster.
//!
//! Three fault classes, mirroring what a real cluster throws at ReSHAPE's
//! System Monitor:
//!
//! * **Node crashes** — a node dies at a virtual time; any process on it
//!   panics at its next communication or clock advance, which the
//!   [`crate::Universe`] surfaces as a [`crate::ProcStatus::Failed`] event
//!   for monitors to reclaim.
//! * **Spawn caps** — the next `spawn` call is granted fewer (possibly
//!   zero) processes than requested, modeling `MPI_Comm_spawn_multiple`
//!   returning `MPI_ERR_SPAWN` for part of the request.
//! * **Link slowdowns** — traffic between two nodes pays a multiplicative
//!   time factor (degraded switch port, congested uplink).
//!
//! All state lives in the universe and is armed lazily: the hot messaging
//! paths pay a single relaxed atomic load until the first injection.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::comm::NodeId;

#[derive(Default)]
pub(crate) struct FaultState {
    /// Fast path: false until the first injection of any kind.
    armed: AtomicBool,
    /// Node → virtual time at which it crashes.
    node_crashes: Mutex<HashMap<u32, f64>>,
    /// Per-`spawn`-call grant caps, consumed front to back.
    spawn_caps: Mutex<VecDeque<usize>>,
    /// Directed (src node, dst node) → time multiplier (≥ 1.0 slows down).
    link_slow: Mutex<HashMap<(u32, u32), f64>>,
}

impl FaultState {
    pub fn inject_node_crash(&self, node: NodeId, at_vtime: f64) {
        self.node_crashes.lock().insert(node.0, at_vtime);
        self.armed.store(true, Ordering::Release);
    }

    pub fn inject_spawn_cap(&self, cap: usize) {
        self.spawn_caps.lock().push_back(cap);
        self.armed.store(true, Ordering::Release);
    }

    pub fn inject_link_slowdown(&self, src: NodeId, dst: NodeId, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "slowdown factor must be positive");
        self.link_slow.lock().insert((src.0, dst.0), factor);
        self.armed.store(true, Ordering::Release);
    }

    fn armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Panic (killing the calling simulated process) if `node` has crashed
    /// by virtual time `now`. Called from the communication checkpoints; the
    /// panic unwinds into the universe's status tracking like any other
    /// process failure.
    pub fn check_crash(&self, node: NodeId, now: f64) {
        if !self.armed() {
            return;
        }
        if let Some(&at) = self.node_crashes.lock().get(&node.0) {
            if now >= at {
                panic!("fault: node {} crashed at t={at}", node.0);
            }
        }
    }

    /// Grant for a spawn of `requested` processes: the front cap of the
    /// injection queue, if any, clamped to the request.
    pub fn next_spawn_cap(&self, requested: usize) -> usize {
        if !self.armed() {
            return requested;
        }
        match self.spawn_caps.lock().pop_front() {
            Some(cap) => cap.min(requested),
            None => requested,
        }
    }

    /// Time multiplier for a message from `src` to `dst` (1.0 = healthy).
    pub fn link_factor(&self, src: NodeId, dst: NodeId) -> f64 {
        if !self.armed() {
            return 1.0;
        }
        self.link_slow
            .lock()
            .get(&(src.0, dst.0))
            .copied()
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_state_is_passthrough() {
        let f = FaultState::default();
        f.check_crash(NodeId(0), 1e12);
        assert_eq!(f.next_spawn_cap(5), 5);
        assert_eq!(f.link_factor(NodeId(0), NodeId(1)), 1.0);
    }

    #[test]
    fn crash_fires_only_at_deadline() {
        let f = FaultState::default();
        f.inject_node_crash(NodeId(2), 10.0);
        f.check_crash(NodeId(2), 9.99); // before the deadline: fine
        f.check_crash(NodeId(1), 20.0); // other nodes: fine
        let err = std::panic::catch_unwind(|| f.check_crash(NodeId(2), 10.0));
        assert!(err.is_err());
    }

    #[test]
    fn spawn_caps_consume_in_order() {
        let f = FaultState::default();
        f.inject_spawn_cap(1);
        f.inject_spawn_cap(0);
        assert_eq!(f.next_spawn_cap(4), 1);
        assert_eq!(f.next_spawn_cap(4), 0);
        assert_eq!(f.next_spawn_cap(4), 4, "queue exhausted: full grant");
    }

    #[test]
    fn link_slowdown_is_directed() {
        let f = FaultState::default();
        f.inject_link_slowdown(NodeId(0), NodeId(1), 4.0);
        assert_eq!(f.link_factor(NodeId(0), NodeId(1)), 4.0);
        assert_eq!(f.link_factor(NodeId(1), NodeId(0)), 1.0);
    }
}
