//! Seeded fault injection for the simulated cluster.
//!
//! Three fault classes, mirroring what a real cluster throws at ReSHAPE's
//! System Monitor:
//!
//! * **Node crashes** — a node dies at a virtual time; any process on it
//!   panics at its next communication or clock advance, which the
//!   [`crate::Universe`] surfaces as a [`crate::ProcStatus::Failed`] event
//!   for monitors to reclaim.
//! * **Spawn caps** — the next `spawn` call is granted fewer (possibly
//!   zero) processes than requested, modeling `MPI_Comm_spawn_multiple`
//!   returning `MPI_ERR_SPAWN` for part of the request.
//! * **Link slowdowns** — traffic between two nodes pays a multiplicative
//!   time factor (degraded switch port, congested uplink).
//! * **Message faults** — control-plane messages (tags in
//!   `[TAG_CTRL_BASE, 2^24)`) can be lost, duplicated or reordered with
//!   seeded probabilities, modeling an unreliable scheduler↔application
//!   control link. Data-plane and internal-collective traffic is exempt:
//!   those paths have no retransmit protocol and would deadlock.
//!
//! All state lives in the universe and is armed lazily: the hot messaging
//! paths pay a single relaxed atomic load until the first injection.
//! [`FaultState::clear`] disarms everything, so long-lived universes (e.g.
//! a testkit scenario runner) can reuse a cluster between experiments.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::comm::{NodeId, TAG_CTRL_BASE, TAG_INTERNAL};
use crate::router::{Envelope, ProcId, Router};

/// Seeded probabilities for control-plane message faults. One SplitMix64
/// stream drives all three draws so a given seed yields one deterministic
/// fault schedule.
struct MsgFaults {
    loss: f64,
    dup: f64,
    reorder: f64,
    rng: u64,
}

impl MsgFaults {
    fn new() -> Self {
        MsgFaults {
            loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            rng: 0,
        }
    }

    fn next(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[derive(Default)]
pub(crate) struct FaultState {
    /// Fast path: false until the first injection of any kind.
    armed: AtomicBool,
    /// Node → virtual time at which it crashes.
    node_crashes: Mutex<HashMap<u32, f64>>,
    /// Per-`spawn`-call grant caps, consumed front to back.
    spawn_caps: Mutex<VecDeque<usize>>,
    /// Directed (src node, dst node) → time multiplier (≥ 1.0 slows down).
    link_slow: Mutex<HashMap<(u32, u32), f64>>,
    /// Control-plane message fault probabilities, when injected.
    msg_faults: Mutex<Option<MsgFaults>>,
    /// Per-destination frame held back by the reorder fault; it is delivered
    /// after the next control message to the same destination.
    reorder_stash: Mutex<HashMap<u64, Envelope>>,
}

impl FaultState {
    pub fn inject_node_crash(&self, node: NodeId, at_vtime: f64) {
        self.node_crashes.lock().insert(node.0, at_vtime);
        self.armed.store(true, Ordering::Release);
    }

    pub fn inject_spawn_cap(&self, cap: usize) {
        self.spawn_caps.lock().push_back(cap);
        self.armed.store(true, Ordering::Release);
    }

    pub fn inject_link_slowdown(&self, src: NodeId, dst: NodeId, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "slowdown factor must be positive");
        self.link_slow.lock().insert((src.0, dst.0), factor);
        self.armed.store(true, Ordering::Release);
    }

    fn with_msg_faults(&self, p: f64, seed: u64, set: impl FnOnce(&mut MsgFaults, f64)) {
        assert!((0.0..1.0).contains(&p), "fault probability must be in [0, 1)");
        let mut guard = self.msg_faults.lock();
        let mf = guard.get_or_insert_with(MsgFaults::new);
        set(mf, p);
        // XOR-mix so stacking several fault classes still yields one
        // deterministic stream per (seed set).
        mf.rng ^= seed;
        drop(guard);
        self.armed.store(true, Ordering::Release);
    }

    /// Control messages are dropped with probability `p`.
    pub fn inject_msg_loss(&self, p: f64, seed: u64) {
        self.with_msg_faults(p, seed, |mf, p| mf.loss = p);
    }

    /// Control messages are delivered twice with probability `p`.
    pub fn inject_msg_dup(&self, p: f64, seed: u64) {
        self.with_msg_faults(p, seed, |mf, p| mf.dup = p);
    }

    /// Control messages are held back and delivered after the next control
    /// message to the same destination with probability `p`.
    pub fn inject_msg_reorder(&self, p: f64, seed: u64) {
        self.with_msg_faults(p, seed, |mf, p| mf.reorder = p);
    }

    /// Disarm every fault class and flush any reorder-held frames
    /// (best-effort: destinations that have since terminated are skipped).
    /// Lets a long-lived universe be reused across experiments.
    pub fn clear(&self, router: &Router) {
        self.node_crashes.lock().clear();
        self.spawn_caps.lock().clear();
        self.link_slow.lock().clear();
        *self.msg_faults.lock() = None;
        let held: Vec<(u64, Envelope)> = self.reorder_stash.lock().drain().collect();
        for (dst, env) in held {
            let _ = router.try_deliver(ProcId(dst), env);
        }
        self.armed.store(false, Ordering::Release);
    }

    fn armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Panic (killing the calling simulated process) if `node` has crashed
    /// by virtual time `now`. Called from the communication checkpoints; the
    /// panic unwinds into the universe's status tracking like any other
    /// process failure.
    pub fn check_crash(&self, node: NodeId, now: f64) {
        if !self.armed() {
            return;
        }
        if let Some(&at) = self.node_crashes.lock().get(&node.0) {
            if now >= at {
                panic!("fault: node {} crashed at t={at}", node.0);
            }
        }
    }

    /// Whether `node` has an injected crash firing at or before virtual time
    /// `now` — *without* killing the caller. Survivable protocols use this to
    /// classify a peer as doomed: even if its thread has not yet reached the
    /// checkpoint that kills it, no message it sends can arrive at or after
    /// `now`, and any message addressed to it arriving at or after its crash
    /// time can never be consumed.
    pub fn crashed_by(&self, node: NodeId, now: f64) -> bool {
        if !self.armed() {
            return false;
        }
        self.node_crashes
            .lock()
            .get(&node.0)
            .is_some_and(|&at| now >= at)
    }

    /// Grant for a spawn of `requested` processes: the front cap of the
    /// injection queue, if any, clamped to the request.
    pub fn next_spawn_cap(&self, requested: usize) -> usize {
        if !self.armed() {
            return requested;
        }
        match self.spawn_caps.lock().pop_front() {
            Some(cap) => cap.min(requested),
            None => requested,
        }
    }

    /// Time multiplier for a message from `src` to `dst` (1.0 = healthy).
    pub fn link_factor(&self, src: NodeId, dst: NodeId) -> f64 {
        if !self.armed() {
            return 1.0;
        }
        self.link_slow
            .lock()
            .get(&(src.0, dst.0))
            .copied()
            .unwrap_or(1.0)
    }

    /// Deliver `env` through the message-fault layer. Non-control tags and
    /// unarmed state pass straight through to [`Router::deliver`]. With
    /// message faults armed, a control frame may be lost, duplicated, or
    /// held back behind the next frame to the same destination — and sends
    /// to destinations that have terminated are silently dropped, because a
    /// retransmit protocol legitimately races process exit.
    pub(crate) fn deliver_faulty(&self, router: &Router, dst: ProcId, env: Envelope) {
        let is_ctrl = (TAG_CTRL_BASE..TAG_INTERNAL).contains(&env.tag);
        if !is_ctrl {
            router.deliver(dst, env);
            return;
        }
        let fate = if self.armed() {
            let mut guard = self.msg_faults.lock();
            match guard.as_mut() {
                None => None,
                Some(mf) => {
                    let (loss, dup, reorder) = (mf.loss, mf.dup, mf.reorder);
                    Some((mf.chance(loss), mf.chance(dup), mf.chance(reorder)))
                }
            }
        } else {
            None
        };
        let Some((lost, duped, reordered)) = fate else {
            // Control-plane frames carry at-least-once protocols whose
            // retransmissions legitimately race process exit, so even on a
            // healthy wire a send to a terminated destination is dropped
            // rather than treated as a protocol bug.
            let _ = router.try_deliver(dst, env);
            return;
        };
        if lost {
            reshape_telemetry::incr("mpisim.ctrl_msgs_lost", 1);
            return;
        }
        let mut stash = self.reorder_stash.lock();
        if reordered && !stash.contains_key(&dst.0) {
            reshape_telemetry::incr("mpisim.ctrl_msgs_reordered", 1);
            stash.insert(dst.0, env);
            return;
        }
        let held = stash.remove(&dst.0);
        drop(stash);
        if duped {
            reshape_telemetry::incr("mpisim.ctrl_msgs_duped", 1);
            let copy = Envelope {
                comm: env.comm,
                src: env.src,
                tag: env.tag,
                arrival: env.arrival,
                payload: env.payload.clone(),
            };
            let _ = router.try_deliver(dst, copy);
        }
        let _ = router.try_deliver(dst, env);
        // A frame held back by an earlier reorder draw goes out after this
        // one, completing the swap.
        if let Some(h) = held {
            let _ = router.try_deliver(dst, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_state_is_passthrough() {
        let f = FaultState::default();
        f.check_crash(NodeId(0), 1e12);
        assert_eq!(f.next_spawn_cap(5), 5);
        assert_eq!(f.link_factor(NodeId(0), NodeId(1)), 1.0);
    }

    #[test]
    fn crash_fires_only_at_deadline() {
        let f = FaultState::default();
        f.inject_node_crash(NodeId(2), 10.0);
        f.check_crash(NodeId(2), 9.99); // before the deadline: fine
        f.check_crash(NodeId(1), 20.0); // other nodes: fine
        let err = std::panic::catch_unwind(|| f.check_crash(NodeId(2), 10.0));
        assert!(err.is_err());
    }

    #[test]
    fn spawn_caps_consume_in_order() {
        let f = FaultState::default();
        f.inject_spawn_cap(1);
        f.inject_spawn_cap(0);
        assert_eq!(f.next_spawn_cap(4), 1);
        assert_eq!(f.next_spawn_cap(4), 0);
        assert_eq!(f.next_spawn_cap(4), 4, "queue exhausted: full grant");
    }

    #[test]
    fn link_slowdown_is_directed() {
        let f = FaultState::default();
        f.inject_link_slowdown(NodeId(0), NodeId(1), 4.0);
        assert_eq!(f.link_factor(NodeId(0), NodeId(1)), 4.0);
        assert_eq!(f.link_factor(NodeId(1), NodeId(0)), 1.0);
    }

    fn drain(rx: &crossbeam_channel::Receiver<Envelope>) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Ok(e) = rx.try_recv() {
            out.push(e);
        }
        out
    }

    fn ctrl_env(tag: u32, marker: u8) -> Envelope {
        Envelope {
            comm: 1,
            src: 0,
            tag,
            arrival: 0.0,
            payload: bytes::Bytes::copy_from_slice(&[marker]),
        }
    }

    #[test]
    fn msg_loss_drops_only_control_tags() {
        let f = FaultState::default();
        f.inject_msg_loss(0.999, 42);
        let r = Router::new();
        let (id, rx) = r.register();
        // Data-plane tag: exempt from message faults, always delivered.
        for i in 0..20 {
            f.deliver_faulty(&r, id, ctrl_env(7, i));
        }
        assert_eq!(drain(&rx).len(), 20);
        // Control tag: virtually everything is dropped.
        for i in 0..20 {
            f.deliver_faulty(&r, id, ctrl_env(TAG_CTRL_BASE + 1, i));
        }
        assert!(drain(&rx).len() < 20);
    }

    #[test]
    fn msg_dup_delivers_twice() {
        let f = FaultState::default();
        f.inject_msg_dup(0.999, 7);
        let r = Router::new();
        let (id, rx) = r.register();
        f.deliver_faulty(&r, id, ctrl_env(TAG_CTRL_BASE, 9));
        let got = drain(&rx);
        assert_eq!(got.len(), 2, "near-certain dup probability delivers twice");
        assert!(got.iter().all(|e| e.payload[0] == 9));
    }

    #[test]
    fn msg_reorder_swaps_adjacent_frames() {
        let f = FaultState::default();
        f.inject_msg_reorder(0.999, 3);
        let r = Router::new();
        let (id, rx) = r.register();
        f.deliver_faulty(&r, id, ctrl_env(TAG_CTRL_BASE, 1));
        assert_eq!(drain(&rx).len(), 0, "first frame is held back");
        f.deliver_faulty(&r, id, ctrl_env(TAG_CTRL_BASE, 2));
        let got: Vec<u8> = drain(&rx).iter().map(|e| e.payload[0]).collect();
        assert_eq!(got, vec![2, 1], "held frame follows the next one");
    }

    #[test]
    fn faulty_delivery_to_dead_destination_is_silent() {
        let f = FaultState::default();
        f.inject_msg_dup(0.0, 1); // arm msg faults without altering fate
        let r = Router::new();
        let (id, rx) = r.register();
        drop(rx);
        r.deregister(id);
        // Would panic via Router::deliver; the fault layer drops instead.
        f.deliver_faulty(&r, id, ctrl_env(TAG_CTRL_BASE, 0));
    }

    #[test]
    fn clear_disarms_and_flushes_stash() {
        let f = FaultState::default();
        f.inject_msg_reorder(0.999, 5);
        f.inject_spawn_cap(0);
        f.inject_node_crash(NodeId(1), 1.0);
        let r = Router::new();
        let (id, rx) = r.register();
        f.deliver_faulty(&r, id, ctrl_env(TAG_CTRL_BASE, 4));
        assert_eq!(drain(&rx).len(), 0, "frame held by reorder");
        f.clear(&r);
        let got: Vec<u8> = drain(&rx).iter().map(|e| e.payload[0]).collect();
        assert_eq!(got, vec![4], "clear flushes the held frame");
        // Everything is disarmed again.
        assert_eq!(f.next_spawn_cap(3), 3);
        f.check_crash(NodeId(1), 1e12);
        f.deliver_faulty(&r, id, ctrl_env(TAG_CTRL_BASE, 8));
        assert_eq!(drain(&rx).len(), 1);
    }
}
