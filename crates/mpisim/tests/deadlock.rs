//! Deadlock detection: a mismatched communication pattern must fail fast
//! with a diagnostic naming the blocked receive, not hang the suite.
//!
//! Runs as its own test binary so the shortened timeout (set before any
//! receive runs) cannot leak into other tests.

use reshape_mpisim::{NetModel, ProcStatus, Universe};

#[test]
fn blocked_receive_panics_with_context() {
    // SAFETY: set before any thread reads it (OnceLock initializes on the
    // first blocking receive below).
    unsafe { std::env::set_var("RESHAPE_MPISIM_TIMEOUT_SECS", "2") };

    let uni = Universe::new(2, 1, NetModel::ideal());
    let h = uni.launch(2, None, "deadlock", |comm| {
        if comm.rank() == 0 {
            // Rank 1 never sends on tag 77: this receive can never match.
            let _: Vec<u64> = comm.recv(1, 77);
        }
        // Rank 1 exits immediately.
    });
    let statuses = h.join();
    let rank0 = &statuses[0];
    match &rank0.1 {
        ProcStatus::Failed(msg) => {
            assert!(
                msg.contains("did not complete") && msg.contains("tag Some(77)"),
                "diagnostic should name the blocked receive: {msg}"
            );
        }
        other => panic!("expected a deadlock panic, got {other:?}"),
    }
}
