//! Randomized stress: long random sequences of mixed collectives and
//! point-to-point traffic must complete without deadlock and produce
//! rank-consistent results. Sequences are seeded so failures reproduce.

use proptest::prelude::*;
use reshape_mpisim::{NetModel, ReduceOp, Universe};

/// The op program is derived identically on every rank from the seed, so
/// all ranks execute the same collective sequence.
fn run_program(p: usize, seed: u64, len: usize) {
    Universe::new(p, 1, NetModel::ideal())
        .launch(p, None, "stress", move |comm| {
            let mut s = seed | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            for round in 0..len {
                match next() % 6 {
                    0 => {
                        let root = (next() as usize) % comm.size();
                        let payload_len = (next() as usize) % 64;
                        let data = if comm.rank() == root {
                            vec![round as u64; payload_len]
                        } else {
                            vec![]
                        };
                        let got = comm.bcast(root, &data);
                        assert_eq!(got, vec![round as u64; payload_len]);
                    }
                    1 => {
                        let sum = comm.allreduce(ReduceOp::Sum, &[comm.rank() as u64 + 1]);
                        assert_eq!(sum, vec![(comm.size() * (comm.size() + 1) / 2) as u64]);
                    }
                    2 => comm.barrier(),
                    3 => {
                        // Ring shift with a round-specific tag.
                        let tag = (round % 1000) as u32;
                        let nxt = (comm.rank() + 1) % comm.size();
                        let prv = (comm.rank() + comm.size() - 1) % comm.size();
                        let got = comm.sendrecv(nxt, prv, tag, &[comm.rank() as u64]);
                        assert_eq!(got, vec![prv as u64]);
                    }
                    4 => {
                        let parts: Vec<Vec<u64>> = (0..comm.size())
                            .map(|d| vec![(comm.rank() * 1000 + d) as u64])
                            .collect();
                        let got = comm.alltoallv(&parts);
                        for (src, part) in got.iter().enumerate() {
                            assert_eq!(part, &vec![(src * 1000 + comm.rank()) as u64]);
                        }
                    }
                    _ => {
                        let got = comm.allgather(&[comm.rank() as u64]);
                        for (r, part) in got.iter().enumerate() {
                            assert_eq!(part, &vec![r as u64]);
                        }
                    }
                }
            }
        })
        .join_ok();
}

#[test]
fn long_mixed_sequence_completes() {
    run_program(6, 12345, 300);
}

#[test]
fn single_rank_degenerate_sequences() {
    run_program(1, 7, 100);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_collective_programs_are_consistent(
        p in 1usize..9,
        seed in 0u64..10_000,
        len in 1usize..80,
    ) {
        run_program(p, seed, len);
    }
}
