//! Shared deterministic retry backoff.
//!
//! Two retry paths used to hand-roll the same schedule: the resize
//! driver's spawn-shortfall retry ([`crate::driver::RetryPolicy`]) and the
//! sequenced control channel's retransmit timer
//! ([`crate::ctrl::seq::SeqSender`]). Both now share this one pure
//! function: exponential growth from a base interval, a hard cap, and
//! optional ± jitter derived from a SplitMix64 hash of `(key, attempt)` —
//! no RNG state, so every participant that knows the key computes the
//! identical delay and a replay reproduces the schedule bit for bit.

/// A deterministic exponential backoff schedule with seeded jitter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Backoff {
    /// Delay charged after the first failed attempt (seconds).
    pub base: f64,
    /// Multiplier applied for each further attempt (1.0 = fixed interval).
    pub factor: f64,
    /// Hard ceiling on a single delay (seconds).
    pub max: f64,
    /// ± fraction of deterministic jitter applied to each delay, hashed
    /// from `(key, attempt)` so contending retriers de-synchronize while
    /// every observer of one key computes the identical delay.
    pub jitter_frac: f64,
}

impl Backoff {
    /// A fixed-interval schedule: every attempt waits exactly `interval`.
    /// This is the classic RTO timer expressed as a degenerate backoff.
    pub fn fixed(interval: f64) -> Self {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "backoff interval must be positive"
        );
        Backoff {
            base: interval,
            factor: 1.0,
            max: interval,
            jitter_frac: 0.0,
        }
    }

    /// Delay (seconds) charged after failed attempt `attempt` (1-based).
    /// Pure function of `(self, key, attempt)`: exponential in the
    /// attempt, capped at `max`, then jittered by the hash of the inputs.
    pub fn delay(&self, key: u64, attempt: usize) -> f64 {
        let raw = (self.base * self.factor.powi(attempt as i32 - 1))
            .min(self.max)
            .max(0.0);
        if self.jitter_frac <= 0.0 {
            return raw;
        }
        // SplitMix64 finalizer over (key, attempt) for deterministic jitter.
        let mut z = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        raw * (1.0 + self.jitter_frac * (2.0 * u - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_never_grows() {
        let b = Backoff::fixed(1.5);
        for attempt in 1..20 {
            assert_eq!(b.delay(9, attempt), 1.5);
        }
    }

    #[test]
    fn exponential_growth_respects_the_cap() {
        let b = Backoff {
            base: 0.5,
            factor: 2.0,
            max: 8.0,
            jitter_frac: 0.0,
        };
        assert_eq!(b.delay(0, 1), 0.5);
        assert_eq!(b.delay(0, 2), 1.0);
        assert_eq!(b.delay(0, 3), 2.0);
        assert_eq!(b.delay(0, 5), 8.0);
        assert_eq!(b.delay(0, 50), 8.0, "the cap is hard");
    }

    #[test]
    fn jitter_is_seed_stable_and_bounded() {
        let b = Backoff {
            base: 1.0,
            factor: 2.0,
            max: 16.0,
            jitter_frac: 0.25,
        };
        for key in 0..64u64 {
            for attempt in 1..10 {
                let d1 = b.delay(key, attempt);
                let d2 = b.delay(key, attempt);
                assert_eq!(d1.to_bits(), d2.to_bits(), "schedule must be pure");
                let raw = (b.base * b.factor.powi(attempt as i32 - 1)).min(b.max);
                assert!(
                    (d1 - raw).abs() <= raw * b.jitter_frac + 1e-12,
                    "jitter out of band: {d1} vs raw {raw}"
                );
            }
        }
        // Distinct keys de-synchronize.
        assert_ne!(b.delay(1, 3).to_bits(), b.delay(2, 3).to_bits());
    }
}
