//! The scheduler state machine shared by the real threaded runtime and the
//! discrete-event cluster simulator.
//!
//! [`SchedulerCore`] combines the paper's Application Scheduler (queue +
//! FCFS/backfill allocation), Performance Profiler, and Remap Scheduler
//! policy into one synchronous object: callers feed it events (submission,
//! resize points, completions) stamped with a time, and it returns the
//! actions to actuate (jobs to start, expand/shrink directives). Keeping it
//! synchronous makes every scheduling experiment deterministic and lets the
//! same policy code drive both real threads and simulated clusters.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::job::{JobId, JobSpec, JobState};
use crate::policy::{decide_with, RemapDecision, RemapPolicy, SystemSnapshot};
use crate::pool::ResourcePool;
use crate::profiler::{JobProfile, Profiler, Resize};
use crate::topology::ProcessorConfig;
use crate::wal::{HealAction, Wal, WalError, WalRecord};

/// Queueing discipline for initial allocations (paper §3.1: "two basic
/// resource allocation policies, First Come First Served (FCFS) and simple
/// backfill").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueuePolicy {
    Fcfs,
    Backfill,
}

/// A job the scheduler should start now.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StartAction {
    pub job: JobId,
    pub config: ProcessorConfig,
    /// Processor slots granted (slot `s` = node `s / slots_per_node`).
    pub slots: Vec<usize>,
}

/// Directive returned to a job at its resize point, with the resources to
/// actuate it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Directive {
    Expand {
        to: ProcessorConfig,
        /// Slots granted for the new processes.
        new_slots: Vec<usize>,
    },
    Shrink {
        to: ProcessorConfig,
    },
    NoChange,
    /// The job was cancelled: stop iterating, every process exits. The
    /// scheduler has already reclaimed the job's processors.
    Terminate,
}

/// Scheduler bookkeeping for one job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    pub spec: JobSpec,
    pub state: JobState,
    pub slots: Vec<usize>,
    pub submitted_at: f64,
    pub started_at: Option<f64>,
    pub finished_at: Option<f64>,
}

/// An entry of the scheduling trace (drives the paper's Figures 4 and 5).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedEvent {
    pub time: f64,
    pub job: JobId,
    pub kind: EventKind,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    Submitted,
    Started { config: ProcessorConfig },
    Expanded { from: ProcessorConfig, to: ProcessorConfig },
    Shrunk { from: ProcessorConfig, to: ProcessorConfig },
    /// An expansion directive could not be actuated (spawn failure); the job
    /// reverted to `from` and the granted processors returned to the pool.
    ExpandFailed { from: ProcessorConfig, to: ProcessorConfig },
    /// A node hosting part of the job died; the dead slots were reclaimed
    /// and the job kept running, force-shrunk to the survivors.
    NodeFailed { from: ProcessorConfig, to: ProcessorConfig, lost: usize },
    Finished,
    Failed { reason: String },
    Cancelled,
}

/// Identifier of an advance reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReservationId(pub u64);

/// An advance reservation: `procs` processors withheld from ordinary
/// scheduling during `[start, end)`. Jobs submitted against the
/// reservation (via [`SchedulerCore::submit_reserved`]) may draw on the
/// withheld processors inside the window. Running resizable jobs that
/// squat on reserved capacity when the window opens are shrunk through the
/// normal shrink-for-queue rule — the reservation deficit is presented to
/// the Remap Scheduler as queued demand.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Reservation {
    pub id: ReservationId,
    pub start: f64,
    pub end: f64,
    pub procs: usize,
}

impl Reservation {
    fn active(&self, now: f64) -> bool {
        now >= self.start && now < self.end
    }
}

/// Default retention cap for the scheduling trace (see
/// [`SchedulerCore::with_event_cap`]).
pub const DEFAULT_EVENT_CAP: usize = 65_536;

/// A live borrowed lease on the borrower side: the foreign processors'
/// federation-global ids and the local slot ids the pool minted for them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BorrowedLease {
    /// Local slot ids (minted at the pool's high-water mark, `>= total`).
    pub local: Vec<usize>,
    /// Federation-global processor ids, as carried by the lease grant.
    pub global: Vec<usize>,
    /// The lender's fencing epoch at grant time (0 in pre-epoch streams) —
    /// the partition oracle audits attachments against the lender's current
    /// epoch to prove no lease is honored across a fence.
    #[serde(default)]
    pub lender_epoch: u64,
}

/// What a lease eviction did: jobs force-shrunk off borrowed slots, jobs
/// failed because nothing remained, and how many slots left the pool.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EvictOutcome {
    /// `(job, from, to)` for every job shrunk off the lease's slots.
    pub shrunk: Vec<(JobId, ProcessorConfig, ProcessorConfig)>,
    /// Jobs that held only borrowed slots and failed outright.
    pub failed: Vec<JobId>,
    /// Borrowed slots detached (0 when the lease was unknown — a duplicate
    /// eviction is a no-op).
    pub detached: usize,
}

/// Everything a [`SchedulerCore`] knows, deep-copied into order-normalized
/// containers so equality is well-defined. Produced by
/// [`SchedulerCore::snapshot`]; the crash-restart testkit asserts the
/// recovered core's snapshot equals the pre-crash one field for field.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreSnapshot {
    pub total_procs: usize,
    /// Free slot ids, ascending — pool accounting.
    pub free_slots: Vec<usize>,
    /// Queue order, head first.
    pub queue: Vec<JobId>,
    pub jobs: BTreeMap<JobId, JobRecord>,
    /// Profiler history per job.
    pub profiles: BTreeMap<JobId, JobProfile>,
    pub next_id: u64,
    pub reservations: Vec<Reservation>,
    pub next_reservation: u64,
    pub bindings: BTreeMap<JobId, ReservationId>,
    pub pending_cancel: BTreeSet<JobId>,
    pub busy_proc_seconds: f64,
    pub last_tick: f64,
    pub events: Vec<SchedEvent>,
    pub events_dropped: u64,
    /// Lender-side leases: lease id → native slots away under it.
    pub lent_leases: BTreeMap<u64, Vec<usize>>,
    /// Borrower-side leases: lease id → attached foreign slots.
    pub borrowed_leases: BTreeMap<u64, BorrowedLease>,
    /// Foreign-slot ids ever minted (behavioral: recovery must mint the
    /// same ids going forward).
    pub foreign_minted: usize,
    /// Brownout: expansion grants currently paused.
    pub expand_paused: bool,
    /// Partition-fencing epoch (monotonic; see
    /// [`SchedulerCore::bump_epoch`]).
    pub epoch: u64,
}

/// The combined scheduler state machine.
pub struct SchedulerCore {
    pool: ResourcePool,
    policy: QueuePolicy,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobRecord>,
    profiler: Profiler,
    next_id: u64,
    events: Vec<SchedEvent>,
    /// Retention cap for `events`; oldest entries are dropped beyond it so
    /// a long-lived scheduler cannot grow without bound.
    events_cap: usize,
    events_dropped: u64,
    remap_policy: RemapPolicy,
    reservations: Vec<Reservation>,
    next_reservation: u64,
    /// Job → reservation it is entitled to draw on.
    bindings: HashMap<JobId, ReservationId>,
    /// Running jobs with a user cancellation pending (delivered at the next
    /// resize point).
    pending_cancel: std::collections::HashSet<JobId>,
    // Utilization integral: busy processor-seconds and its last update time.
    busy_proc_seconds: f64,
    last_tick: f64,
    /// Testing backdoor: when set, `on_failed` "forgets" to release the
    /// failed job's processors — a planted pool leak the invariant oracle
    /// must catch. Never enabled outside tests.
    chaos_leak_on_failure: bool,
    /// Write-ahead log: when attached, every public transition is appended
    /// (and, for file-backed WALs, flushed) before it is applied. See
    /// [`crate::wal`].
    wal: Option<Wal>,
    /// Open causal-trace spans per live job: `(job root, queue-wait)`.
    /// Runtime-only bookkeeping — not part of [`CoreSnapshot`] equality
    /// (traces are an observability layer, not scheduler state).
    trace_ids: HashMap<JobId, (u64, u64)>,
    /// Lender-side lease ledger: lease id → native slots lent under it.
    lent_leases: BTreeMap<u64, Vec<usize>>,
    /// Borrower-side lease ledger: lease id → attached foreign slots.
    borrowed_leases: BTreeMap<u64, BorrowedLease>,
    /// Brownout: while set, `resize_point` downgrades every Expand decision
    /// to NoChange (shrinks and completions proceed).
    expand_paused: bool,
    /// Partition-fencing epoch: a monotonic counter the federation bumps
    /// when this shard, as a lender, loses contact with a borrower past the
    /// suspicion timeout. Leases minted under an older epoch are fenced —
    /// never honored or extended. Persisted via [`WalRecord::EpochBump`];
    /// replay restores it exactly.
    epoch: u64,
}

impl SchedulerCore {
    pub fn new(total_procs: usize, policy: QueuePolicy) -> Self {
        SchedulerCore {
            pool: ResourcePool::new(total_procs),
            policy,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            profiler: Profiler::new(),
            next_id: 1,
            events: Vec::new(),
            events_cap: DEFAULT_EVENT_CAP,
            events_dropped: 0,
            remap_policy: RemapPolicy::default(),
            reservations: Vec::new(),
            next_reservation: 1,
            bindings: HashMap::new(),
            pending_cancel: std::collections::HashSet::new(),
            busy_proc_seconds: 0.0,
            last_tick: 0.0,
            chaos_leak_on_failure: false,
            wal: None,
            trace_ids: HashMap::new(),
            lent_leases: BTreeMap::new(),
            borrowed_leases: BTreeMap::new(),
            expand_paused: false,
            epoch: 0,
        }
    }

    /// Plant a processor leak in the failure path: subsequent `on_failed`
    /// calls keep the job's slots allocated instead of releasing them.
    /// Exists so the testkit can prove its invariant oracle detects leaks;
    /// do not use outside tests.
    #[doc(hidden)]
    pub fn chaos_skip_release_on_failure(&mut self, on: bool) {
        self.chaos_leak_on_failure = on;
    }

    /// Select the Remap Scheduler policy variant (default: the paper's).
    pub fn with_remap_policy(mut self, policy: RemapPolicy) -> Self {
        self.remap_policy = policy;
        self
    }

    /// Cap the scheduling trace at `cap` events (default
    /// [`DEFAULT_EVENT_CAP`]); the oldest events are dropped beyond it and
    /// counted in [`SchedulerCore::events_dropped`]. Consumers that need
    /// the full trace should call [`SchedulerCore::drain_events`]
    /// periodically instead of raising the cap.
    pub fn with_event_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "event cap must be at least 1");
        self.events_cap = cap;
        self
    }

    /// Append to the scheduling trace, enforcing the retention cap. Drops
    /// the oldest half in one pass so the amortized cost stays O(1).
    fn push_event(&mut self, ev: SchedEvent) {
        if self.events.len() >= self.events_cap {
            let drop = (self.events_cap / 2).max(1);
            self.events.drain(..drop);
            self.events_dropped += drop as u64;
            reshape_telemetry::incr("core.sched_events_dropped", drop as u64);
        }
        self.events.push(ev);
        reshape_telemetry::incr("core.sched_events", 1);
        reshape_telemetry::gauge_set("core.queue_depth", self.queue.len() as f64);
    }

    /// Replace the processor pool with a heterogeneous one (per-slot speed
    /// factors; allocation prefers fast slots). Must be called before any
    /// job is submitted.
    pub fn with_slot_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert!(self.jobs.is_empty(), "set slot speeds before submitting jobs");
        self.pool = ResourcePool::new_heterogeneous(speeds);
        self
    }

    /// Replace the pool's allocation order (placement ablations).
    pub fn with_alloc_order(mut self, order: crate::pool::AllocOrder) -> Self {
        assert!(self.jobs.is_empty(), "set allocation order before submitting jobs");
        self.pool = self.pool.with_order(order);
        self
    }

    /// Speed factor of a processor slot (1.0 on homogeneous clusters).
    pub fn slot_speed(&self, slot: usize) -> f64 {
        self.pool.speed(slot)
    }

    // ------------------------------------------------------------------
    // Durability: write-ahead log and crash recovery
    // ------------------------------------------------------------------

    /// Attach a fresh write-ahead log. Must be called before any job is
    /// submitted; writes the genesis [`WalRecord::Open`] capturing the
    /// core's configuration so [`SchedulerCore::recover`] can rebuild it.
    pub fn with_wal(mut self, mut wal: Wal) -> Self {
        assert!(self.jobs.is_empty(), "attach the WAL before submitting jobs");
        assert!(
            wal.is_empty(),
            "WAL already holds records; recover from it instead of re-attaching"
        );
        let speeds = self.pool.speeds();
        let slot_speeds = if speeds.iter().all(|&s| s == 1.0) {
            None
        } else {
            Some(speeds.to_vec())
        };
        wal.append(WalRecord::Open {
            total_procs: self.pool.total(),
            policy: self.policy,
            remap_policy: self.remap_policy,
            events_cap: self.events_cap,
            alloc_order: self.pool.order(),
            slot_speeds,
        });
        self.wal = Some(wal);
        self
    }

    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Detach and return the WAL (e.g. to hand the stream to a crash
    /// drill). Subsequent transitions are no longer logged.
    pub fn take_wal(&mut self) -> Option<Wal> {
        self.wal.take()
    }

    /// Rebuild a scheduler from its write-ahead log by replaying every
    /// logged transition against a fresh core built from the genesis
    /// record. Because the state machine is deterministic, the recovered
    /// core is *exactly* equal to the one that wrote the log — pool
    /// accounting, queue order, job records, profiler history, the event
    /// trace and the utilization integral all match
    /// ([`SchedulerCore::snapshot`] equality). The WAL stays attached, so
    /// post-recovery transitions continue appending to the same stream.
    pub fn recover(wal: Wal) -> Result<SchedulerCore, WalError> {
        let mut records = wal.records().iter();
        let Some(WalRecord::Open {
            total_procs,
            policy,
            remap_policy,
            events_cap,
            alloc_order,
            slot_speeds,
        }) = records.next().cloned()
        else {
            return Err(WalError::BadGenesis(
                "first WAL record must be `open`".into(),
            ));
        };
        let mut core = match slot_speeds {
            Some(speeds) => {
                if speeds.len() != total_procs {
                    return Err(WalError::BadGenesis(format!(
                        "slot_speeds length {} != total_procs {total_procs}",
                        speeds.len()
                    )));
                }
                SchedulerCore::new(total_procs, policy).with_slot_speeds(speeds)
            }
            None => SchedulerCore::new(total_procs, policy),
        };
        core = core
            .with_remap_policy(remap_policy)
            .with_event_cap(events_cap)
            .with_alloc_order(alloc_order);
        for rec in records {
            if matches!(rec, WalRecord::Open { .. }) {
                return Err(WalError::BadGenesis(
                    "duplicate `open` record mid-stream".into(),
                ));
            }
            core.apply(rec.clone());
        }
        reshape_telemetry::incr("core.wal_recoveries", 1);
        if reshape_telemetry::trace::enabled() {
            reshape_telemetry::trace::complete(
                0,
                0,
                format!("wal_recovery ({} records)", wal.records().len()),
                "recovery",
                "scheduler",
                0.0,
                core.last_tick,
            );
        }
        core.wal = Some(wal);
        Ok(core)
    }

    /// Replay one logged transition. Only called with `self.wal == None`,
    /// so nothing is re-logged.
    fn apply(&mut self, rec: WalRecord) {
        match rec {
            WalRecord::Open { .. } => unreachable!("genesis handled by recover"),
            WalRecord::Submit { spec, now } => {
                self.submit_inner(spec, None, now);
            }
            WalRecord::SubmitReserved {
                spec,
                reservation,
                now,
            } => {
                self.submit_inner(spec, Some(reservation), now);
            }
            WalRecord::TrySchedule { now } => {
                self.schedule_now(now);
            }
            WalRecord::ResizePoint {
                job,
                iter_time,
                redist_time,
                now,
            } => {
                self.resize_point(job, iter_time, redist_time, now);
            }
            WalRecord::PhaseChange { job, now } => self.phase_change(job, now),
            WalRecord::NoteRedist {
                job,
                from,
                to,
                seconds,
            } => self.note_redist_cost(job, from, to, seconds),
            WalRecord::Finished { job, now } => {
                self.on_finished(job, now);
            }
            WalRecord::Failed { job, reason, now } => {
                self.on_failed(job, reason, now);
            }
            WalRecord::NodeFailed {
                job,
                dead_slots,
                to,
                now,
            } => {
                self.on_node_failed(job, &dead_slots, to, now);
            }
            WalRecord::ExpandFailed { job, now } => {
                self.on_expand_failed(job, now);
            }
            WalRecord::Cancel { job, now } => {
                self.cancel(job, now);
            }
            WalRecord::Reserve { start, end, procs } => {
                self.reserve(start, end, procs);
            }
            WalRecord::CancelReservation { id } => self.cancel_reservation(id),
            WalRecord::Tick { now } => self.tick(now),
            WalRecord::LendGrant { lease, slots, now } => {
                let got = self.lend_grant(lease, slots.len(), now);
                // The pool pick is deterministic, so replay must re-derive
                // the logged slots exactly; anything else means the WAL and
                // the state machine disagree and recovery cannot be trusted.
                assert_eq!(
                    got.as_deref(),
                    Some(slots.as_slice()),
                    "WAL replay diverged on lend_grant(lease {lease})"
                );
            }
            WalRecord::LendReclaim { lease, now } => {
                self.lend_reclaim(lease, now);
            }
            WalRecord::BorrowAttach {
                lease,
                global_slots,
                lender_epoch,
                now,
            } => {
                self.borrow_attach(lease, &global_slots, lender_epoch, now);
            }
            WalRecord::BorrowEvict { lease, now } => {
                self.borrow_evict(lease, now);
            }
            WalRecord::PauseExpansion { on, now } => self.set_expand_paused(on, now),
            WalRecord::EpochBump { epoch, now } => {
                let got = self.bump_epoch(now);
                // Epochs are logged as absolute values so replay can prove
                // the restored counter matches the live one exactly.
                assert_eq!(
                    got, epoch,
                    "WAL replay diverged on epoch bump (got {got}, logged {epoch})"
                );
            }
            WalRecord::HealRepair { lease, action, now } => {
                self.journal_heal_repair(lease, action, now);
            }
        }
    }

    /// Append to the WAL if one is attached (no-op otherwise — replay runs
    /// with the WAL detached precisely so it does not re-log itself).
    fn log(&mut self, rec: WalRecord) {
        if let Some(w) = self.wal.as_mut() {
            w.append(rec);
            // Durability work belongs to the scheduler's own trace (trace
            // 0): a zero-duration marker at the last observed virtual time
            // keeps WAL pressure visible in Perfetto without perturbing
            // replay determinism (spans are runtime-only state).
            if reshape_telemetry::trace::enabled() {
                reshape_telemetry::trace::complete(
                    0,
                    0,
                    "wal_append",
                    "wal",
                    "scheduler",
                    self.last_tick,
                    self.last_tick,
                );
            }
        }
    }

    /// Timestamps logged to the WAL must survive a JSON round trip;
    /// serde_json cannot represent non-finite floats (the threaded
    /// runtime's monitor stamps failures with NaN when no virtual clock is
    /// available). `tick` clamps non-finite times to `last_tick`, so doing
    /// the same before logging keeps the live run and its replay on the
    /// identical input sequence.
    fn sane_now(&self, now: f64) -> f64 {
        if now.is_finite() {
            now
        } else {
            self.last_tick
        }
    }

    /// A deep, order-normalized copy of every piece of scheduler state, for
    /// recovery-equality checks. Two cores with equal snapshots are
    /// behaviorally identical.
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            total_procs: self.pool.total(),
            free_slots: self.pool.free_slots(),
            queue: self.queue.iter().copied().collect(),
            jobs: self.jobs.iter().map(|(k, v)| (*k, v.clone())).collect(),
            profiles: self
                .profiler
                .profiles()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            next_id: self.next_id,
            reservations: self.reservations.clone(),
            next_reservation: self.next_reservation,
            bindings: self.bindings.iter().map(|(k, v)| (*k, *v)).collect(),
            pending_cancel: self.pending_cancel.iter().copied().collect(),
            busy_proc_seconds: self.busy_proc_seconds,
            last_tick: self.last_tick,
            events: self.events.clone(),
            events_dropped: self.events_dropped,
            lent_leases: self.lent_leases.clone(),
            borrowed_leases: self.borrowed_leases.clone(),
            foreign_minted: self.pool.foreign_minted(),
            expand_paused: self.expand_paused,
            epoch: self.epoch,
        }
    }

    /// The slowest slot speed among a job's current allocation — the pace a
    /// synchronous SPMD application actually runs at. 1.0 for jobs without
    /// an allocation.
    pub fn job_speed(&self, job: JobId) -> f64 {
        self.jobs
            .get(&job)
            .map(|r| {
                r.slots
                    .iter()
                    .map(|&s| self.pool.speed(s))
                    .fold(f64::INFINITY, f64::min)
            })
            .filter(|s| s.is_finite())
            .unwrap_or(1.0)
    }

    // ------------------------------------------------------------------
    // Advance reservations (paper §5 future work)
    // ------------------------------------------------------------------

    /// Withhold `procs` processors during `[start, end)`.
    pub fn reserve(&mut self, start: f64, end: f64, procs: usize) -> ReservationId {
        assert!(end > start, "empty reservation window");
        assert!(
            procs <= self.pool.total(),
            "cannot reserve more processors than the cluster has"
        );
        self.log(WalRecord::Reserve { start, end, procs });
        let id = ReservationId(self.next_reservation);
        self.next_reservation += 1;
        self.reservations.push(Reservation {
            id,
            start,
            end,
            procs,
        });
        id
    }

    /// Cancel a reservation (no effect on jobs already started against it).
    pub fn cancel_reservation(&mut self, id: ReservationId) {
        self.log(WalRecord::CancelReservation { id });
        self.reservations.retain(|r| r.id != id);
    }

    pub fn reservations(&self) -> &[Reservation] {
        &self.reservations
    }

    /// Processors withheld by reservations active at `now`, excluding any
    /// reservation the given job may draw on.
    fn reserved_at(&self, now: f64, drawing: Option<JobId>) -> usize {
        let entitled = drawing.and_then(|j| self.bindings.get(&j));
        self.reservations
            .iter()
            .filter(|r| r.active(now) && Some(&r.id) != entitled)
            .map(|r| r.procs)
            .sum()
    }

    /// Idle processors actually grantable at `now` for `job` (reservation
    /// withholding applied).
    fn available_for(&self, now: f64, job: Option<JobId>) -> usize {
        self.pool.idle().saturating_sub(self.reserved_at(now, job))
    }

    /// How many processors active reservations are still owed beyond what
    /// is idle — running jobs must shrink to cover this.
    fn reservation_deficit(&self, now: f64) -> usize {
        self.reserved_at(now, None).saturating_sub(self.pool.idle())
    }

    fn tick(&mut self, now: f64) {
        // Real-mode timestamps mix wall counters and per-rank virtual
        // clocks, so clamp instead of asserting monotonicity; the
        // discrete-event simulator always feeds monotone times.
        let now = if now.is_finite() {
            now.max(self.last_tick)
        } else {
            self.last_tick
        };
        self.busy_proc_seconds += self.pool.busy() as f64 * (now - self.last_tick);
        self.last_tick = now;
    }

    /// Submit a job; returns its id and any jobs that can start immediately
    /// (possibly including this one). Queue position honors priority:
    /// higher-priority jobs are inserted ahead of lower-priority ones
    /// (stable among equals).
    pub fn submit(&mut self, spec: JobSpec, now: f64) -> (JobId, Vec<StartAction>) {
        let now = self.sane_now(now);
        if self.wal.is_some() {
            self.log(WalRecord::Submit {
                spec: spec.clone(),
                now,
            });
        }
        self.submit_inner(spec, None, now)
    }

    /// Submit a job entitled to draw on an advance reservation's withheld
    /// processors during its window.
    pub fn submit_reserved(
        &mut self,
        spec: JobSpec,
        reservation: ReservationId,
        now: f64,
    ) -> (JobId, Vec<StartAction>) {
        assert!(
            self.reservations.iter().any(|r| r.id == reservation),
            "unknown reservation {reservation:?}"
        );
        let now = self.sane_now(now);
        if self.wal.is_some() {
            self.log(WalRecord::SubmitReserved {
                spec: spec.clone(),
                reservation,
                now,
            });
        }
        self.submit_inner(spec, Some(reservation), now)
    }

    fn submit_inner(
        &mut self,
        spec: JobSpec,
        reservation: Option<ReservationId>,
        now: f64,
    ) -> (JobId, Vec<StartAction>) {
        self.tick(now);
        let id = JobId(self.next_id);
        self.next_id += 1;
        let priority = spec.priority;
        self.jobs.insert(
            id,
            JobRecord {
                spec,
                state: JobState::Queued,
                slots: Vec::new(),
                submitted_at: now,
                started_at: None,
                finished_at: None,
            },
        );
        if let Some(r) = reservation {
            self.bindings.insert(id, r);
        }
        let pos = self
            .queue
            .iter()
            .position(|j| self.jobs[j].spec.priority < priority)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, id);
        self.push_event(SchedEvent {
            time: now,
            job: id,
            kind: EventKind::Submitted,
        });
        if reshape_telemetry::trace::enabled() {
            use reshape_telemetry::trace;
            // The job id doubles as the trace id: deterministic, stable
            // across WAL replay, and readable in the Perfetto UI. The root
            // span covers submission → completion; queue-wait is its first
            // child and closes when the job starts.
            let root = trace::begin(
                id.0,
                0,
                self.jobs[&id].spec.name.clone(),
                "job",
                "scheduler",
                now,
            );
            let qw = trace::begin(id.0, root, "queue_wait", "queue_wait", "scheduler", now);
            trace::set_head(id.0, root);
            self.trace_ids.insert(id, (root, qw));
        }
        (id, self.schedule_now(now))
    }

    /// Run the queue policy against the free pool.
    pub fn try_schedule(&mut self, now: f64) -> Vec<StartAction> {
        let now = self.sane_now(now);
        self.log(WalRecord::TrySchedule { now });
        self.schedule_now(now)
    }

    /// [`SchedulerCore::try_schedule`] without WAL logging — every
    /// transition that frees capacity ends by calling this, and those inner
    /// scheduling passes replay implicitly with the enclosing record.
    fn schedule_now(&mut self, now: f64) -> Vec<StartAction> {
        self.tick(now);
        let mut actions = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            let id = self.queue[i];
            let need = self.jobs[&id].spec.initial.procs();
            if need <= self.available_for(now, Some(id)) {
                let slots = self.pool.allocate(need).expect("checked idle count");
                let rec = self.jobs.get_mut(&id).expect("queued job exists");
                let config = rec.spec.initial;
                rec.state = JobState::Running { config };
                rec.slots = slots.clone();
                rec.started_at = Some(now);
                self.queue.remove(i);
                self.push_event(SchedEvent {
                    time: now,
                    job: id,
                    kind: EventKind::Started { config },
                });
                if let Some(&(_, qw)) = self.trace_ids.get(&id) {
                    reshape_telemetry::trace::end(qw, now);
                }
                actions.push(StartAction { job: id, config, slots });
                // Restart from the head: starting a job may unblock nothing,
                // but keeping strict order costs little.
                i = 0;
            } else {
                match self.policy {
                    QueuePolicy::Fcfs => break,
                    QueuePolicy::Backfill => i += 1,
                }
            }
        }
        actions
    }

    /// A resizable application checked in at a resize point with its last
    /// iteration time and the redistribution cost it paid most recently.
    /// Returns the directive for the job plus any queued jobs started with
    /// processors freed by a shrink.
    pub fn resize_point(
        &mut self,
        job: JobId,
        iter_time: f64,
        redist_time: f64,
        now: f64,
    ) -> (Directive, Vec<StartAction>) {
        let now = self.sane_now(now);
        self.log(WalRecord::ResizePoint {
            job,
            iter_time,
            redist_time,
            now,
        });
        self.tick(now);
        if self.pending_cancel.remove(&job) {
            return (Directive::Terminate, Vec::new());
        }
        let rec = match self.jobs.get(&job) {
            Some(r) => r,
            None => return (Directive::NoChange, Vec::new()),
        };
        let current = match rec.state {
            JobState::Running { config } => config,
            // Zombie fencing: a process group whose job already left the
            // system (failed by the watchdog or monitor, finished, or
            // cancelled) holds no slots, so any late resize point tells it
            // to exit rather than letting it iterate forever unaccounted.
            _ => return (Directive::Terminate, Vec::new()),
        };
        self.profiler
            .record_iteration(job, current, iter_time, redist_time);

        let spec = rec.spec.clone();
        // Reserved-but-not-yet-covered processors behave like queued demand:
        // they block expansion and drive the shrink rule, so running jobs
        // vacate reserved capacity at their resize points.
        let deficit = self.reservation_deficit(now);
        let head_need = self
            .queue
            .front()
            .map(|j| self.jobs[j].spec.initial.procs());
        let queue_head_need = match (head_need, deficit) {
            (None, 0) => None,
            (None, d) => Some(d),
            (Some(h), d) => Some(h + d),
        };
        let remaining_iters = {
            let done = self
                .profiler
                .profile(job)
                .map(|p| p.history().len())
                .unwrap_or(0);
            self.jobs[&job].spec.iterations.saturating_sub(done)
        };
        let snapshot = SystemSnapshot {
            idle_procs: self.available_for(now, Some(job)),
            queue_head_need,
            remaining_iters,
        };
        // Expansion headroom is what the pool *currently* owns — borrowed
        // slots expand a borrower's ceiling, lent slots lower a lender's.
        let max_procs = self.pool.owned();
        let decision = decide_with(
            self.remap_policy,
            &spec,
            current,
            self.profiler.profile(job).expect("just recorded"),
            &snapshot,
            max_procs,
        );
        // Brownout: expansion grants pause, shrinks and completions proceed.
        // Downgrade before recording so the audit trail shows what was
        // actually granted. The profiler is untouched — the policy's history
        // stays clean for when the brownout lifts.
        let decision = match decision {
            RemapDecision::Expand { .. } if self.expand_paused => {
                reshape_telemetry::incr("core.expansions_browned_out", 1);
                RemapDecision::NoChange
            }
            d => d,
        };
        if reshape_telemetry::enabled() {
            let (decision_str, to_str) = match &decision {
                RemapDecision::Expand { to } => ("expand", Some(to.to_string())),
                RemapDecision::Shrink { to } => ("shrink", Some(to.to_string())),
                RemapDecision::NoChange => ("no_change", None),
            };
            reshape_telemetry::record(reshape_telemetry::Event::ResizeDecision {
                time: now,
                job: job.0,
                from: current.to_string(),
                decision: decision_str.to_string(),
                to: to_str,
                idle_procs: snapshot.idle_procs,
                queue_len: self.queue.len(),
                queue_head_need: snapshot.queue_head_need,
                last_expansion_improved: self
                    .profiler
                    .profile(job)
                    .and_then(|p| p.last_expansion_improved()),
                iter_time,
                redist_time,
                remaining_iters,
            });
        }
        if reshape_telemetry::trace::enabled() {
            use reshape_telemetry::trace;
            let label = match &decision {
                RemapDecision::Expand { to } => format!("decision:expand {current}->{to}"),
                RemapDecision::Shrink { to } => format!("decision:shrink {current}->{to}"),
                RemapDecision::NoChange => "decision:no_change".to_string(),
            };
            // Parent on the causal context the resize-point message carried
            // (the rank's last compute span) when it names this trace, else
            // on the trace head. The decision becomes the new head, so the
            // driver's spawn/redistribution spans chain under it.
            let ctx = trace::current();
            let parent = if ctx.trace == job.0 && ctx.parent != 0 {
                ctx.parent
            } else {
                trace::head(job.0)
            };
            let d = trace::complete(job.0, parent, label, "decision", "scheduler", now, now);
            trace::set_head(job.0, d);
        }
        match decision {
            RemapDecision::Expand { to } => {
                let delta = to.procs() - current.procs();
                let new_slots = self
                    .pool
                    .allocate(delta)
                    .expect("policy verified idle processors");
                let rec = self.jobs.get_mut(&job).expect("running job exists");
                rec.slots.extend_from_slice(&new_slots);
                rec.state = JobState::Running { config: to };
                self.profiler
                    .record_resize(job, Resize::Expanded { from: current, to }, 0.0);
                self.push_event(SchedEvent {
                    time: now,
                    job,
                    kind: EventKind::Expanded { from: current, to },
                });
                (Directive::Expand { to, new_slots }, Vec::new())
            }
            RemapDecision::Shrink { to } => {
                let keep = to.procs();
                let rec = self.jobs.get_mut(&job).expect("running job exists");
                let released: Vec<usize> = rec.slots.split_off(keep);
                rec.state = JobState::Running { config: to };
                self.pool.release(&released);
                self.profiler
                    .record_resize(job, Resize::Shrunk { from: current, to }, 0.0);
                self.push_event(SchedEvent {
                    time: now,
                    job,
                    kind: EventKind::Shrunk { from: current, to },
                });
                let started = self.schedule_now(now);
                (Directive::Shrink { to }, started)
            }
            RemapDecision::NoChange => (Directive::NoChange, Vec::new()),
        }
    }

    /// An application entered a new computational phase (the paper's intro:
    /// "applications that consist of multiple phases ... could benefit from
    /// resizing to the most appropriate node count for each phase").
    ///
    /// Past iteration times no longer predict the new phase, so the
    /// Performance Profiler forgets the job's timing history — the job
    /// re-probes for the new phase's sweet spot from its current
    /// configuration. Redistribution-cost records are kept (they are a
    /// property of the data layout, not the phase).
    pub fn phase_change(&mut self, job: JobId, now: f64) {
        let now = self.sane_now(now);
        self.log(WalRecord::PhaseChange { job, now });
        self.tick(now);
        if matches!(
            self.jobs.get(&job).map(|r| &r.state),
            Some(JobState::Running { .. })
        ) {
            self.profiler.reset_timing(job);
        }
    }

    /// Record the measured cost of an actuated redistribution (the paper
    /// "saves a record of actual redistribution costs between various
    /// processor configurations").
    pub fn note_redist_cost(
        &mut self,
        job: JobId,
        from: ProcessorConfig,
        to: ProcessorConfig,
        seconds: f64,
    ) {
        self.log(WalRecord::NoteRedist {
            job,
            from,
            to,
            seconds,
        });
        let kind = if to.procs() >= from.procs() {
            Resize::Expanded { from, to }
        } else {
            Resize::Shrunk { from, to }
        };
        self.profiler.record_resize(job, kind, seconds);
    }

    /// Close a job's trace (root + queue-wait spans) at its terminal
    /// transition. Idempotent: the ids are removed on first use.
    fn trace_close(&mut self, job: JobId, now: f64) {
        if let Some((root, qw)) = self.trace_ids.remove(&job) {
            reshape_telemetry::trace::end(qw, now);
            reshape_telemetry::trace::end(root, now);
        }
    }

    /// A job finished; reclaim its processors and start queued work.
    pub fn on_finished(&mut self, job: JobId, now: f64) -> Vec<StartAction> {
        let now = self.sane_now(now);
        self.log(WalRecord::Finished { job, now });
        self.tick(now);
        if let Some(rec) = self.jobs.get_mut(&job) {
            if !rec.state.is_active() {
                return Vec::new();
            }
            let slots = std::mem::take(&mut rec.slots);
            rec.state = JobState::Finished { at: now };
            rec.finished_at = Some(now);
            self.pool.release(&slots);
            self.queue.retain(|&j| j != job);
            self.push_event(SchedEvent {
                time: now,
                job,
                kind: EventKind::Finished,
            });
            self.trace_close(job, now);
        }
        self.schedule_now(now)
    }

    /// A job failed (System Monitor "job error" path); reclaim resources.
    ///
    /// Idempotent: a second failure report for the same job — a watchdog
    /// kill racing the crash report, or a monitor retry — is a strict
    /// no-op. In particular it must not append a second WAL `Failed` record
    /// (the guard runs *before* logging) nor re-release slots.
    pub fn on_failed(&mut self, job: JobId, reason: String, now: f64) -> Vec<StartAction> {
        let now = self.sane_now(now);
        if !self.jobs.get(&job).is_some_and(|r| r.state.is_active()) {
            return Vec::new();
        }
        if self.wal.is_some() {
            self.log(WalRecord::Failed {
                job,
                reason: reason.clone(),
                now,
            });
        }
        self.tick(now);
        if let Some(rec) = self.jobs.get_mut(&job) {
            let slots = std::mem::take(&mut rec.slots);
            rec.state = JobState::Failed {
                at: now,
                reason: reason.clone(),
            };
            rec.finished_at = Some(now);
            if !self.chaos_leak_on_failure {
                self.pool.release(&slots);
            }
            self.queue.retain(|&j| j != job);
            self.push_event(SchedEvent {
                time: now,
                job,
                kind: EventKind::Failed { reason },
            });
            reshape_telemetry::incr("core.job_failures", 1);
            reshape_telemetry::record(reshape_telemetry::Event::Recovery {
                time: now,
                job: job.0,
                action: "reclaim_failed_job".to_string(),
                freed: slots.len(),
            });
            self.trace_close(job, now);
        }
        self.schedule_now(now)
    }

    /// A node hosting part of a running job died, but the application
    /// survived by shrinking onto its remaining ranks (buddy-redundancy
    /// recovery in the driver). The forced-shrink counterpart of
    /// [`SchedulerCore::on_failed`]: only `dead_slots` are reclaimed, the
    /// job stays `Running` at the surviving configuration `to`, and the
    /// degraded size is recorded in the profiler as a shrink so the §3.1
    /// policy sees the current (smaller) configuration and can re-expand
    /// the job when replacement processors free up.
    ///
    /// No-op (and nothing is logged) unless the job is running, every slot
    /// in `dead_slots` is actually held by it, and `to` matches the
    /// surviving slot count — a stale or duplicate report cannot corrupt
    /// the pool.
    pub fn on_node_failed(
        &mut self,
        job: JobId,
        dead_slots: &[usize],
        to: ProcessorConfig,
        now: f64,
    ) -> Vec<StartAction> {
        let now = self.sane_now(now);
        let valid = self.jobs.get(&job).is_some_and(|rec| {
            matches!(rec.state, JobState::Running { .. })
                && !dead_slots.is_empty()
                && dead_slots.iter().all(|s| rec.slots.contains(s))
                && rec.slots.len() - dead_slots.len() == to.procs()
        });
        if !valid {
            return Vec::new();
        }
        self.log(WalRecord::NodeFailed {
            job,
            dead_slots: dead_slots.to_vec(),
            to,
            now,
        });
        self.tick(now);
        let rec = self.jobs.get_mut(&job).expect("validated above");
        let JobState::Running { config: from } = rec.state else {
            unreachable!("validated above");
        };
        rec.slots.retain(|s| !dead_slots.contains(s));
        rec.state = JobState::Running { config: to };
        self.pool.release(dead_slots);
        self.profiler
            .record_resize(job, Resize::Shrunk { from, to }, 0.0);
        self.push_event(SchedEvent {
            time: now,
            job,
            kind: EventKind::NodeFailed {
                from,
                to,
                lost: dead_slots.len(),
            },
        });
        if reshape_telemetry::trace::enabled() {
            use reshape_telemetry::trace;
            let m = trace::complete(
                job.0,
                trace::head(job.0),
                format!("node_failed {from}->{to} (-{})", dead_slots.len()),
                "recovery",
                "scheduler",
                now,
                now,
            );
            trace::set_head(job.0, m);
        }
        reshape_telemetry::incr("core.node_failures_survived", 1);
        reshape_telemetry::record(reshape_telemetry::Event::NodeFailed {
            time: now,
            job: job.0,
            lost: dead_slots.len(),
            procs_before: from.procs(),
            procs_after: to.procs(),
        });
        self.schedule_now(now)
    }

    /// An expansion directive could not be actuated: the spawn was granted
    /// fewer processes than the Remap Scheduler allocated (or none). The job
    /// keeps running at its previous configuration `from`; this reclaims the
    /// granted-but-unused processors, records the attempt as "expansion did
    /// not help" so the policy stops re-probing it, and starts any queued
    /// work that now fits. Returns the jobs started with the freed capacity.
    pub fn on_expand_failed(&mut self, job: JobId, now: f64) -> Vec<StartAction> {
        let now = self.sane_now(now);
        self.log(WalRecord::ExpandFailed { job, now });
        self.tick(now);
        // The reverted-to configuration is the `from` of the job's last
        // recorded resize, which expand actuation always records.
        let last_expand = self
            .profiler
            .profile(job)
            .and_then(|p| p.last_resize());
        let Some(Resize::Expanded { from, to }) = last_expand else {
            return Vec::new();
        };
        let Some(rec) = self.jobs.get_mut(&job) else {
            return Vec::new();
        };
        if !matches!(rec.state, JobState::Running { config } if config == to) {
            return Vec::new();
        }
        let released: Vec<usize> = rec.slots.split_off(from.procs());
        rec.state = JobState::Running { config: from };
        self.pool.release(&released);
        self.profiler.mark_expansion_failed(job, from, to);
        self.push_event(SchedEvent {
            time: now,
            job,
            kind: EventKind::ExpandFailed { from, to },
        });
        if reshape_telemetry::trace::enabled() {
            use reshape_telemetry::trace;
            let m = trace::complete(
                job.0,
                trace::head(job.0),
                format!("expand_failed {to}->{from}"),
                "spawn",
                "scheduler",
                now,
                now,
            );
            trace::set_head(job.0, m);
        }
        reshape_telemetry::incr("core.expand_failures", 1);
        reshape_telemetry::record(reshape_telemetry::Event::Recovery {
            time: now,
            job: job.0,
            action: "revert_failed_expansion".to_string(),
            freed: released.len(),
        });
        self.schedule_now(now)
    }

    /// Cancel a job. Queued jobs leave the queue immediately; running jobs
    /// are terminated cooperatively — the `Terminate` directive is delivered
    /// at their next resize point, matching how every other ReSHAPE
    /// intervention happens. Returns any jobs started with freed capacity.
    pub fn cancel(&mut self, job: JobId, now: f64) -> Vec<StartAction> {
        let now = self.sane_now(now);
        self.log(WalRecord::Cancel { job, now });
        self.tick(now);
        let Some(rec) = self.jobs.get_mut(&job) else {
            return Vec::new();
        };
        match rec.state {
            JobState::Queued => {
                rec.state = JobState::Cancelled { at: now };
                rec.finished_at = Some(now);
                self.queue.retain(|&j| j != job);
                self.push_event(SchedEvent {
                    time: now,
                    job,
                    kind: EventKind::Cancelled,
                });
                self.trace_close(job, now);
                // Removing a queued job may unblock an FCFS head.
                self.schedule_now(now)
            }
            JobState::Running { .. } => {
                // Reclaim resources now; the application finds out at its
                // next resize point.
                let slots = std::mem::take(&mut rec.slots);
                rec.state = JobState::Cancelled { at: now };
                rec.finished_at = Some(now);
                self.pool.release(&slots);
                self.pending_cancel.insert(job);
                self.push_event(SchedEvent {
                    time: now,
                    job,
                    kind: EventKind::Cancelled,
                });
                self.trace_close(job, now);
                self.schedule_now(now)
            }
            _ => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Federation leases: processor lending between scheduler shards
    // ------------------------------------------------------------------

    /// Lender side: detach `n` idle processors under lease `lease`. The
    /// slots are picked exactly like an allocation (so the choice is
    /// deterministic and WAL-replayable) but marked lent — they count
    /// neither free nor busy here until [`SchedulerCore::lend_reclaim`].
    ///
    /// Returns `None` without side effects (and without logging) when the
    /// lease id is already live, `n` is zero, or fewer than `n` processors
    /// are idle after reservation withholding — a declined grant must leave
    /// no trace.
    pub fn lend_grant(&mut self, lease: u64, n: usize, now: f64) -> Option<Vec<usize>> {
        let now = self.sane_now(now);
        if n == 0 || self.lent_leases.contains_key(&lease) {
            return None;
        }
        if self.available_for(now, None) < n {
            return None;
        }
        self.tick(now);
        let slots = self.pool.lend(n)?;
        self.log(WalRecord::LendGrant {
            lease,
            slots: slots.clone(),
            now,
        });
        self.lent_leases.insert(lease, slots.clone());
        reshape_telemetry::incr("core.lease_grants", 1);
        reshape_telemetry::gauge_set(
            "core.procs_lent",
            self.lent_leases.values().map(Vec::len).sum::<usize>() as f64,
        );
        Some(slots)
    }

    /// Lender side: the lease ended — the borrower released it, or its
    /// reclaim timeout fired. The lent slots rejoin the pool and queued
    /// work is started with them. Idempotent: an unknown lease id (already
    /// reclaimed, or never granted) is a strict no-op and logs nothing.
    pub fn lend_reclaim(&mut self, lease: u64, now: f64) -> Vec<StartAction> {
        let now = self.sane_now(now);
        if !self.lent_leases.contains_key(&lease) {
            return Vec::new();
        }
        self.log(WalRecord::LendReclaim { lease, now });
        self.tick(now);
        let slots = self.lent_leases.remove(&lease).expect("checked above");
        self.pool.reattach(&slots);
        reshape_telemetry::incr("core.lease_reclaims", 1);
        reshape_telemetry::gauge_set(
            "core.procs_lent",
            self.lent_leases.values().map(Vec::len).sum::<usize>() as f64,
        );
        self.schedule_now(now)
    }

    /// Borrower side: attach foreign processors granted under `lease`.
    /// `global_slots` are federation-global processor ids (recorded in the
    /// WAL for ledger audits); `lender_epoch` is the lender's fencing epoch
    /// at grant time, journaled alongside them so the partition oracle can
    /// prove no attachment outlives a fence. The pool mints fresh local ids
    /// for the slots and queued work may start on the new capacity
    /// immediately. Idempotent: re-attaching a live lease (a duplicated
    /// grant frame) is a strict no-op.
    pub fn borrow_attach(
        &mut self,
        lease: u64,
        global_slots: &[usize],
        lender_epoch: u64,
        now: f64,
    ) -> Vec<StartAction> {
        let now = self.sane_now(now);
        if global_slots.is_empty() || self.borrowed_leases.contains_key(&lease) {
            return Vec::new();
        }
        self.log(WalRecord::BorrowAttach {
            lease,
            global_slots: global_slots.to_vec(),
            lender_epoch,
            now,
        });
        self.tick(now);
        let local = self.pool.attach_foreign(global_slots.len());
        self.borrowed_leases.insert(
            lease,
            BorrowedLease {
                local,
                global: global_slots.to_vec(),
                lender_epoch,
            },
        );
        reshape_telemetry::incr("core.lease_borrows", 1);
        reshape_telemetry::gauge_set(
            "core.procs_borrowed",
            self.borrowed_leases
                .values()
                .map(|b| b.local.len())
                .sum::<usize>() as f64,
        );
        self.schedule_now(now)
    }

    /// Borrower side: the lease expired (or is being returned early) —
    /// every one of its slots leaves this pool *now*, in one atomic
    /// transition. Jobs still holding borrowed slots are force-shrunk off
    /// them (the [`SchedulerCore::on_node_failed`] path: the degraded size
    /// is recorded as a shrink so the policy can re-expand later); a job
    /// left with zero processors fails. Idempotent: an unknown lease is a
    /// strict no-op.
    ///
    /// Doing the eviction and the detach in one transition is what makes
    /// the federation ledger sound: there is no window in which a freed
    /// borrowed slot could be re-granted to a queued job between "evict"
    /// and "detach".
    pub fn borrow_evict(&mut self, lease: u64, now: f64) -> EvictOutcome {
        let now = self.sane_now(now);
        let mut outcome = EvictOutcome::default();
        if !self.borrowed_leases.contains_key(&lease) {
            return outcome;
        }
        self.log(WalRecord::BorrowEvict { lease, now });
        self.tick(now);
        let bl = self.borrowed_leases.remove(&lease).expect("checked above");
        let dead: BTreeSet<usize> = bl.local.iter().copied().collect();
        let mut affected: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, r)| {
                matches!(r.state, JobState::Running { .. })
                    && r.slots.iter().any(|s| dead.contains(s))
            })
            .map(|(id, _)| *id)
            .collect();
        affected.sort();
        for job in affected {
            let (from, lost, remaining) = {
                let rec = self.jobs.get_mut(&job).expect("selected above");
                let JobState::Running { config: from } = rec.state else {
                    unreachable!("selected running jobs only");
                };
                let lost = rec.slots.iter().filter(|s| dead.contains(s)).count();
                rec.slots.retain(|s| !dead.contains(s));
                (from, lost, rec.slots.len())
            };
            if remaining == 0 {
                let reason = format!("lease {lease} expired: all processors evicted");
                let rec = self.jobs.get_mut(&job).expect("selected above");
                rec.state = JobState::Failed {
                    at: now,
                    reason: reason.clone(),
                };
                rec.finished_at = Some(now);
                self.push_event(SchedEvent {
                    time: now,
                    job,
                    kind: EventKind::Failed { reason },
                });
                self.trace_close(job, now);
                outcome.failed.push(job);
            } else {
                let to = ProcessorConfig::linear(remaining);
                self.jobs.get_mut(&job).expect("selected above").state =
                    JobState::Running { config: to };
                self.profiler
                    .record_resize(job, Resize::Shrunk { from, to }, 0.0);
                self.push_event(SchedEvent {
                    time: now,
                    job,
                    kind: EventKind::NodeFailed { from, to, lost },
                });
                outcome.shrunk.push((job, from, to));
            }
        }
        for &s in &bl.local {
            self.pool.detach_foreign_slot(s);
        }
        outcome.detached = bl.local.len();
        reshape_telemetry::incr("core.lease_evictions", 1);
        reshape_telemetry::gauge_set(
            "core.procs_borrowed",
            self.borrowed_leases
                .values()
                .map(|b| b.local.len())
                .sum::<usize>() as f64,
        );
        outcome
    }

    /// Brownout control: while paused, `resize_point` downgrades every
    /// Expand decision to NoChange (shrinks, completions and new
    /// admissions proceed — the cluster degrades, it does not stall).
    /// Idempotent: setting the current value logs nothing.
    pub fn set_expand_paused(&mut self, on: bool, now: f64) {
        let now = self.sane_now(now);
        if self.expand_paused == on {
            return;
        }
        self.log(WalRecord::PauseExpansion { on, now });
        self.tick(now);
        self.expand_paused = on;
        reshape_telemetry::gauge_set("core.expand_paused", if on { 1.0 } else { 0.0 });
    }

    /// Whether expansion grants are currently browned out.
    pub fn expand_paused(&self) -> bool {
        self.expand_paused
    }

    /// The shard's current partition-fencing epoch (0 until first bump).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the fencing epoch by one and return the new value. Called by
    /// the federation when this shard, lending, has lost contact with a
    /// borrower past the suspicion timeout: leases minted under the old
    /// epoch are fenced from here on. Journaled (with the absolute new
    /// value) before taking effect, so WAL replay restores the counter
    /// exactly.
    pub fn bump_epoch(&mut self, now: f64) -> u64 {
        let now = self.sane_now(now);
        let next = self.epoch + 1;
        self.log(WalRecord::EpochBump { epoch: next, now });
        self.tick(now);
        self.epoch = next;
        reshape_telemetry::incr("core.epoch_bumps", 1);
        reshape_telemetry::gauge_set("core.epoch", next as f64);
        next
    }

    /// Journal an anti-entropy heal decision about `lease`. The record is
    /// evidence only — the repairing transition itself
    /// ([`SchedulerCore::borrow_evict`] or [`SchedulerCore::lend_reclaim`])
    /// follows as its own journaled call, so no heal mutates state
    /// silently and replay stays exact.
    pub fn journal_heal_repair(&mut self, lease: u64, action: HealAction, now: f64) {
        let now = self.sane_now(now);
        self.log(WalRecord::HealRepair { lease, action, now });
        self.tick(now);
        reshape_telemetry::incr("core.heal_repairs", 1);
    }

    /// Lender-side lease ledger: lease id → native slots away under it.
    pub fn lent_leases(&self) -> &BTreeMap<u64, Vec<usize>> {
        &self.lent_leases
    }

    /// Borrower-side lease ledger: lease id → attached foreign slots.
    pub fn borrowed_leases(&self) -> &BTreeMap<u64, BorrowedLease> {
        &self.borrowed_leases
    }

    /// Native processors currently lent to other shards.
    pub fn lent_procs(&self) -> usize {
        self.lent_leases.values().map(Vec::len).sum()
    }

    /// Foreign processors currently borrowed from other shards.
    pub fn borrowed_procs(&self) -> usize {
        self.borrowed_leases.values().map(|b| b.local.len()).sum()
    }

    /// Capacity this core currently schedules over (native − lent +
    /// borrowed); equals [`SchedulerCore::total_procs`] without leases.
    pub fn owned_procs(&self) -> usize {
        self.pool.owned()
    }

    /// Whether `slot` is currently owned by this core's pool.
    pub fn slot_owned(&self, slot: usize) -> bool {
        self.pool.is_owned(slot)
    }

    /// Initial processor need of the queue head, if any — what a starved
    /// shard asks the federation to cover with a lease.
    pub fn queue_head_need(&self) -> Option<usize> {
        self.queue
            .front()
            .map(|j| self.jobs[j].spec.initial.procs())
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn job(&self, id: JobId) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    pub fn jobs(&self) -> impl Iterator<Item = (&JobId, &JobRecord)> {
        self.jobs.iter()
    }

    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Mutable profiler access, for seeding performance history (advanced
    /// integrations and tests).
    pub fn profiler_mut(&mut self) -> &mut Profiler {
        &mut self.profiler
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub fn idle_procs(&self) -> usize {
        self.pool.idle()
    }

    /// Latest virtual time the core has observed (updated by `tick` and
    /// every timestamped transition). Used to stamp trace marks emitted
    /// from wall-clock-only contexts (e.g. the watchdog).
    pub fn last_tick(&self) -> f64 {
        self.last_tick
    }

    pub fn busy_procs(&self) -> usize {
        self.pool.busy()
    }

    pub fn total_procs(&self) -> usize {
        self.pool.total()
    }

    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Remove and return the retained scheduling trace. Long-running
    /// consumers (the threaded runtime, the cluster simulator) should pull
    /// events through this instead of letting the trace hit its cap.
    pub fn drain_events(&mut self) -> Vec<SchedEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events evicted because the trace reached its retention cap. Audit
    /// consumers should check this before treating [`SchedulerCore::events`]
    /// as complete; every eviction also bumps the
    /// `core.sched_events_dropped` telemetry counter.
    pub fn dropped_events(&self) -> u64 {
        self.events_dropped
    }

    /// Drop the records, profiler history, and auxiliary per-job state of
    /// every terminal job (finished / failed / cancelled); returns how many
    /// records were pruned. Million-job simulations call this periodically
    /// (after draining the event trace) so scheduler memory is bounded by
    /// the *live* job count, not the full arrival history. Safe for
    /// accounting: the busy-time integral behind
    /// [`SchedulerCore::utilization`] is a running scalar, and terminal
    /// jobs hold no pool slots. Prunes are not WAL-logged — recovery
    /// replays the full history — so durable deployments should prune only
    /// if they can tolerate a recovered core retaining terminal records.
    pub fn prune_terminal(&mut self) -> usize {
        let dead: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, r)| r.state.is_terminal())
            .map(|(id, _)| *id)
            .collect();
        for id in &dead {
            self.jobs.remove(id);
            self.profiler.forget(*id);
            self.bindings.remove(id);
            self.pending_cancel.remove(id);
            self.trace_ids.remove(id);
        }
        dead.len()
    }

    /// Alias of [`SchedulerCore::dropped_events`] (original name).
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Mean utilization over `[0, now]`: the fraction of available
    /// cpu-seconds assigned to running jobs (the paper's footnote 1).
    ///
    /// Meaningful when the core is fed a consistent clock — i.e. in the
    /// discrete-event simulator. The threaded real-mode runtime mixes
    /// wall-clock submission stamps with per-rank virtual times, so treat
    /// real-mode utilization as indicative only.
    pub fn utilization(&mut self, now: f64) -> f64 {
        let now = self.sane_now(now);
        // A query, but it advances the busy-time integral — exact-state
        // recovery needs the same advance on replay.
        self.log(WalRecord::Tick { now });
        self.tick(now);
        if now <= 0.0 {
            return 0.0;
        }
        self.busy_proc_seconds / (self.pool.total() as f64 * now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyPref;

    fn lu(n: usize, rows: usize, cols: usize) -> JobSpec {
        JobSpec::new(
            format!("LU{n}"),
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(rows, cols),
            10,
        )
    }

    fn mw(min: usize) -> JobSpec {
        JobSpec::new(
            "MW",
            TopologyPref::AnyCount {
                min,
                max: 22,
                step: 2,
            },
            ProcessorConfig::linear(min),
            10,
        )
    }

    #[test]
    fn fcfs_starts_jobs_in_order() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let (a, s1) = core.submit(lu(8000, 2, 2), 0.0);
        assert_eq!(s1.len(), 1);
        assert_eq!(s1[0].job, a);
        assert_eq!(s1[0].slots, vec![0, 1, 2, 3]);
        // Second job needs 8, only 4 free: queued.
        let (_b, s2) = core.submit(lu(8000, 2, 4), 1.0);
        assert!(s2.is_empty());
        // Third job would fit, but FCFS blocks behind the head.
        let (_c, s3) = core.submit(lu(8000, 2, 2), 2.0);
        assert!(s3.is_empty());
        assert_eq!(core.queue_len(), 2);
    }

    #[test]
    fn backfill_skips_blocked_head() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Backfill);
        core.submit(lu(8000, 2, 2), 0.0);
        let (_big, s) = core.submit(lu(8000, 2, 4), 1.0);
        assert!(s.is_empty());
        let (small, s) = core.submit(lu(8000, 2, 2), 2.0);
        assert_eq!(s.len(), 1, "backfill starts the small job past the blocked head");
        assert_eq!(s[0].job, small);
    }

    #[test]
    fn finish_releases_and_starts_queued() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 2, 2), 0.0);
        let (b, s) = core.submit(lu(8000, 2, 4), 0.0);
        assert!(s.is_empty());
        let started = core.on_finished(a, 100.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, b);
        assert_eq!(started[0].slots.len(), 8);
        assert!(matches!(core.job(a).unwrap().state, JobState::Finished { .. }));
    }

    #[test]
    fn resize_point_expands_into_idle_cluster() {
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 1, 2), 0.0);
        let (d, started) = core.resize_point(a, 100.0, 0.0, 10.0);
        assert!(started.is_empty());
        match d {
            Directive::Expand { to, new_slots } => {
                assert_eq!(to, ProcessorConfig::new(2, 2));
                assert_eq!(new_slots.len(), 2);
            }
            other => panic!("expected expansion, got {other:?}"),
        }
        assert_eq!(core.busy_procs(), 4);
    }

    #[test]
    fn resize_point_shrinks_for_queued_job() {
        let mut core = SchedulerCore::new(6, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 1, 2), 0.0);
        // Grow to 2x2 (4 procs), then to... queue arrives.
        let (d, _) = core.resize_point(a, 100.0, 0.0, 10.0);
        assert!(matches!(d, Directive::Expand { .. }));
        let (_d2, _) = core.resize_point(a, 80.0, 2.0, 20.0);
        // Now a at 2x2 or bigger; submit a job needing 2 procs: the paper's
        // shrink-for-queue rule should free them at the next resize point.
        let cur = match core.job(a).unwrap().state {
            JobState::Running { config } => config,
            _ => unreachable!(),
        };
        let (b, s) = core.submit(lu(8000, 1, 2), 25.0);
        // May or may not start immediately depending on idle; if it started,
        // the shrink rule is moot — force the crowded case.
        if !s.is_empty() {
            // Cluster had room; finish early — nothing more to assert.
            return;
        }
        let (d3, started) = core.resize_point(a, 70.0, 2.0, 30.0);
        match d3 {
            Directive::Shrink { to } => {
                assert!(to.procs() < cur.procs());
                assert_eq!(started.len(), 1);
                assert_eq!(started[0].job, b);
            }
            other => panic!("expected shrink, got {other:?}"),
        }
    }

    #[test]
    fn static_job_gets_no_change() {
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 2, 2).static_job(), 0.0);
        let (d, _) = core.resize_point(a, 100.0, 0.0, 10.0);
        assert_eq!(d, Directive::NoChange);
    }

    #[test]
    fn failure_reclaims_resources() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 2, 2), 0.0);
        let (b, s) = core.submit(lu(8000, 2, 2), 0.0);
        assert!(s.is_empty());
        let started = core.on_failed(a, "segfault".into(), 5.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, b);
        assert!(matches!(
            core.job(a).unwrap().state,
            JobState::Failed { ref reason, .. } if reason == "segfault"
        ));
    }

    #[test]
    fn double_failure_report_is_a_strict_noop() {
        // A watchdog kill racing the crash report delivers `on_failed`
        // twice. The second report must not log a second WAL record, not
        // re-release slots, and not push a second Failed event.
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs).with_wal(Wal::in_memory());
        let (a, _) = core.submit(lu(8000, 2, 2), 0.0);
        let started = core.on_failed(a, "segfault".into(), 5.0);
        assert!(started.is_empty());
        assert_eq!(core.idle_procs(), 4);
        let failed_records = |c: &SchedulerCore| {
            c.wal()
                .unwrap()
                .records()
                .iter()
                .filter(|r| matches!(r, WalRecord::Failed { .. }))
                .count()
        };
        let failed_events = |c: &SchedulerCore| {
            c.events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Failed { .. }))
                .count()
        };
        assert_eq!(failed_records(&core), 1);
        assert_eq!(failed_events(&core), 1);
        let snap = core.snapshot();
        let started = core.on_failed(a, "watchdog kill".into(), 6.0);
        assert!(started.is_empty());
        assert_eq!(failed_records(&core), 1, "duplicate report re-logged");
        assert_eq!(failed_events(&core), 1, "duplicate report re-evented");
        assert_eq!(core.idle_procs(), 4, "duplicate report double-released");
        assert_eq!(core.snapshot(), snap, "duplicate report mutated state");
    }

    #[test]
    fn node_failure_shrinks_job_in_place() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        let (a, s) = core.submit(lu(8000, 2, 2), 0.0);
        let dead: Vec<usize> = s[0].slots[..2].to_vec();
        let survivors: Vec<usize> = s[0].slots[2..].to_vec();
        let started = core.on_node_failed(a, &dead, ProcessorConfig::new(1, 2), 5.0);
        assert!(started.is_empty());
        let rec = core.job(a).unwrap();
        assert!(
            matches!(rec.state, JobState::Running { config } if config == ProcessorConfig::new(1, 2)),
            "{:?}",
            rec.state
        );
        assert_eq!(rec.slots, survivors, "only the dead slots were reclaimed");
        assert_eq!(core.idle_procs(), 2);
        assert!(matches!(
            core.events().last().unwrap().kind,
            EventKind::NodeFailed { lost: 2, .. }
        ));
        // The degraded size is a recorded shrink: the §3.1 policy sees the
        // smaller configuration and may re-expand at the next resize point.
        let (d, _) = core.resize_point(a, 100.0, 0.0, 10.0);
        assert!(
            matches!(d, Directive::Expand { .. }),
            "policy should offer the freed processors back: {d:?}"
        );
    }

    #[test]
    fn node_failure_frees_capacity_for_queued_jobs() {
        let mut core = SchedulerCore::new(6, QueuePolicy::Fcfs);
        let (a, s) = core.submit(lu(8000, 2, 2), 0.0);
        let (b, queued) = core.submit(lu(8000, 2, 2), 1.0);
        assert!(queued.is_empty());
        let dead: Vec<usize> = s[0].slots[..2].to_vec();
        let started = core.on_node_failed(a, &dead, ProcessorConfig::new(1, 2), 5.0);
        assert_eq!(started.len(), 1, "freed slots should start the queued job");
        assert_eq!(started[0].job, b);
    }

    #[test]
    fn stale_node_failure_reports_are_rejected() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs).with_wal(Wal::in_memory());
        let (a, s) = core.submit(lu(8000, 2, 2), 0.0);
        let slots = s[0].slots.clone();
        let wal_len = |c: &SchedulerCore| c.wal().unwrap().records().len();
        let baseline = core.snapshot();
        let before = wal_len(&core);
        // Slot not held by the job.
        assert!(core
            .on_node_failed(a, &[99], ProcessorConfig::new(1, 2), 5.0)
            .is_empty());
        // Survivor count does not match the target configuration.
        assert!(core
            .on_node_failed(a, &slots[..1], ProcessorConfig::new(1, 2), 5.0)
            .is_empty());
        // Empty dead set.
        assert!(core
            .on_node_failed(a, &[], ProcessorConfig::new(2, 2), 5.0)
            .is_empty());
        assert_eq!(core.snapshot(), baseline, "invalid report mutated state");
        assert_eq!(wal_len(&core), before, "invalid report was logged");
        // A duplicate of a valid report: the first succeeds, the second is
        // stale (those slots are no longer held) and must be rejected.
        let dead: Vec<usize> = slots[..2].to_vec();
        core.on_node_failed(a, &dead, ProcessorConfig::new(1, 2), 6.0);
        let after = core.snapshot();
        assert!(core
            .on_node_failed(a, &dead, ProcessorConfig::new(1, 2), 7.0)
            .is_empty());
        assert_eq!(core.snapshot(), after, "duplicate node-failure re-applied");
    }

    #[test]
    fn failed_expansion_reverts_config_and_reclaims_slots() {
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 1, 2), 0.0);
        let (d, _) = core.resize_point(a, 100.0, 0.0, 10.0);
        let to = match d {
            Directive::Expand { to, .. } => to,
            other => panic!("expected expansion, got {other:?}"),
        };
        assert_eq!(core.busy_procs(), to.procs());
        let started = core.on_expand_failed(a, 11.0);
        assert!(started.is_empty());
        // Reverted to the pre-expansion configuration; surplus slots freed.
        assert!(matches!(
            core.job(a).unwrap().state,
            JobState::Running { config } if config == ProcessorConfig::new(1, 2)
        ));
        assert_eq!(core.busy_procs(), 2);
        assert!(matches!(
            core.events().last().unwrap().kind,
            EventKind::ExpandFailed { .. }
        ));
        // The attempt reads as "expansion did not help": no immediate
        // re-probe of the same growth.
        let (d2, _) = core.resize_point(a, 100.0, 0.0, 12.0);
        assert!(!matches!(d2, Directive::Expand { .. }), "{d2:?}");
    }

    #[test]
    fn failed_expansion_frees_capacity_for_queued_jobs() {
        let mut core = SchedulerCore::new(6, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 1, 2), 0.0);
        let (d, _) = core.resize_point(a, 100.0, 0.0, 10.0); // 1x2 -> 2x2
        assert!(matches!(d, Directive::Expand { .. }));
        // Queue a job needing 4: only 2 idle while `a` holds 4.
        let (b, s) = core.submit(lu(8000, 2, 2), 11.0);
        assert!(s.is_empty());
        // The expansion fails; its 2 reclaimed slots make 4 idle -> b starts.
        let started = core.on_expand_failed(a, 12.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, b);
    }

    #[test]
    fn expand_failed_without_prior_expand_is_inert() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 2, 2), 0.0);
        assert!(core.on_expand_failed(a, 1.0).is_empty());
        assert_eq!(core.busy_procs(), 4);
        // Unknown jobs too.
        assert!(core.on_expand_failed(JobId(999), 2.0).is_empty());
    }

    #[test]
    fn chaos_leak_hook_keeps_slots_allocated() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        core.chaos_skip_release_on_failure(true);
        let (a, _) = core.submit(lu(8000, 2, 2), 0.0);
        core.on_failed(a, "crash".into(), 5.0);
        // The planted bug: the job is terminal but its processors never
        // came back.
        assert_eq!(core.idle_procs(), 0);
        assert_eq!(core.busy_procs(), 4);
    }

    #[test]
    fn utilization_integral() {
        let mut core = SchedulerCore::new(10, QueuePolicy::Fcfs);
        let (a, _) = core.submit(mw(4), 0.0); // 4 procs busy from t=0
        assert_eq!(core.busy_procs(), 4);
        core.on_finished(a, 50.0);
        // 4 procs busy for 50 s out of 10 procs * 100 s.
        let u = core.utilization(100.0);
        assert!((u - 0.2).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn events_trace_records_lifecycle() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 1, 2), 0.0);
        core.resize_point(a, 100.0, 0.0, 10.0); // expand
        core.on_finished(a, 20.0);
        let kinds: Vec<_> = core.events().iter().map(|e| &e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Submitted));
        assert!(matches!(kinds[1], EventKind::Started { .. }));
        assert!(matches!(kinds[2], EventKind::Expanded { .. }));
        assert!(matches!(kinds[3], EventKind::Finished));
    }

    #[test]
    fn priority_jumps_the_queue() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        let (running, _) = core.submit(lu(8000, 2, 2), 0.0);
        let (_low, s) = core.submit(lu(8000, 2, 2), 1.0);
        assert!(s.is_empty());
        let (high, s) = core.submit(lu(8000, 2, 2).with_priority(5), 2.0);
        assert!(s.is_empty());
        // When the running job finishes, the high-priority job starts first
        // even though it arrived last.
        let started = core.on_finished(running, 10.0);
        assert_eq!(started[0].job, high);
    }

    #[test]
    fn priority_drives_shrink_for_queue() {
        // A high-priority arrival's need is what the shrink rule sees.
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 1, 2), 0.0);
        core.resize_point(a, 100.0, 0.0, 5.0); // expand to 2x2
        core.resize_point(a, 80.0, 1.0, 10.0); // expand to 2x4 (fills cluster)
        let (hp, s) = core.submit(lu(8000, 2, 2).with_priority(9), 12.0);
        assert!(s.is_empty());
        let (d, started) = core.resize_point(a, 60.0, 1.0, 15.0);
        assert!(matches!(d, Directive::Shrink { .. }), "{d:?}");
        assert_eq!(started[0].job, hp);
    }

    #[test]
    fn reservation_blocks_ordinary_start() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        core.reserve(0.0, 100.0, 4);
        let (_a, s) = core.submit(lu(8000, 2, 2), 1.0);
        assert!(s.is_empty(), "all processors are reserved");
        // After the window, the job starts.
        let started = core.try_schedule(101.0);
        assert_eq!(started.len(), 1);
    }

    #[test]
    fn reserved_job_draws_on_its_window() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        let rid = core.reserve(0.0, 100.0, 4);
        let (_other, s) = core.submit(lu(8000, 2, 2), 1.0);
        assert!(s.is_empty());
        let (owner, s) = core.submit_reserved(lu(8000, 2, 2).with_priority(1), rid, 2.0);
        assert_eq!(s.len(), 1, "reservation owner starts inside its window");
        assert_eq!(s[0].job, owner);
    }

    #[test]
    fn reservation_deficit_shrinks_running_jobs() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 1, 2), 0.0);
        core.resize_point(a, 100.0, 0.0, 5.0); // 2x2
        core.resize_point(a, 80.0, 1.0, 10.0); // 2x4 = whole cluster
        // A reservation for 4 procs activates at t=20 with 0 idle.
        core.reserve(20.0, 100.0, 4);
        let (d, _) = core.resize_point(a, 60.0, 1.0, 25.0);
        match d {
            Directive::Shrink { to } => assert!(to.procs() <= 4, "must vacate reserved capacity"),
            other => panic!("expected shrink for reservation deficit, got {other:?}"),
        }
        assert!(core.idle_procs() >= 4);
    }

    #[test]
    fn expansion_respects_active_reservation() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        core.reserve(0.0, 100.0, 4);
        let (a, s) = core.submit(lu(8000, 1, 2), 0.0);
        assert_eq!(s.len(), 1);
        // 2 busy, 6 idle, 4 reserved -> only 2 effectively available; the
        // 1x2 -> 2x2 expansion needs exactly 2, so it may proceed...
        let (d, _) = core.resize_point(a, 100.0, 0.0, 5.0);
        assert!(matches!(d, Directive::Expand { .. }));
        // ...but the next one (2x2 -> 2x4, +4) must not touch the window.
        let (d, _) = core.resize_point(a, 80.0, 1.0, 10.0);
        assert_eq!(d, Directive::NoChange);
        // Once the reservation lapses, growth resumes.
        let (d, _) = core.resize_point(a, 80.0, 0.0, 150.0);
        assert!(matches!(d, Directive::Expand { .. }));
    }

    #[test]
    fn cancelled_reservation_frees_capacity() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        let rid = core.reserve(0.0, 100.0, 4);
        let (_a, s) = core.submit(lu(8000, 2, 2), 1.0);
        assert!(s.is_empty());
        core.cancel_reservation(rid);
        assert_eq!(core.try_schedule(2.0).len(), 1);
    }

    #[test]
    fn cancel_queued_job_unblocks_fcfs_head() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        let (_running, _) = core.submit(lu(8000, 2, 2), 0.0);
        let (big, s) = core.submit(lu(8000, 2, 4), 1.0); // blocked head
        assert!(s.is_empty());
        let (small, s) = core.submit(lu(8000, 2, 2), 2.0); // stuck behind it
        assert!(s.is_empty());
        // Cancelling the blocked head lets... nothing start (cluster full),
        // but after the running job finishes, `small` starts directly.
        core.cancel(big, 3.0);
        assert!(matches!(
            core.job(big).unwrap().state,
            JobState::Cancelled { .. }
        ));
        let running = core.jobs().find(|(_, r)| matches!(r.state, JobState::Running { .. })).map(|(id, _)| *id).unwrap();
        let started = core.on_finished(running, 10.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, small);
    }

    #[test]
    fn cancel_running_job_delivers_terminate_and_frees_procs() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 2, 2), 0.0);
        let (b, s) = core.submit(lu(8000, 2, 4), 1.0);
        assert!(s.is_empty());
        let started = core.cancel(a, 5.0);
        // A's 4 processors free immediately; B (needs 8) starts.
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, b);
        // A's next resize point gets the Terminate directive.
        let (d, _) = core.resize_point(a, 50.0, 0.0, 6.0);
        assert_eq!(d, Directive::Terminate);
        // Repeated check-ins (a duplicated control message, or a zombie
        // that ignored the first verdict) are told to terminate again —
        // Terminate is idempotent and never reallocates.
        let (d, starts) = core.resize_point(a, 50.0, 0.0, 7.0);
        assert_eq!(d, Directive::Terminate);
        assert!(starts.is_empty());
    }

    #[test]
    fn cancel_racing_inflight_expansion_reclaims_old_and_new_slots() {
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 1, 2), 0.0);
        // The Remap Scheduler grants an expansion; the driver is now "in
        // flight" between receiving Expand and committing the spawn.
        let (d, _) = core.resize_point(a, 100.0, 0.0, 10.0);
        let new_slots = match d {
            Directive::Expand { new_slots, .. } => new_slots,
            other => panic!("expected expansion, got {other:?}"),
        };
        assert!(!new_slots.is_empty());
        // Cancel lands mid-flight: the job record already owns both the
        // original and the freshly granted slots, and all of them must
        // come back.
        core.cancel(a, 11.0);
        assert_eq!(core.idle_procs(), 16, "cancel leaked in-flight expansion slots");
        // The driver's expansion attempt resolves after the cancel — both
        // outcomes must be inert against the cancelled record.
        let starts = core.on_expand_failed(a, 12.0);
        assert!(starts.is_empty());
        assert_eq!(core.idle_procs(), 16, "late expand-failure double-released");
        // And the (possibly expanded) process group is fenced off at its
        // next resize point.
        let (d, _) = core.resize_point(a, 50.0, 0.0, 13.0);
        assert_eq!(d, Directive::Terminate);
        assert_eq!(core.idle_procs(), 16);
    }

    #[test]
    fn cancel_terminal_job_is_a_no_op() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 2, 2), 0.0);
        core.on_finished(a, 5.0);
        assert!(core.cancel(a, 6.0).is_empty());
        assert!(matches!(core.job(a).unwrap().state, JobState::Finished { .. }));
    }

    #[test]
    fn event_trace_is_bounded_and_drainable() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs).with_event_cap(4);
        for i in 0..6 {
            let (a, _) = core.submit(lu(8000, 1, 2), i as f64);
            core.on_finished(a, i as f64 + 0.5);
        }
        // 6 jobs x (Submitted, Started, Finished) = 18 events against cap 4.
        assert!(core.events().len() <= 4, "cap not enforced: {}", core.events().len());
        assert!(core.events_dropped() >= 14, "drops uncounted: {}", core.events_dropped());
        let drained = core.drain_events();
        assert!(!drained.is_empty());
        assert!(core.events().is_empty());
        assert!(core.drain_events().is_empty());
    }

    #[test]
    fn double_finish_is_ignored() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 2, 2), 0.0);
        core.on_finished(a, 10.0);
        let again = core.on_finished(a, 11.0);
        assert!(again.is_empty());
        assert_eq!(core.idle_procs(), 4);
    }

    // ------------------------------------------------------------------
    // Federation leases
    // ------------------------------------------------------------------

    #[test]
    fn lend_grant_and_reclaim_roundtrip() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let slots = core.lend_grant(1, 3, 0.0).unwrap();
        assert_eq!(slots, vec![0, 1, 2]);
        assert_eq!((core.owned_procs(), core.idle_procs(), core.lent_procs()), (5, 5, 3));
        // A duplicate grant for the same lease id is refused.
        assert!(core.lend_grant(1, 2, 1.0).is_none());
        // Lending beyond idle is refused without side effects.
        assert!(core.lend_grant(2, 6, 1.0).is_none());
        assert_eq!(core.idle_procs(), 5);
        // Reclaim brings them home and is idempotent.
        core.lend_reclaim(1, 5.0);
        assert_eq!((core.owned_procs(), core.idle_procs(), core.lent_procs()), (8, 8, 0));
        assert!(core.lend_reclaim(1, 6.0).is_empty());
        assert_eq!(core.idle_procs(), 8);
    }

    #[test]
    fn reclaim_starts_queued_work() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        core.lend_grant(1, 2, 0.0).unwrap();
        // Needs 4, only 2 owned-and-idle: queues.
        let (b, s) = core.submit(lu(8000, 2, 2), 1.0);
        assert!(s.is_empty());
        let started = core.lend_reclaim(1, 2.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, b);
    }

    #[test]
    fn borrow_attach_starts_queued_work_and_expands_ceiling() {
        let mut core = SchedulerCore::new(2, QueuePolicy::Fcfs);
        let (b, s) = core.submit(lu(8000, 2, 2), 0.0);
        assert!(s.is_empty(), "needs 4 of 2");
        let started = core.borrow_attach(9, &[100, 101], 0, 1.0);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, b);
        // Local ids are minted above the native range.
        assert_eq!(started[0].slots, vec![0, 1, 2, 3]);
        assert_eq!((core.owned_procs(), core.borrowed_procs()), (4, 2));
        // Duplicate grant frame: strict no-op.
        assert!(core.borrow_attach(9, &[100, 101], 0, 2.0).is_empty());
        assert_eq!(core.owned_procs(), 4);
    }

    #[test]
    fn borrow_evict_shrinks_jobs_off_borrowed_slots() {
        let mut core = SchedulerCore::new(2, QueuePolicy::Fcfs);
        let (a, s) = core.submit(mw(4), 0.0);
        assert!(s.is_empty());
        core.borrow_attach(9, &[100, 101], 0, 1.0);
        assert!(matches!(core.job(a).unwrap().state, JobState::Running { .. }));
        let out = core.borrow_evict(9, 10.0);
        assert_eq!(out.detached, 2);
        assert_eq!(out.shrunk.len(), 1);
        let (job, from, to) = out.shrunk[0];
        assert_eq!(job, a);
        assert_eq!((from.procs(), to.procs()), (4, 2));
        // The job survived on its native slots; the pool shrank back.
        assert_eq!((core.owned_procs(), core.busy_procs(), core.borrowed_procs()), (2, 2, 0));
        assert_eq!(core.job(a).unwrap().slots, vec![0, 1]);
        // Duplicate eviction: strict no-op.
        let out2 = core.borrow_evict(9, 11.0);
        assert_eq!(out2, EvictOutcome::default());
    }

    #[test]
    fn borrow_evict_fails_job_with_nothing_left() {
        let mut core = SchedulerCore::new(2, QueuePolicy::Fcfs);
        let (a, _) = core.submit(mw(2), 0.0); // takes both native slots
        core.borrow_attach(9, &[100, 101], 0, 1.0);
        let (b, s) = core.submit(mw(2), 2.0);
        assert_eq!(s.len(), 1, "second job runs entirely on borrowed slots");
        let out = core.borrow_evict(9, 10.0);
        assert_eq!(out.failed, vec![b]);
        assert!(out.shrunk.is_empty());
        assert!(matches!(core.job(b).unwrap().state, JobState::Failed { .. }));
        assert!(matches!(core.job(a).unwrap().state, JobState::Running { .. }));
        assert_eq!((core.owned_procs(), core.busy_procs()), (2, 2));
    }

    #[test]
    fn brownout_pauses_expansion_but_not_shrink() {
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let (a, _) = core.submit(lu(8000, 1, 2), 0.0);
        core.set_expand_paused(true, 5.0);
        assert!(core.expand_paused());
        // This resize point would expand into the idle cluster (see
        // resize_point_expands_into_idle_cluster); browned out it must not.
        let (d, _) = core.resize_point(a, 100.0, 0.0, 10.0);
        assert_eq!(d, Directive::NoChange);
        assert_eq!(core.busy_procs(), 2);
        // Release: the next resize point expands again.
        core.set_expand_paused(false, 20.0);
        let (d, _) = core.resize_point(a, 100.0, 0.0, 30.0);
        assert!(matches!(d, Directive::Expand { .. }));
    }

    #[test]
    fn lease_transitions_recover_from_wal() {
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs).with_wal(Wal::in_memory());
        let (a, _) = core.submit(mw(2), 0.0);
        core.lend_grant(1, 2, 1.0).unwrap();
        core.borrow_attach(2, &[40, 41, 42], 1, 2.0);
        core.resize_point(a, 10.0, 0.0, 3.0);
        core.set_expand_paused(true, 4.0);
        core.borrow_evict(2, 5.0);
        core.lend_reclaim(1, 6.0);
        core.set_expand_paused(false, 7.0);
        core.borrow_attach(3, &[50], 2, 8.0);
        let before = core.snapshot();
        let wal = core.take_wal().unwrap();
        let recovered = SchedulerCore::recover(Wal::decode(&wal.encode()).unwrap()).unwrap();
        assert_eq!(recovered.snapshot(), before);
        // Foreign-id high-water mark survives: the next attach on both
        // cores mints identical local ids.
        assert_eq!(before.foreign_minted, 4);
    }

    #[test]
    fn epoch_bumps_and_heal_repairs_recover_exactly() {
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs).with_wal(Wal::in_memory());
        assert_eq!(core.epoch(), 0);
        assert_eq!(core.bump_epoch(1.0), 1);
        core.borrow_attach(7, &[30, 31], 1, 2.0);
        assert_eq!(core.bump_epoch(3.0), 2);
        core.journal_heal_repair(7, HealAction::EvictStaleBorrow, 4.0);
        core.borrow_evict(7, 4.0);
        assert_eq!(core.epoch(), 2);
        assert_eq!(
            core.borrowed_leases().get(&7),
            None,
            "heal journaling must not itself mutate lease state"
        );
        let before = core.snapshot();
        assert_eq!(before.epoch, 2);
        let wal = core.take_wal().unwrap();
        let recovered = SchedulerCore::recover(Wal::decode(&wal.encode()).unwrap()).unwrap();
        assert_eq!(recovered.epoch(), 2, "replay must restore the epoch exactly");
        assert_eq!(recovered.snapshot(), before);
    }
}
