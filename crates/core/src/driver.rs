//! The resizing library and API (paper §3.2).
//!
//! This module is what an application links against to become resizable.
//! It provides the paper's two API tiers:
//!
//! * **Simple Functional API** — [`ResizeContext::log`] and
//!   [`ResizeContext::resize`]: `resize()` internally contacts the
//!   scheduler, expands or shrinks the processor set, and redistributes the
//!   data. Combined with [`run_resizable`], porting an iterative SPMD code
//!   means supplying an `init` closure (build the distributed state) and an
//!   `iterate` closure (one outer iteration).
//! * **Advanced Functional API** — [`ResizeContext::contact_scheduler`],
//!   [`ResizeContext::expand_processors`],
//!   [`ResizeContext::shrink_processors`] and
//!   [`ResizeContext::redistribute`], for codes that need to orchestrate the
//!   stages themselves (Figure 1(b)'s state machine).
//!
//! Mechanically, expansion spawns new processes with
//! `MPI_Comm_spawn_multiple`-equivalent [`Comm::spawn`], merges the
//! intercommunicator, rebuilds the grid context, and redistributes every
//! registered global array with the contention-free schedule from
//! `reshape-redist`. Shrinking redistributes first, then the surplus ranks
//! exit and the survivors carve a smaller communicator out of the old one.

use std::sync::Arc;

use reshape_blockcyclic::{recover_matrix, BuddyStore, Descriptor, DistMatrix};
use reshape_grid::GridContext;
use reshape_mpisim::{Comm, NodeId, SpawnCtx};
use reshape_redist::{plan_2d, redistribute_2d};
use reshape_telemetry::trace::{self, TraceCtx};

use crate::backoff::Backoff;
use crate::core::Directive;
use crate::job::JobId;
use crate::topology::ProcessorConfig;

/// How a resizable application reaches the scheduler. The real runtime
/// backs this with a channel to the scheduler thread; tests and the
/// simulator provide their own implementations.
pub trait SchedulerLink: Send + Sync {
    /// The paper's `contact_scheduler`: report the last iteration time and
    /// redistribution time; receive expand/shrink/no-change.
    fn resize_point(&self, job: JobId, iter_time: f64, redist_time: f64, now: f64) -> Directive;
    /// Report the measured cost of an actuated redistribution.
    fn note_redist(&self, job: JobId, from: ProcessorConfig, to: ProcessorConfig, seconds: f64);
    /// The application finished its final iteration.
    fn finished(&self, job: JobId, now: f64);
    /// The application entered a new computational phase; the profiler's
    /// timing history for it should reset (paper intro's multi-phase
    /// motivation). Default: ignored.
    fn phase_change(&self, _job: JobId, _now: f64) {}
    /// An expand directive could not be actuated (the spawn was granted
    /// fewer processes than needed); the job keeps running at its previous
    /// configuration and the scheduler should reclaim the granted slots.
    /// Default: ignored.
    fn expand_failed(&self, _job: JobId, _to: ProcessorConfig, _now: f64) {}
    /// A survivable job lost the given ranks to a node failure but
    /// recovered in place: the scheduler should reclaim only the dead
    /// ranks' slots and keep the job running at configuration `to`
    /// ([`crate::SchedulerCore::on_node_failed`]). `dead_ranks` are rank
    /// indices in the job's pre-failure communicator; implementations map
    /// them to processor slots. Default: ignored.
    fn node_failed(&self, _job: JobId, _dead_ranks: &[usize], _to: ProcessorConfig, _now: f64) {}
    /// A survivable job could not recover (a rank and its buddy both died):
    /// the job is over and the scheduler should reclaim everything
    /// ([`crate::SchedulerCore::on_failed`]). Default: ignored — the
    /// process-monitor failure path then picks it up as before.
    fn failed(&self, _job: JobId, _reason: &str, _now: f64) {}
}

/// A resizable application: closures shared by the original processes and
/// any process spawned later (the paper's requirement that the same binary
/// can join mid-run).
///
/// `init` builds the distributed global state for a fresh start; `iterate`
/// performs one outer iteration. All global state that must survive a
/// resize lives in the `Vec<DistMatrix<f64>>` ("the application user needs
/// to indicate the global data structures ... so that they can be
/// redistributed").
/// The state-construction closure of an [`AppDef`].
pub type InitFn = dyn Fn(&GridContext) -> Vec<DistMatrix<f64>> + Send + Sync;
/// The per-iteration closure of an [`AppDef`]: `(grid, state, iteration)`.
pub type IterateFn = dyn Fn(&GridContext, &mut Vec<DistMatrix<f64>>, usize) + Send + Sync;

#[derive(Clone)]
pub struct AppDef {
    pub init: Arc<InitFn>,
    pub iterate: Arc<IterateFn>,
    /// Iteration indices at which a new computational phase begins; the
    /// driver notifies the scheduler there so the job re-probes its sweet
    /// spot (empty for single-phase applications).
    pub phase_starts: Vec<usize>,
}

impl AppDef {
    pub fn new(
        init: impl Fn(&GridContext) -> Vec<DistMatrix<f64>> + Send + Sync + 'static,
        iterate: impl Fn(&GridContext, &mut Vec<DistMatrix<f64>>, usize) + Send + Sync + 'static,
    ) -> Self {
        AppDef {
            init: Arc::new(init),
            iterate: Arc::new(iterate),
            phase_starts: Vec::new(),
        }
    }

    /// Declare the iteration indices at which new phases begin.
    pub fn with_phase_starts(mut self, starts: Vec<usize>) -> Self {
        self.phase_starts = starts;
        self
    }
}

/// How the driver handles transient spawn shortfalls during an expansion:
/// `MPI_Comm_spawn_multiple` returning fewer processes than requested is
/// often a transient condition (a node agent restarting, a race with
/// another job's teardown), so the driver retries the spawn with
/// exponential backoff in virtual time before giving up and reporting the
/// size unprofitable via [`SchedulerLink::expand_failed`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total spawn attempts per expand directive (1 = no retry).
    pub max_attempts: usize,
    /// Virtual-seconds backoff before the second attempt.
    pub base_backoff: f64,
    /// Multiplier applied to the backoff for each further attempt.
    pub backoff_factor: f64,
    /// Ceiling on a single backoff (virtual seconds).
    pub max_backoff: f64,
    /// ± fraction of deterministic jitter applied to each backoff, seeded
    /// by `(job, attempt)` so contending expansions de-synchronize while
    /// every rank of one job computes the identical delay.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: 0.5,
            backoff_factor: 2.0,
            max_backoff: 8.0,
            jitter_frac: 0.25,
        }
    }
}

impl RetryPolicy {
    /// Single-attempt policy: a short grant immediately aborts the
    /// expansion (the pre-retry behavior).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// The policy's schedule as the shared [`Backoff`] primitive (the bus
    /// retransmit path composes the same type).
    pub fn schedule(&self) -> Backoff {
        Backoff {
            base: self.base_backoff,
            factor: self.backoff_factor,
            max: self.max_backoff,
            jitter_frac: self.jitter_frac,
        }
    }

    /// Backoff (virtual seconds) charged after failed attempt `attempt`
    /// (1-based). Pure function of the policy, job and attempt, so every
    /// rank agrees on the delay without communicating. Delegates to
    /// [`Backoff::delay`] keyed by the job id — bit-identical to the
    /// schedule the driver has always used.
    pub fn backoff_for(&self, job: JobId, attempt: usize) -> f64 {
        self.schedule().delay(job.0, attempt)
    }
}

/// Immutable driver parameters shared across resizes and spawned processes.
pub struct DriverShared {
    pub job: JobId,
    pub app: AppDef,
    pub iterations: usize,
    pub link: Arc<dyn SchedulerLink>,
    /// Processor slots per cluster node, to map granted slots to nodes.
    pub slots_per_node: usize,
    /// Fold real wall-clock compute time of `iterate` into the virtual
    /// clock. Off for deterministic tests (apps then model compute with
    /// `Comm::advance`), on for real measurement runs.
    pub fold_wall_time: bool,
    /// Spawn-shortfall retry behavior for expansions.
    pub retry: RetryPolicy,
    /// Run with in-memory buddy redundancy and shrink-to-survivors
    /// recovery: every rank's panels are replicated to a ring neighbor at
    /// each resize point, a heartbeat exchange at every iteration boundary
    /// detects dead ranks, and a detected loss is survived by restoring the
    /// lost panels from their buddies and continuing on the surviving
    /// ranks. Costs one panel copy per rank per resize plus `O(P^2)` tiny
    /// heartbeat messages per iteration, so it is opt-in per job
    /// ([`crate::JobSpec::survivable`]).
    pub survivable: bool,
}

/// What [`ResizeContext::resize`] tells the caller to do next.
#[derive(Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Keep iterating on the current grid.
    Continue,
    /// The processor set changed; the grid context was rebuilt.
    Resized,
    /// This process was shrunk away: clean up and return immediately.
    Depart,
}

const DIR_NOCHANGE: u64 = 0;
const DIR_EXPAND: u64 = 1;
const DIR_SHRINK: u64 = 2;
const DIR_TERMINATE: u64 = 3;

/// Intercomm tag for the expansion commit handshake: after spawning, the
/// parent root tells each child whether the expansion goes ahead
/// ([`EXPAND_GO`]) or is aborted because the spawn was short-granted
/// ([`EXPAND_ABORT`], children exit before merging). Both tags sit in the
/// simulator's control-plane range `[TAG_CTRL_BASE, 2^24)`, so injected
/// message faults (loss/duplication/reordering) apply to them — the
/// ack/retransmit handshake below is what masks those faults.
const TAG_EXPAND_COMMIT: u32 = 9_000_000;
/// Child → parent-root acknowledgment of a received commit verdict.
const TAG_EXPAND_ACK: u32 = 9_000_001;
const EXPAND_GO: u64 = 1;
const EXPAND_ABORT: u64 = 0;

/// Reliably deliver the commit verdict to every spawned child over the
/// (possibly lossy) control plane: send, poll for per-child acks, and
/// retransmit to children that have not acknowledged. Runs on the parent
/// root only.
///
/// Exactly-once commit falls out of the structure: each child receives one
/// verdict (duplicates sit unmatched in its mailbox and die with it) and
/// acts on it once; the parent's retransmissions are idempotent re-sends of
/// the same verdict. If every ack is lost the parent eventually proceeds —
/// for a GO the merge collective synchronizes with the children anyway, and
/// a child that never saw its verdict would surface as a deadlock timeout
/// in the simulator rather than a silently divergent state.
fn send_verdict_reliable(inter: &reshape_mpisim::InterComm, n_children: usize, verdict: u64) {
    if n_children == 0 {
        return;
    }
    const MAX_ROUNDS: usize = 64;
    const POLLS_PER_ROUND: usize = 20;
    let mut acked = vec![false; n_children];
    for round in 0..MAX_ROUNDS {
        for (child, done) in acked.iter().enumerate() {
            if !done {
                inter.send_remote(child, TAG_EXPAND_COMMIT, &[verdict]);
            }
        }
        if round > 0 {
            reshape_telemetry::incr("driver.commit_retransmits", 1);
        }
        for _ in 0..POLLS_PER_ROUND {
            for (child, done) in acked.iter_mut().enumerate() {
                if !*done && inter.iprobe_remote(child, TAG_EXPAND_ACK) {
                    let _: Vec<u64> = inter.recv_remote(child, TAG_EXPAND_ACK);
                    *done = true;
                }
            }
            if acked.iter().all(|&a| a) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    reshape_telemetry::incr("driver.commit_ack_timeouts", 1);
}

/// Per-process handle to the resizing library.
pub struct ResizeContext {
    shared: Arc<DriverShared>,
    comm: Comm,
    grid: GridContext,
    config: ProcessorConfig,
    iter: usize,
    /// Redistribution seconds paid at the previous resize (reported to the
    /// scheduler with the next iteration time).
    last_redist: f64,
    /// Iteration log on rank 0 (the paper's `log()` writes the average
    /// iteration time to a file; we keep it queryable).
    log: Vec<f64>,
}

impl ResizeContext {
    /// Attach the resizing library to a running process group — the entry
    /// point for the **advanced** API, where the application orchestrates
    /// `contact_scheduler` / `expand_processors` / `shrink_processors` /
    /// `redistribute` itself (Figure 1(b)). Codes using the simple API go
    /// through [`run_resizable`] instead.
    pub fn attach(shared: Arc<DriverShared>, comm: Comm, config: ProcessorConfig) -> Self {
        assert_eq!(comm.size(), config.procs(), "communicator must match config");
        Self::new(shared, comm, config, 0)
    }

    fn new(shared: Arc<DriverShared>, comm: Comm, config: ProcessorConfig, iter: usize) -> Self {
        let grid = GridContext::new(&comm, config.rows, config.cols);
        ResizeContext {
            shared,
            comm,
            grid,
            config,
            iter,
            last_redist: 0.0,
            log: Vec::new(),
        }
    }

    pub fn grid(&self) -> &GridContext {
        &self.grid
    }

    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    pub fn config(&self) -> ProcessorConfig {
        self.config
    }

    pub fn iteration(&self) -> usize {
        self.iter
    }

    pub fn iteration_log(&self) -> &[f64] {
        &self.log
    }

    /// Simple API: record the iteration time that will be reported at the
    /// next resize point (collective: the logged value is the maximum over
    /// all processes, like the paper's average-and-log step).
    pub fn log(&mut self, local_iter_time: f64) -> f64 {
        let agreed = self.comm.allreduce(reshape_mpisim::ReduceOp::Max, &[local_iter_time])[0];
        if self.comm.rank() == 0 {
            self.log.push(agreed);
        }
        agreed
    }

    /// Advanced API: ask the Remap Scheduler what to do, given the agreed
    /// iteration time. Collective; every rank returns the same directive.
    pub fn contact_scheduler(&mut self, iter_time: f64) -> Directive {
        let msg: Vec<u64> = if self.comm.rank() == 0 {
            let d = self.shared.link.resize_point(
                self.shared.job,
                iter_time,
                self.last_redist,
                self.comm.vtime(),
            );
            match d {
                Directive::NoChange => vec![DIR_NOCHANGE],
                Directive::Expand { to, new_slots } => {
                    let mut m = vec![DIR_EXPAND, to.rows as u64, to.cols as u64];
                    m.extend(new_slots.iter().map(|&s| s as u64));
                    m
                }
                Directive::Shrink { to } => vec![DIR_SHRINK, to.rows as u64, to.cols as u64],
                Directive::Terminate => vec![DIR_TERMINATE],
            }
        } else {
            Vec::new()
        };
        let msg = self.comm.bcast(0, &msg);
        match msg[0] {
            DIR_NOCHANGE => Directive::NoChange,
            DIR_EXPAND => Directive::Expand {
                to: ProcessorConfig::new(msg[1] as usize, msg[2] as usize),
                new_slots: msg[3..].iter().map(|&s| s as usize).collect(),
            },
            DIR_SHRINK => Directive::Shrink {
                to: ProcessorConfig::new(msg[1] as usize, msg[2] as usize),
            },
            DIR_TERMINATE => Directive::Terminate,
            other => unreachable!("corrupt directive {other}"),
        }
    }

    /// Advanced API: spawn the processes granted by an expand directive and
    /// merge them in (BLACS-context rebuild included). Redistribution is a
    /// separate step ([`ResizeContext::redistribute`]).
    ///
    /// Returns `false` when the spawn was granted fewer processes than the
    /// expansion needs, every retry allowed by the shared [`RetryPolicy`]
    /// included: each partial grant is aborted (spawned processes exit
    /// before merging) and retried after an exponential virtual-time
    /// backoff; once the budget is exhausted the scheduler is told via
    /// [`SchedulerLink::expand_failed`] and the application keeps running
    /// on its previous configuration with its data layout untouched.
    pub fn expand_processors(
        &mut self,
        to: ProcessorConfig,
        new_slots: &[usize],
        mats: &mut Vec<DistMatrix<f64>>,
    ) -> bool {
        let from = self.config;
        let delta = to.procs() - from.procs();
        let policy = self.shared.retry;
        let max_attempts = policy.max_attempts.max(1);
        let mut attempt = 1;
        let (inter, t0) = loop {
            let nodes: Option<Vec<NodeId>> = (self.comm.rank() == 0).then(|| {
                assert_eq!(new_slots.len(), delta, "slot grant does not match growth");
                new_slots
                    .iter()
                    .map(|&s| NodeId((s / self.shared.slots_per_node) as u32))
                    .collect()
            });
            let shared = Arc::clone(&self.shared);
            let t0 = self.comm.vtime();
            let inter = self.comm.spawn(delta, nodes, "reshape-expand", move |ctx| {
                spawned_process_main(ctx, Arc::clone(&shared));
            });
            // Commit handshake: every rank learned the actual grant from
            // the spawn broadcast; the root tells each spawned process
            // whether to proceed into the merge or exit immediately.
            let granted = inter.remote_size();
            if granted == delta {
                break (inter, t0);
            }
            if self.comm.rank() == 0 {
                send_verdict_reliable(&inter, granted, EXPAND_ABORT);
                reshape_telemetry::incr("driver.expand_aborts", 1);
            }
            if attempt >= max_attempts {
                if self.comm.rank() == 0 {
                    self.shared
                        .link
                        .expand_failed(self.shared.job, to, self.comm.vtime());
                }
                self.last_redist = 0.0;
                return false;
            }
            // Transient shortfall: back off in virtual time and try again.
            // Every rank computes the same deterministic delay, so the
            // group stays in lockstep for the next collective spawn.
            let backoff = policy.backoff_for(self.shared.job, attempt);
            self.comm.advance(backoff);
            if self.comm.rank() == 0 {
                reshape_telemetry::incr("driver.expand_retries", 1);
                reshape_telemetry::observe("driver.expand_backoff_seconds", backoff);
            }
            attempt += 1;
        };
        if self.comm.rank() == 0 {
            send_verdict_reliable(&inter, delta, EXPAND_GO);
            if trace::enabled() {
                // Spawn + commit handshake, retries and backoff included:
                // from entry into the spawn loop to the GO verdict.
                let job = self.shared.job.0;
                let s = trace::complete(
                    job,
                    trace::head(job),
                    format!("spawn +{delta} ({attempt} attempt{})", if attempt == 1 { "" } else { "s" }),
                    "spawn",
                    "driver",
                    t0,
                    self.comm.vtime(),
                );
                trace::set_head(job, s);
            }
        }
        let t_redist0 = self.comm.vtime();
        let merged = inter.merge();
        // Tell the newcomers where the computation stands: iteration count,
        // old and new configurations, and each array's descriptor.
        let mut hdr: Vec<u64> = vec![
            self.iter as u64,
            from.rows as u64,
            from.cols as u64,
            to.rows as u64,
            to.cols as u64,
            mats.len() as u64,
        ];
        for m in mats.iter() {
            hdr.extend([m.desc.m as u64, m.desc.n as u64, m.desc.mb as u64, m.desc.nb as u64]);
        }
        merged.bcast(0, &hdr);
        // Move the data; parents are sources and (low-rank) destinations.
        *mats = redistribute_over(&merged, from, to, std::mem::take(mats), true)
            .expect("parents remain in the expanded grid");
        let dt = self.comm.vtime() - t0;
        self.last_redist = dt;
        if self.comm.rank() == 0 {
            reshape_telemetry::incr("driver.expansions", 1);
            reshape_telemetry::observe("driver.redist_vtime_seconds", dt);
            if trace::enabled() {
                let job = self.shared.job.0;
                let s = trace::complete(
                    job,
                    trace::head(job),
                    format!("redist {from}->{to}"),
                    "redist",
                    "driver",
                    t_redist0,
                    self.comm.vtime(),
                );
                trace::set_head(job, s);
            }
            self.shared.link.note_redist(self.shared.job, from, to, dt);
        }
        self.comm = merged;
        self.config = to;
        self.grid = GridContext::new(&self.comm, to.rows, to.cols);
        true
    }

    /// Advanced API: redistribute to a previously used smaller
    /// configuration, exit the old context, and relinquish the surplus
    /// processes. Returns `Depart` on ranks that leave.
    pub fn shrink_processors(
        &mut self,
        to: ProcessorConfig,
        mats: &mut Vec<DistMatrix<f64>>,
    ) -> Resolution {
        let from = self.config;
        assert!(to.procs() < from.procs(), "shrink must reduce the processor count");
        let t0 = self.comm.vtime();
        let out = redistribute_over(&self.comm, from, to, std::mem::take(mats), true);
        let dt = self.comm.vtime() - t0;
        let keep = self.comm.rank() < to.procs();
        let sub = self.comm.split(keep.then_some(0), self.comm.rank() as i64);
        if !keep {
            // This process leaves the application; its slot was already
            // reclaimed by the scheduler when the directive was issued.
            return Resolution::Depart;
        }
        *mats = out.expect("retained ranks received their panels");
        self.last_redist = dt;
        if self.comm.rank() == 0 {
            reshape_telemetry::incr("driver.shrinks", 1);
            reshape_telemetry::observe("driver.redist_vtime_seconds", dt);
            if trace::enabled() {
                let job = self.shared.job.0;
                let s = trace::complete(
                    job,
                    trace::head(job),
                    format!("redist {from}->{to}"),
                    "redist",
                    "driver",
                    t0,
                    self.comm.vtime(),
                );
                trace::set_head(job, s);
            }
            self.shared.link.note_redist(self.shared.job, from, to, dt);
        }
        self.comm = sub.expect("retained ranks form the new communicator");
        self.config = to;
        self.grid = GridContext::new(&self.comm, to.rows, to.cols);
        Resolution::Resized
    }

    /// Advanced API: redistribute one matrix between configurations over the
    /// current communicator (exposed for custom orchestration; `resize`
    /// moves every registered array automatically).
    pub fn redistribute(
        &self,
        mat: DistMatrix<f64>,
        from: ProcessorConfig,
        to: ProcessorConfig,
    ) -> Option<DistMatrix<f64>> {
        let plan = plan_2d(
            grid_desc(&mat.desc, from),
            grid_desc(&mat.desc, to),
        );
        redistribute_2d(&self.comm, &plan, Some(&mat))
    }

    /// Simple API: the whole resize-point protocol — contact the scheduler,
    /// act on the directive, redistribute the registered arrays, rebuild the
    /// grid. The caller's iteration loop only needs to honor the returned
    /// [`Resolution`].
    pub fn resize(&mut self, iter_time: f64, mats: &mut Vec<DistMatrix<f64>>) -> Resolution {
        match self.contact_scheduler(iter_time) {
            Directive::NoChange => {
                self.last_redist = 0.0;
                Resolution::Continue
            }
            Directive::Expand { to, new_slots } => {
                if self.expand_processors(to, &new_slots, mats) {
                    Resolution::Resized
                } else {
                    // Spawn shortfall: the expansion was aborted and the
                    // scheduler notified; keep iterating on the old grid.
                    Resolution::Continue
                }
            }
            Directive::Shrink { to } => self.shrink_processors(to, mats),
            // Cancelled: every process leaves; the scheduler already
            // reclaimed the job's processors.
            Directive::Terminate => Resolution::Depart,
        }
    }
}

/// Rewrite a descriptor's grid shape for a configuration (the matrix shape
/// and blocking are resize-invariant; only the grid changes).
fn grid_desc(d: &Descriptor, cfg: ProcessorConfig) -> Descriptor {
    Descriptor::new(d.m, d.n, d.mb, d.nb, cfg.rows, cfg.cols)
}

/// Redistribute a whole state vector between configurations over `comm`
/// (which covers `max(from, to)` ranks). `have_src` is false on freshly
/// spawned ranks that only receive. Returns `None` on ranks outside the
/// destination grid.
fn redistribute_over(
    comm: &Comm,
    from: ProcessorConfig,
    to: ProcessorConfig,
    mats: Vec<DistMatrix<f64>>,
    have_src: bool,
) -> Option<Vec<DistMatrix<f64>>> {
    let me = comm.rank();
    let in_dst = me < to.procs();
    let mut out = in_dst.then(Vec::new);
    for mat in mats {
        let plan = plan_2d(grid_desc(&mat.desc, from), grid_desc(&mat.desc, to));
        let src = (have_src && me < from.procs()).then_some(&mat);
        let dst = redistribute_2d(comm, &plan, src);
        if let Some(v) = out.as_mut() {
            v.push(dst.expect("destination rank receives every array"));
        }
    }
    out
}

/// Redistribute with *descriptors only* on the receiving side (spawned
/// processes own no source data).
fn receive_state(
    comm: &Comm,
    from: ProcessorConfig,
    to: ProcessorConfig,
    descs: &[Descriptor],
) -> Vec<DistMatrix<f64>> {
    let me = comm.rank();
    assert!(me < to.procs(), "spawned rank must be inside the new grid");
    descs
        .iter()
        .map(|d| {
            let plan = plan_2d(grid_desc(d, from), grid_desc(d, to));
            redistribute_2d::<f64>(comm, &plan, None).expect("in destination grid")
        })
        .collect()
}

/// Entry point of a dynamically spawned process: wait for the parent's
/// commit verdict, then merge with the parents, learn the computation
/// state, receive data, and join the iteration loop. On an aborted
/// expansion (short spawn grant) the process exits before merging.
fn spawned_process_main(ctx: SpawnCtx, shared: Arc<DriverShared>) {
    let go: Vec<u64> = ctx.parent.recv_remote(0, TAG_EXPAND_COMMIT);
    // Acknowledge the verdict a few times: the ack travels over the same
    // faultable control plane, and the parent stops retransmitting the
    // verdict once any one copy arrives. Retransmitted verdicts that arrive
    // after this point sit unmatched in the mailbox, so the child still
    // acts on the verdict exactly once.
    for _ in 0..3 {
        ctx.parent.send_remote(0, TAG_EXPAND_ACK, &[go[0]]);
    }
    if go[0] != EXPAND_GO {
        return;
    }
    let merged = ctx.parent.merge();
    let hdr: Vec<u64> = merged.bcast(0, &[]);
    let iter = hdr[0] as usize;
    let from = ProcessorConfig::new(hdr[1] as usize, hdr[2] as usize);
    let to = ProcessorConfig::new(hdr[3] as usize, hdr[4] as usize);
    let nmats = hdr[5] as usize;
    let descs: Vec<Descriptor> = (0..nmats)
        .map(|i| {
            let o = 6 + 4 * i;
            Descriptor::new(
                hdr[o] as usize,
                hdr[o + 1] as usize,
                hdr[o + 2] as usize,
                hdr[o + 3] as usize,
                to.rows,
                to.cols,
            )
        })
        .collect();
    let mats = receive_state(&merged, from, to, &descs);
    let ctx = ResizeContext::new(Arc::clone(&shared), merged, to, iter);
    drive_loop(ctx, mats);
}

/// Heartbeat tag for the per-iteration liveness exchange of survivable
/// jobs (internal data plane, above the buddy-recovery range).
const TAG_HEARTBEAT: u32 = 8_700_000;
/// Second heartbeat round: failure flags, so every survivor agrees on
/// whether (and whom) the group lost before anyone enters recovery.
const TAG_HEARTBEAT_CONFIRM: u32 = 8_700_001;

/// Per-iteration failure detection for survivable jobs: every rank pings
/// every peer, then the observed failure flags are exchanged so all
/// survivors agree on the dead set before any of them diverges into
/// recovery. Returns the (possibly empty) list of dead ranks.
///
/// Two rounds make the detection decision collective: a rank that died
/// mid-iteration (the common case — compute advances dominate virtual
/// time) is seen dead by everyone in round one; a rank that died while
/// *sending* its round-one pings (so some peers got one and some did not)
/// never sends round-two flags, which marks it dead for everyone. The
/// remaining hole — a rank whose crash lands inside its own round-two
/// receive window — is caught by the next iteration's heartbeat; until
/// then survivors blocked on it surface through the deadlock timeout and
/// the job fails like a non-survivable one. Survivable apps must therefore
/// confine raw collectives to code the driver controls (the `iterate`
/// closure should use point-to-point or pure compute advances).
fn check_survivors(comm: &Comm) -> Vec<usize> {
    let me = comm.rank();
    let p = comm.size();
    let mut dead = vec![false; p];
    for r in 0..p {
        if r != me {
            let _ = comm.try_send(r, TAG_HEARTBEAT, &[1u64]);
        }
    }
    for (r, d) in dead.iter_mut().enumerate() {
        if r != me && comm.recv_or_failed::<u64>(r, TAG_HEARTBEAT).is_err() {
            *d = true;
        }
    }
    let flag = [u64::from(dead.iter().any(|&d| d))];
    for (r, d) in dead.iter().enumerate() {
        if r != me && !d {
            let _ = comm.try_send(r, TAG_HEARTBEAT_CONFIRM, &flag);
        }
    }
    for (r, d) in dead.iter_mut().enumerate() {
        if r != me && !*d && comm.recv_or_failed::<u64>(r, TAG_HEARTBEAT_CONFIRM).is_err() {
            *d = true;
        }
    }
    (0..p).filter(|&r| dead[r]).collect()
}

/// Shrink-to-survivors recovery: roll every survivor back to its own
/// snapshot from the last replication epoch, rebuild the dead ranks'
/// panels from their buddy copies straight into the shrunken layout,
/// rebuild the communicator and grid on the survivors, report the forced
/// shrink to the scheduler (only the dead slots are reclaimed; the job
/// stays `Running`), and refresh the buddy copies at the new size.
///
/// The rollback is what keeps the rebuilt matrix consistent: a dead
/// rank's data exists only as of the last refresh, so mixing it with
/// survivors' *current* panels would splice two epochs together. The
/// caller must reset its iteration counter to the replication epoch and
/// replay the iterations executed since (deterministic SPMD iterations
/// recompute the same values; that is the survivability contract).
///
/// Returns `false` when the loss is unrecoverable (a dead rank's buddy is
/// also dead): the job is reported failed and every survivor should
/// return from its iteration loop.
fn recover_from_loss(
    ctx: &mut ResizeContext,
    mats: &mut Vec<DistMatrix<f64>>,
    buddy: &mut BuddyStore<f64>,
    dead: &[usize],
) -> bool {
    let shared = Arc::clone(&ctx.shared);
    let me = ctx.comm.rank();
    let p = ctx.comm.size();
    let survivors: Vec<usize> = (0..p).filter(|r| !dead.contains(r)).collect();
    let from = ctx.config;
    let to = ProcessorConfig::new(1, survivors.len());
    let t0 = ctx.comm.vtime();
    let span = reshape_telemetry::span("driver.recovery_wall_seconds");
    let mut out = Vec::with_capacity(mats.len());
    for idx in 0..mats.len() {
        // Feed the *snapshot* of this rank's panel — not the live matrix —
        // so all sources agree on the epoch being reassembled.
        let mine = buddy.own_snapshot(idx);
        match recover_matrix(&ctx.comm, &survivors, &mine, buddy, idx, grid_desc(&mine.desc, to)) {
            Ok(Some(v)) => out.push(v),
            Ok(None) => unreachable!("every survivor is inside the shrunken grid"),
            Err(lost) => {
                // The rank and its buddy both died: the panels are gone
                // from memory and the job cannot continue. The audit is a
                // pure function of the agreed survivor list, so every
                // survivor takes this branch together.
                span.stop();
                reshape_telemetry::incr("driver.recovery_unrecoverable", 1);
                if me == survivors[0] {
                    shared.link.failed(
                        shared.job,
                        &format!("rank {lost} and its buddy both lost to node failure"),
                        ctx.comm.vtime(),
                    );
                }
                return false;
            }
        }
    }
    let new_comm = ctx
        .comm
        .survivor_comm(&survivors)
        .expect("a recovering rank is by definition a survivor");
    if new_comm.rank() == 0 {
        shared
            .link
            .node_failed(shared.job, dead, to, new_comm.vtime());
    }
    *mats = out;
    ctx.comm = new_comm;
    ctx.config = to;
    ctx.grid = GridContext::new(&ctx.comm, to.rows, to.cols);
    *buddy = BuddyStore::replicate(&ctx.comm, mats);
    let dt = ctx.comm.vtime() - t0;
    // The recovery redistribution is charged like any other: the next
    // resize point reports it so the profiler sees the true cost.
    ctx.last_redist = dt;
    span.stop();
    reshape_telemetry::incr("driver.recoveries", 1);
    if ctx.comm.rank() == 0 {
        reshape_telemetry::observe("driver.recovery_vtime_seconds", dt);
        if trace::enabled() {
            let job = shared.job.0;
            let s = trace::complete(
                job,
                trace::head(job),
                format!("recovery {from}->{to} (-{} ranks)", dead.len()),
                "recovery",
                "driver",
                t0,
                ctx.comm.vtime(),
            );
            trace::set_head(job, s);
            trace::set_current(TraceCtx { trace: job, parent: s });
        }
        reshape_telemetry::record(reshape_telemetry::Event::NodeFailed {
            time: t0,
            job: shared.job.0,
            lost: dead.len(),
            procs_before: from.procs(),
            procs_after: to.procs(),
        });
        reshape_telemetry::record(reshape_telemetry::Event::Recovered {
            time: ctx.comm.vtime(),
            job: shared.job.0,
            procs: to.procs(),
            seconds: dt,
        });
    }
    true
}

/// The iteration loop shared by original and spawned processes.
fn drive_loop(mut ctx: ResizeContext, mut mats: Vec<DistMatrix<f64>>) {
    let shared = Arc::clone(&ctx.shared);
    // Survivable jobs keep a buddy copy of every panel, refreshed whenever
    // the layout changes (here at entry, and after every resize below).
    // `buddy_iter` is the iteration the snapshots were taken *before*:
    // recovery rolls back to that epoch and replays from there.
    let mut buddy = shared
        .survivable
        .then(|| BuddyStore::replicate(&ctx.comm, &mats));
    let mut buddy_iter = ctx.iter;
    // Highest iteration index already traced: after a rollback, iterations
    // below this mark are replays and their spans are categorized as such
    // (the critical-path analyzer charges them to rollback/replay).
    let mut traced_iter = ctx.iter;
    while ctx.iter < shared.iterations {
        let v0 = ctx.comm.vtime();
        // One span per iteration: the measured wall time is recorded into
        // the `driver.iter_wall_seconds` histogram *and* reused as the
        // value folded into the virtual clock, so the clock and the
        // telemetry can never disagree about how long an iteration took.
        let span = reshape_telemetry::span("driver.iter_wall_seconds");
        (shared.app.iterate)(&ctx.grid, &mut mats, ctx.iter);
        let wall = span.stop();
        if shared.fold_wall_time {
            ctx.comm.advance(wall);
        }
        if let Some(b) = buddy.as_mut() {
            let dead = check_survivors(&ctx.comm);
            if !dead.is_empty() {
                if !recover_from_loss(&mut ctx, &mut mats, b, &dead) {
                    return;
                }
                // The recovered panels are from the last replication
                // epoch: rewind and replay the iterations since on the
                // shrunken grid (the interrupted one included).
                reshape_telemetry::incr(
                    "driver.iterations_replayed",
                    (ctx.iter - buddy_iter + 1) as u64,
                );
                ctx.iter = buddy_iter;
                continue;
            }
        }
        let t_iter = ctx.log(ctx.comm.vtime() - v0);
        if ctx.comm.rank() == 0 {
            // Virtual iteration time — what the profiler sees.
            reshape_telemetry::observe("driver.iter_vtime_seconds", t_iter);
            if trace::enabled() {
                let cat = if ctx.iter < traced_iter { "replay" } else { "compute" };
                let s = trace::complete(
                    shared.job.0,
                    trace::head(shared.job.0),
                    format!("iter {}", ctx.iter),
                    cat,
                    "driver",
                    v0,
                    ctx.comm.vtime(),
                );
                trace::set_head(shared.job.0, s);
                // Ambient context for this rank-0 thread: the next message
                // to the scheduler (resize point, completion, failure)
                // carries this span as its causal parent.
                trace::set_current(TraceCtx {
                    trace: shared.job.0,
                    parent: s,
                });
            }
        }
        traced_iter = traced_iter.max(ctx.iter + 1);
        ctx.iter += 1;
        if ctx.iter >= shared.iterations {
            break;
        }
        if shared.app.phase_starts.contains(&ctx.iter) && ctx.comm.rank() == 0 {
            shared.link.phase_change(shared.job, ctx.comm.vtime());
        }
        match ctx.resize(t_iter, &mut mats) {
            Resolution::Depart => return,
            Resolution::Resized => {
                // The layout changed: the old buddy copies describe panels
                // that no longer exist. Refresh at the new size; this also
                // advances the rollback epoch to the current iteration.
                if let Some(b) = buddy.as_mut() {
                    *b = BuddyStore::replicate(&ctx.comm, &mats);
                    buddy_iter = ctx.iter;
                }
            }
            Resolution::Continue => {}
        }
    }
    ctx.comm.barrier();
    if ctx.comm.rank() == 0 {
        shared.link.finished(shared.job, ctx.comm.vtime());
    }
}

/// Run a resizable application on a freshly launched process group. This is
/// the function the Job Startup module points a new job's processes at.
pub fn run_resizable(comm: Comm, config: ProcessorConfig, shared: Arc<DriverShared>) {
    assert_eq!(comm.size(), config.procs(), "launch size must match config");
    let ctx = ResizeContext::new(Arc::clone(&shared), comm, config, 0);
    let mats = (shared.app.init)(&ctx.grid);
    drive_loop(ctx, mats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{QueuePolicy, SchedulerCore};
    use crate::job::JobSpec;
    use crate::topology::TopologyPref;
    use parking_lot::Mutex;
    use reshape_mpisim::{NetModel, Universe};

    /// A link backed directly by a SchedulerCore behind a mutex.
    struct CoreLink(Mutex<SchedulerCore>);

    impl SchedulerLink for CoreLink {
        fn resize_point(&self, job: JobId, it: f64, rt: f64, now: f64) -> Directive {
            self.0.lock().resize_point(job, it, rt, now).0
        }
        fn note_redist(&self, job: JobId, from: ProcessorConfig, to: ProcessorConfig, s: f64) {
            self.0.lock().note_redist_cost(job, from, to, s);
        }
        fn finished(&self, job: JobId, now: f64) {
            self.0.lock().on_finished(job, now);
        }
        fn expand_failed(&self, job: JobId, _to: ProcessorConfig, now: f64) {
            self.0.lock().on_expand_failed(job, now);
        }
        fn node_failed(&self, job: JobId, dead_ranks: &[usize], to: ProcessorConfig, now: f64) {
            let mut core = self.0.lock();
            // Slot i backs rank i: grants (initial and expansion) append in
            // rank order, so the driver's rank-indexed dead set maps
            // directly onto the record's slot list.
            let dead_slots: Vec<usize> = {
                let rec = core.job(job).expect("job exists while running");
                dead_ranks.iter().map(|&rk| rec.slots[rk]).collect()
            };
            core.on_node_failed(job, &dead_slots, to, now);
        }
        fn failed(&self, job: JobId, reason: &str, now: f64) {
            self.0.lock().on_failed(job, reason.to_string(), now);
        }
    }

    /// A sum-preserving toy application: each iteration multiplies the
    /// matrix by 1 (noop) and advances modeled compute time that shrinks
    /// with the processor count, so expansion always "improves".
    fn toy_app(n: usize) -> AppDef {
        AppDef::new(
            move |grid| {
                let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
                vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |i, j| {
                    (i * n + j) as f64
                })]
            },
            move |grid, _mats, _iter| {
                let p = (grid.nprow() * grid.npcol()) as f64;
                grid.comm().advance(10.0 / p);
            },
        )
    }

    fn checksum(grid: &GridContext, m: &DistMatrix<f64>) -> f64 {
        let local: f64 = m.local_data().iter().sum();
        grid.comm()
            .allreduce(reshape_mpisim::ReduceOp::Sum, &[local])[0]
    }

    #[test]
    fn app_expands_on_idle_cluster_and_keeps_data() {
        let n = 16usize;
        let uni = Universe::new(16, 1, NetModel::ideal());
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "toy",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            6,
        );
        let (job, starts) = core.submit(spec, 0.0);
        assert_eq!(starts.len(), 1);
        let link = Arc::new(CoreLink(Mutex::new(core)));

        // Verify data integrity after every iteration with a checksum.
        let expected: f64 = (0..n * n).map(|x| x as f64).sum();
        let app = {
            let base = toy_app(n);
            let init = base.init.clone();
            AppDef {
                init,
                iterate: Arc::new(move |grid: &GridContext, mats: &mut Vec<DistMatrix<f64>>, it| {
                    (base.iterate)(grid, mats, it);
                    let sum = checksum(grid, &mats[0]);
                    assert!(
                        (sum - expected).abs() < 1e-6,
                        "data corrupted at iteration {it}: {sum} != {expected}"
                    );
                }),
                phase_starts: Vec::new(),
            }
        };
        let shared = Arc::new(DriverShared {
            job,
            app,
            iterations: 6,
            link: link.clone(),
            slots_per_node: 1,
            fold_wall_time: false,
            retry: RetryPolicy::default(),
            survivable: false,
        });
        let cfg = ProcessorConfig::new(1, 2);
        let shared2 = Arc::clone(&shared);
        let h = uni.launch(2, None, "toy", move |comm| {
            run_resizable(comm, cfg, Arc::clone(&shared2));
        });
        h.join_ok();
        uni.join_spawned();

        let core = link.0.lock();
        let rec = core.job(job).unwrap();
        assert!(matches!(rec.state, crate::job::JobState::Finished { .. }));
        // The job should have grown beyond its initial 2 processors.
        let prof = core.profiler().profile(job).unwrap();
        assert!(
            prof.visited().len() >= 2,
            "expected at least one expansion, visited {:?}",
            prof.visited()
        );
        assert!(prof.ever_expanded());
        drop(core);
    }

    #[test]
    fn failed_expansion_reverts_to_sweet_spot() {
        // Iteration time *degrades* beyond 4 processors: the driver should
        // expand 2 -> 4 -> 6, see 6 is worse, revert to 4 and hold.
        let n = 24usize;
        let uni = Universe::new(32, 1, NetModel::ideal());
        let mut core = SchedulerCore::new(32, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "sweet",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            10,
        );
        let (job, _) = core.submit(spec, 0.0);
        let link = Arc::new(CoreLink(Mutex::new(core)));
        let app = AppDef::new(
            move |grid| {
                let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
                vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |_, _| 1.0)]
            },
            |grid, _mats, _it| {
                let p = grid.nprow() * grid.npcol();
                // Sweet spot at 4 processors.
                let t = match p {
                    1 | 2 => 20.0 / p as f64,
                    4 => 4.0,
                    _ => 6.0,
                };
                grid.comm().advance(t);
            },
        );
        let shared = Arc::new(DriverShared {
            job,
            app,
            iterations: 10,
            link: link.clone(),
            slots_per_node: 1,
            fold_wall_time: false,
            retry: RetryPolicy::default(),
            survivable: false,
        });
        let cfg = ProcessorConfig::new(1, 2);
        let shared2 = Arc::clone(&shared);
        uni.launch(2, None, "sweet", move |comm| {
            run_resizable(comm, cfg, Arc::clone(&shared2));
        })
        .join_ok();
        uni.join_spawned();

        let core = link.0.lock();
        let rec = core.job(job).unwrap();
        // Ends at the 2x2 sweet spot, not at the failed 2x3.
        assert!(matches!(
            rec.state,
            crate::job::JobState::Finished { .. }
        ));
        let prof = core.profiler().profile(job).unwrap();
        let visited: Vec<String> = prof.visited().iter().map(|c| c.to_string()).collect();
        assert!(visited.contains(&"2x2".to_string()), "visited {visited:?}");
        assert!(visited.contains(&"2x3".to_string()), "visited {visited:?}");
        // Final configuration at finish was the sweet spot.
        let last = prof.history().last().unwrap();
        assert_eq!(last.config, ProcessorConfig::new(2, 2));
        assert_eq!(prof.last_expansion_improved(), Some(false));
        drop(core);
    }

    #[test]
    fn short_spawn_grant_aborts_expansion_and_reverts() {
        let n = 16usize;
        let uni = Universe::new(16, 1, NetModel::ideal());
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "faulty",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            6,
        );
        let (job, starts) = core.submit(spec, 0.0);
        assert_eq!(starts.len(), 1);
        let link = Arc::new(CoreLink(Mutex::new(core)));
        // The first expansion's spawn is granted only one of the processes
        // it asks for; the driver must abort and fall back.
        uni.inject_spawn_cap(1);

        let expected: f64 = (0..n * n).map(|x| x as f64).sum();
        let app = {
            let base = toy_app(n);
            let init = base.init.clone();
            AppDef {
                init,
                iterate: Arc::new(move |grid: &GridContext, mats: &mut Vec<DistMatrix<f64>>, it| {
                    (base.iterate)(grid, mats, it);
                    let sum = checksum(grid, &mats[0]);
                    assert!(
                        (sum - expected).abs() < 1e-6,
                        "data corrupted at iteration {it}: {sum} != {expected}"
                    );
                }),
                phase_starts: Vec::new(),
            }
        };
        let shared = Arc::new(DriverShared {
            job,
            app,
            iterations: 6,
            link: link.clone(),
            slots_per_node: 1,
            fold_wall_time: false,
            retry: RetryPolicy::none(),
            survivable: false,
        });
        let cfg = ProcessorConfig::new(1, 2);
        let shared2 = Arc::clone(&shared);
        uni.launch(2, None, "faulty", move |comm| {
            run_resizable(comm, cfg, Arc::clone(&shared2));
        })
        .join_ok();
        uni.join_spawned();

        let core = link.0.lock();
        let rec = core.job(job).unwrap();
        assert!(matches!(rec.state, crate::job::JobState::Finished { .. }));
        // The failed attempt is on the trace and the pool is whole again.
        assert!(
            core.events()
                .iter()
                .any(|e| matches!(e.kind, crate::core::EventKind::ExpandFailed { .. })),
            "no ExpandFailed event recorded"
        );
        assert_eq!(core.idle_procs(), 16, "granted slots were not reclaimed");
        // The job held its pre-expansion configuration to the end.
        let prof = core.profiler().profile(job).unwrap();
        assert_eq!(prof.history().last().unwrap().config, cfg);
        assert_eq!(prof.last_expansion_improved(), Some(false));
        drop(core);
    }

    #[test]
    fn zero_spawn_grant_is_survivable() {
        // A spawn granted *no* processes at all: same fallback, no spawned
        // threads to reap.
        let n = 8usize;
        let uni = Universe::new(8, 1, NetModel::ideal());
        let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "none",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            4,
        );
        let (job, _) = core.submit(spec, 0.0);
        let link = Arc::new(CoreLink(Mutex::new(core)));
        uni.inject_spawn_cap(0);
        let shared = Arc::new(DriverShared {
            job,
            app: toy_app(n),
            iterations: 4,
            link: link.clone(),
            slots_per_node: 1,
            fold_wall_time: false,
            retry: RetryPolicy::none(),
            survivable: false,
        });
        let cfg = ProcessorConfig::new(1, 2);
        let shared2 = Arc::clone(&shared);
        uni.launch(2, None, "none", move |comm| {
            run_resizable(comm, cfg, Arc::clone(&shared2));
        })
        .join_ok();
        uni.join_spawned();
        let core = link.0.lock();
        assert!(matches!(
            core.job(job).unwrap().state,
            crate::job::JobState::Finished { .. }
        ));
        assert_eq!(core.idle_procs(), 8);
        drop(core);
    }

    #[test]
    fn shrink_frees_processors_for_queued_job() {
        // Job A grows into the whole 6-proc cluster; job B arrives and A
        // must shrink to let B start.
        let n = 12usize;
        let uni = Universe::new(6, 1, NetModel::ideal());
        let mut core = SchedulerCore::new(6, QueuePolicy::Fcfs);
        let spec_a = JobSpec::new(
            "A",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            12,
        );
        let (job_a, _) = core.submit(spec_a, 0.0);
        let link = Arc::new(CoreLink(Mutex::new(core)));

        let app = toy_app(n);
        let shared = Arc::new(DriverShared {
            job: job_a,
            app,
            iterations: 12,
            link: link.clone(),
            slots_per_node: 1,
            fold_wall_time: false,
            retry: RetryPolicy::default(),
            survivable: false,
        });
        let cfg = ProcessorConfig::new(1, 2);
        let shared2 = Arc::clone(&shared);
        let h = uni.launch(2, None, "A", move |comm| {
            run_resizable(comm, cfg, Arc::clone(&shared2));
        });
        // Let A expand a couple of times, then enqueue B (needs 2 procs).
        std::thread::sleep(std::time::Duration::from_millis(50));
        let spec_b = JobSpec::new(
            "B",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            1,
        );
        let (job_b, _) = link.0.lock().submit(spec_b, 1000.0);
        h.join_ok();
        uni.join_spawned();

        let core = link.0.lock();
        let prof = core.profiler().profile(job_a).unwrap();
        let shrank = prof
            .history()
            .windows(2)
            .any(|w| w[1].config.procs() < w[0].config.procs());
        // Either A shrank to make room, or B fit into idle processors
        // before A ever grew past 4 — both scheduler-legal; assert the
        // invariant that B was eventually allocated.
        let b_rec = core.job(job_b).unwrap();
        assert!(
            b_rec.started_at.is_some() || shrank,
            "B never started and A never shrank"
        );
        drop(core);
    }

    /// Build the standard checksummed test app + shared driver state.
    fn checksummed_shared(
        n: usize,
        job: JobId,
        iterations: usize,
        link: Arc<CoreLink>,
        retry: RetryPolicy,
    ) -> Arc<DriverShared> {
        let expected: f64 = (0..n * n).map(|x| x as f64).sum();
        let base = toy_app(n);
        let init = base.init.clone();
        let app = AppDef {
            init,
            iterate: Arc::new(move |grid: &GridContext, mats: &mut Vec<DistMatrix<f64>>, it| {
                (base.iterate)(grid, mats, it);
                let sum = checksum(grid, &mats[0]);
                assert!(
                    (sum - expected).abs() < 1e-6,
                    "data corrupted at iteration {it}: {sum} != {expected}"
                );
            }),
            phase_starts: Vec::new(),
        };
        Arc::new(DriverShared {
            job,
            app,
            iterations,
            link,
            slots_per_node: 1,
            fold_wall_time: false,
            retry,
            survivable: false,
        })
    }

    #[test]
    fn transient_short_grant_retries_and_expands() {
        // Only the FIRST spawn attempt is denied; the default retry policy
        // backs off (in virtual time) and the second attempt succeeds, so
        // the job still expands instead of writing the size off.
        let n = 16usize;
        let uni = Universe::new(16, 1, NetModel::ideal());
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "transient",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            6,
        );
        let (job, starts) = core.submit(spec, 0.0);
        assert_eq!(starts.len(), 1);
        let link = Arc::new(CoreLink(Mutex::new(core)));
        uni.inject_spawn_cap(0);

        let shared = checksummed_shared(n, job, 6, link.clone(), RetryPolicy::default());
        let cfg = ProcessorConfig::new(1, 2);
        let shared2 = Arc::clone(&shared);
        uni.launch(2, None, "transient", move |comm| {
            run_resizable(comm, cfg, Arc::clone(&shared2));
        })
        .join_ok();
        uni.join_spawned();

        let core = link.0.lock();
        let rec = core.job(job).unwrap();
        assert!(matches!(rec.state, crate::job::JobState::Finished { .. }));
        let prof = core.profiler().profile(job).unwrap();
        assert!(
            prof.ever_expanded(),
            "retry never rescued the expansion: visited {:?}",
            prof.visited()
        );
        assert_eq!(core.idle_procs(), 16);
        drop(core);
    }

    #[test]
    fn exhausted_retry_budget_reverts_and_pool_stays_whole() {
        // All three attempts of the default policy are denied: the driver
        // gives up, reports the failed expansion, and every granted slot
        // makes it back to the pool.
        let n = 16usize;
        let uni = Universe::new(16, 1, NetModel::ideal());
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "stubborn",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            6,
        );
        let (job, starts) = core.submit(spec, 0.0);
        assert_eq!(starts.len(), 1);
        let link = Arc::new(CoreLink(Mutex::new(core)));
        for _ in 0..3 {
            uni.inject_spawn_cap(0);
        }

        let shared = checksummed_shared(n, job, 6, link.clone(), RetryPolicy::default());
        let cfg = ProcessorConfig::new(1, 2);
        let shared2 = Arc::clone(&shared);
        uni.launch(2, None, "stubborn", move |comm| {
            run_resizable(comm, cfg, Arc::clone(&shared2));
        })
        .join_ok();
        uni.join_spawned();

        let core = link.0.lock();
        let rec = core.job(job).unwrap();
        assert!(matches!(rec.state, crate::job::JobState::Finished { .. }));
        assert!(
            core.events()
                .iter()
                .any(|e| matches!(e.kind, crate::core::EventKind::ExpandFailed { .. })),
            "no ExpandFailed event after exhausting the retry budget"
        );
        assert_eq!(core.idle_procs(), 16, "granted slots were not reclaimed");
        drop(core);
    }

    #[test]
    fn expansion_commits_exactly_once_under_message_faults() {
        // Control-plane chaos under the expansion commit handshake: verdict
        // and ack frames are dropped, duplicated and reordered, yet every
        // spawned process acts on the verdict exactly once and the
        // checksummed data survives the redistribution.
        let n = 16usize;
        let uni = Universe::new(16, 1, NetModel::ideal());
        uni.inject_msg_loss(0.25, 0xDEAD);
        uni.inject_msg_dup(0.2, 0xBEEF);
        uni.inject_msg_reorder(0.2, 0xF00D);
        let mut core = SchedulerCore::new(16, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "chaotic",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            6,
        );
        let (job, starts) = core.submit(spec, 0.0);
        assert_eq!(starts.len(), 1);
        let link = Arc::new(CoreLink(Mutex::new(core)));

        let shared = checksummed_shared(n, job, 6, link.clone(), RetryPolicy::default());
        let cfg = ProcessorConfig::new(1, 2);
        let shared2 = Arc::clone(&shared);
        uni.launch(2, None, "chaotic", move |comm| {
            run_resizable(comm, cfg, Arc::clone(&shared2));
        })
        .join_ok();
        uni.join_spawned();
        uni.clear_faults();

        let core = link.0.lock();
        let rec = core.job(job).unwrap();
        assert!(matches!(rec.state, crate::job::JobState::Finished { .. }));
        let prof = core.profiler().profile(job).unwrap();
        assert!(
            prof.ever_expanded(),
            "expansion never committed under message faults: visited {:?}",
            prof.visited()
        );
        assert_eq!(core.idle_procs(), 16, "pool accounting diverged");
        drop(core);
    }

    /// Run a static survivable 2x2 job whose matrix evolves element-wise
    /// each iteration (so a botched rollback/replay is visible in the
    /// data), optionally crashing nodes mid-run. Returns the matrix
    /// gathered on the final iteration (empty if the job died first), the
    /// link, the job id, and how many processes failed.
    fn run_survivable(
        n: usize,
        iters: usize,
        crashes: &[(u32, f64)],
    ) -> (Vec<f64>, Arc<CoreLink>, JobId, usize) {
        let uni = Universe::new(4, 1, NetModel::ideal());
        for &(node, at) in crashes {
            uni.inject_node_crash(reshape_mpisim::NodeId(node), at);
        }
        let mut core = SchedulerCore::new(4, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "survivor",
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(2, 2),
            iters,
        )
        .static_job()
        .survivable();
        let (job, starts) = core.submit(spec, 0.0);
        assert_eq!(starts.len(), 1);
        let link = Arc::new(CoreLink(Mutex::new(core)));
        let captured: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let cap = Arc::clone(&captured);
        let app = AppDef::new(
            move |grid| {
                let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
                vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |i, j| {
                    (i * n + j) as f64
                })]
            },
            move |grid, mats, it| {
                // Deterministic per-element evolution: replay after a
                // rollback must recompute exactly these values on any grid
                // shape, so the transform depends only on (value, iter).
                for v in mats[0].local_data_mut() {
                    *v = *v * 1.5 + (it + 1) as f64;
                }
                let p = (grid.nprow() * grid.npcol()) as f64;
                grid.comm().advance(10.0 / p);
                if it + 1 == iters {
                    if let Some(full) = mats[0].gather(grid) {
                        *cap.lock() = full;
                    }
                }
            },
        );
        let shared = Arc::new(DriverShared {
            job,
            app,
            iterations: iters,
            link: link.clone(),
            slots_per_node: 1,
            fold_wall_time: false,
            retry: RetryPolicy::default(),
            survivable: true,
        });
        let cfg = ProcessorConfig::new(2, 2);
        let shared2 = Arc::clone(&shared);
        let h = uni.launch(4, None, "survivor", move |comm| {
            run_resizable(comm, cfg, Arc::clone(&shared2));
        });
        let failed = h
            .join()
            .into_iter()
            .filter(|(_, s)| matches!(s, reshape_mpisim::ProcStatus::Failed(_)))
            .count();
        uni.join_spawned();
        uni.clear_faults();
        let full = captured.lock().clone();
        (full, link, job, failed)
    }

    #[test]
    fn node_loss_mid_iteration_is_survived_with_identical_data() {
        let n = 16usize;
        // Baseline: same app, no faults, all 4 ranks to the end.
        let (baseline, _, _, failed0) = run_survivable(n, 6, &[]);
        assert_eq!(failed0, 0);
        assert_eq!(baseline.len(), n * n, "baseline gather incomplete");

        // Iterations advance 10/4 = 2.5s of virtual time on the 2x2 grid,
        // so a crash at t=6.0 lands squarely inside iteration 2. Rank 2
        // dies mid-compute; the survivors detect it at the heartbeat,
        // restore its panel from rank 3's buddy copy, shrink to 1x3, and
        // replay from the replication epoch.
        let (survived, link, job, failed) = run_survivable(n, 6, &[(2, 6.0)]);
        assert_eq!(failed, 1, "exactly the victim process dies");

        let core = link.0.lock();
        let rec = core.job(job).unwrap();
        assert!(
            matches!(rec.state, crate::job::JobState::Finished { .. }),
            "survivable job should finish after a single node loss, got {:?}",
            rec.state
        );
        assert!(
            core.events().iter().any(|e| matches!(
                e.kind,
                crate::core::EventKind::NodeFailed { lost: 1, .. }
            )),
            "forced shrink was never reported to the scheduler"
        );
        assert_eq!(core.idle_procs(), 4, "dead and finished slots both return to the pool");
        drop(core);

        // The recovered run must agree with the fault-free run *bitwise*:
        // rollback plus deterministic replay reproduces the exact floats.
        assert_eq!(survived.len(), baseline.len());
        for (i, (a, b)) in survived.iter().zip(&baseline).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "element {i} diverged after recovery: {a} != {b}"
            );
        }
    }

    #[test]
    fn dead_buddy_pair_fails_the_job_cleanly() {
        let n = 16usize;
        // Ranks 2 and 3 are ring neighbors: rank 3 holds rank 2's only
        // copy, so losing both in the same epoch is unrecoverable. The
        // survivors must agree, report the failure once, and exit.
        let (survived, link, job, failed) = run_survivable(n, 6, &[(2, 6.0), (3, 6.0)]);
        assert_eq!(failed, 2);
        assert!(survived.is_empty(), "no final gather after an unrecoverable loss");

        let core = link.0.lock();
        let rec = core.job(job).unwrap();
        assert!(
            matches!(rec.state, crate::job::JobState::Failed { .. }),
            "expected Failed after losing a buddy pair, got {:?}",
            rec.state
        );
        assert_eq!(core.idle_procs(), 4, "failed job's slots were not reclaimed");
        drop(core);
    }
}
