//! Processor-topology selection: which configurations a job may run on and
//! how a configuration grows or shrinks (paper §3.1, Table 2).
//!
//! The paper's rules for grid applications (LU, MM):
//! * every grid dimension must evenly divide the problem size ("we require
//!   that the global data be equally distributable across the new processor
//!   set");
//! * grids are kept "nearly-square": growth adds processors to the smallest
//!   row or column of the existing topology — an `r × c` grid (`r ≤ c`)
//!   grows to `c × c`, and a square `c × c` grid grows to `c × c'` with `c'`
//!   the next valid divisor.
//!
//! 1-D applications (Jacobi, FFT) use a flat list of legal counts (divisors
//! of the problem size, optionally restricted to even counts — the paper's
//! cluster allocates whole 2-CPU nodes). The master–worker application
//! accepts any count in a range with a stride.

use serde::{Deserialize, Serialize};

/// A processor configuration: an `rows × cols` grid (1-D apps use
/// `rows == 1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessorConfig {
    pub rows: usize,
    pub cols: usize,
}

impl ProcessorConfig {
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate configuration");
        ProcessorConfig { rows, cols }
    }

    /// 1-D configuration of `n` processors.
    pub fn linear(n: usize) -> Self {
        Self::new(1, n)
    }

    /// Total processors.
    pub fn procs(&self) -> usize {
        self.rows * self.cols
    }
}

impl std::fmt::Display for ProcessorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// How an application's legal processor configurations are generated —
/// the "simple configuration file" of the paper, where applications indicate
/// their preferred topology at submission time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyPref {
    /// Nearly-square 2-D grids whose dimensions divide `problem_size`.
    Grid { problem_size: usize },
    /// 1-D partitions: processor counts dividing `problem_size`, optionally
    /// even only (whole 2-CPU nodes).
    Linear {
        problem_size: usize,
        even_only: bool,
    },
    /// Any count from `min` to `max` in steps of `step` (master–worker).
    AnyCount {
        min: usize,
        max: usize,
        step: usize,
    },
    /// An explicit user-specified list of legal configurations, in growth
    /// order — the moldable-job style of Cirne & Berman that the paper
    /// contrasts with ("possible processor configurations are specified by
    /// the user"). ReSHAPE still resizes along the list at runtime.
    Explicit { configs: Vec<ProcessorConfig> },
}

impl TopologyPref {
    /// The full ascending chain of configurations from `start`, capped at
    /// `max_procs` total processors. `start` itself is always the first
    /// element.
    ///
    /// ```
    /// use reshape_core::{ProcessorConfig, TopologyPref};
    /// // Paper Table 2, problem size 8000.
    /// let chain = TopologyPref::Grid { problem_size: 8000 }
    ///     .chain_from(ProcessorConfig::new(1, 2), 40);
    /// let strs: Vec<String> = chain.iter().map(|c| c.to_string()).collect();
    /// assert_eq!(strs, ["1x2", "2x2", "2x4", "4x4", "4x5", "5x5", "5x8"]);
    /// ```
    pub fn chain_from(&self, start: ProcessorConfig, max_procs: usize) -> Vec<ProcessorConfig> {
        let mut chain = vec![start];
        let mut cur = start;
        while let Some(next) = self.next_config(cur, max_procs) {
            chain.push(next);
            cur = next;
        }
        chain
    }

    /// The next configuration after `cur` in this preference's growth chain,
    /// if one exists within `max_procs`.
    pub fn next_config(&self, cur: ProcessorConfig, max_procs: usize) -> Option<ProcessorConfig> {
        match *self {
            TopologyPref::Grid { problem_size } => {
                let (r, c) = (cur.rows.min(cur.cols), cur.rows.max(cur.cols));
                let cand = if r < c {
                    // Grow the smallest dimension up to the larger one.
                    ProcessorConfig::new(c, c)
                } else {
                    // Square: push one dimension to the next divisor.
                    let next = next_divisor(problem_size, c)?;
                    ProcessorConfig::new(r, next)
                };
                (cand.procs() <= max_procs).then_some(cand)
            }
            TopologyPref::Linear {
                problem_size,
                even_only,
            } => {
                let mut n = cur.procs() + 1;
                while n <= max_procs {
                    if problem_size % n == 0 && (!even_only || n.is_multiple_of(2)) {
                        return Some(ProcessorConfig::linear(n));
                    }
                    n += 1;
                }
                None
            }
            TopologyPref::AnyCount { max, step, .. } => {
                let n = cur.procs() + step;
                (n <= max.min(max_procs)).then(|| ProcessorConfig::linear(n))
            }
            TopologyPref::Explicit { ref configs } => {
                let pos = configs.iter().position(|&c| c == cur)?;
                configs
                    .get(pos + 1)
                    .copied()
                    .filter(|c| c.procs() <= max_procs)
            }
        }
    }

    /// Whether `cfg` is legal for this preference (dimension divisibility,
    /// parity, range).
    pub fn is_legal(&self, cfg: ProcessorConfig) -> bool {
        match *self {
            TopologyPref::Grid { problem_size } => {
                problem_size % cfg.rows == 0 && problem_size % cfg.cols == 0
            }
            TopologyPref::Linear {
                problem_size,
                even_only,
            } => {
                cfg.rows == 1
                    && problem_size % cfg.cols == 0
                    && (!even_only || cfg.cols.is_multiple_of(2))
            }
            TopologyPref::AnyCount { min, max, step } => {
                cfg.rows == 1
                    && cfg.cols >= min
                    && cfg.cols <= max
                    && (cfg.cols - min).is_multiple_of(step)
            }
            TopologyPref::Explicit { ref configs } => configs.contains(&cfg),
        }
    }
}

fn next_divisor(n: usize, after: usize) -> Option<usize> {
    ((after + 1)..=n).find(|d| n.is_multiple_of(*d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_strings(pref: &TopologyPref, start: (usize, usize), max: usize) -> Vec<String> {
        pref.chain_from(ProcessorConfig::new(start.0, start.1), max)
            .iter()
            .map(|c| c.to_string())
            .collect()
    }

    #[test]
    fn table2_problem_size_8000() {
        // Paper Table 2: 8000 -> 1x2, 2x2, 2x4, 4x4, 4x5, 5x5, 5x8.
        let pref = TopologyPref::Grid { problem_size: 8000 };
        assert_eq!(
            chain_strings(&pref, (1, 2), 40),
            vec!["1x2", "2x2", "2x4", "4x4", "4x5", "5x5", "5x8"]
        );
    }

    #[test]
    fn table2_problem_size_12000() {
        // 12000 -> 1x2, 2x2, 2x3, 3x3, 3x4, 4x4, 4x5, 5x5, 5x6, 6x6, 6x8.
        let pref = TopologyPref::Grid {
            problem_size: 12000,
        };
        assert_eq!(
            chain_strings(&pref, (1, 2), 48),
            vec!["1x2", "2x2", "2x3", "3x3", "3x4", "4x4", "4x5", "5x5", "5x6", "6x6", "6x8"]
        );
    }

    #[test]
    fn table2_problem_size_14000() {
        // 14000 -> 2x2, 2x4, 4x4, 4x5, 5x5, 5x7, 7x7.
        let pref = TopologyPref::Grid {
            problem_size: 14000,
        };
        assert_eq!(
            chain_strings(&pref, (2, 2), 49),
            vec!["2x2", "2x4", "4x4", "4x5", "5x5", "5x7", "7x7"]
        );
    }

    #[test]
    fn table2_problem_size_16000_and_20000() {
        // Both: 2x2, 2x4, 4x4, 4x5, 5x5, 5x8 (capped at 40 procs).
        for ps in [16000usize, 20000] {
            let pref = TopologyPref::Grid { problem_size: ps };
            assert_eq!(
                chain_strings(&pref, (2, 2), 40),
                vec!["2x2", "2x4", "4x4", "4x5", "5x5", "5x8"],
                "problem size {ps}"
            );
        }
    }

    #[test]
    fn table2_problem_size_24000() {
        // Paper: 2x4, 3x4, 4x4, 4x5, 5x5, 5x6, 6x6, 6x8. Our regular rule
        // produces 2x4 -> 4x4 directly (the paper's 3x4 detour is an
        // irregularity of their table); the rest of the chain matches.
        let pref = TopologyPref::Grid {
            problem_size: 24000,
        };
        assert_eq!(
            chain_strings(&pref, (2, 4), 48),
            vec!["2x4", "4x4", "4x5", "5x5", "5x6", "6x6", "6x8"]
        );
    }

    #[test]
    fn table2_jacobi_8000() {
        // Paper: 4, 8, 10, 16, 20, 32, 40, 50 — even divisors of 8000.
        let pref = TopologyPref::Linear {
            problem_size: 8000,
            even_only: true,
        };
        let counts: Vec<usize> = pref
            .chain_from(ProcessorConfig::linear(4), 50)
            .iter()
            .map(|c| c.procs())
            .collect();
        assert_eq!(counts, vec![4, 8, 10, 16, 20, 32, 40, 50]);
    }

    #[test]
    fn table2_fft_8192() {
        // Paper: 2, 4, 8, 16, 32 — powers of two (even divisors of 8192).
        let pref = TopologyPref::Linear {
            problem_size: 8192,
            even_only: true,
        };
        let counts: Vec<usize> = pref
            .chain_from(ProcessorConfig::linear(2), 50)
            .iter()
            .map(|c| c.procs())
            .collect();
        assert_eq!(counts, vec![2, 4, 8, 16, 32]);
    }

    #[test]
    fn table2_master_worker() {
        // Paper: 4, 6, 8, ..., 22.
        let pref = TopologyPref::AnyCount {
            min: 4,
            max: 22,
            step: 2,
        };
        let counts: Vec<usize> = pref
            .chain_from(ProcessorConfig::linear(4), 50)
            .iter()
            .map(|c| c.procs())
            .collect();
        assert_eq!(counts, (2..=11).map(|k| 2 * k).collect::<Vec<_>>());
    }

    #[test]
    fn max_procs_caps_growth() {
        let pref = TopologyPref::Grid { problem_size: 8000 };
        let chain = pref.chain_from(ProcessorConfig::new(1, 2), 20);
        assert_eq!(chain.last().unwrap().to_string(), "4x5");
    }

    #[test]
    fn legality_checks() {
        let grid = TopologyPref::Grid { problem_size: 8000 };
        assert!(grid.is_legal(ProcessorConfig::new(4, 5)));
        assert!(!grid.is_legal(ProcessorConfig::new(3, 4))); // 3 ∤ 8000
        let lin = TopologyPref::Linear {
            problem_size: 8000,
            even_only: true,
        };
        assert!(lin.is_legal(ProcessorConfig::linear(10)));
        assert!(!lin.is_legal(ProcessorConfig::linear(25))); // odd
        assert!(!lin.is_legal(ProcessorConfig::new(2, 5))); // not 1-D
        let any = TopologyPref::AnyCount {
            min: 4,
            max: 22,
            step: 2,
        };
        assert!(any.is_legal(ProcessorConfig::linear(8)));
        assert!(!any.is_legal(ProcessorConfig::linear(7)));
        assert!(!any.is_legal(ProcessorConfig::linear(24)));
    }

    #[test]
    fn explicit_config_list_walks_in_order() {
        let pref = TopologyPref::Explicit {
            configs: vec![
                ProcessorConfig::new(1, 2),
                ProcessorConfig::new(2, 2),
                ProcessorConfig::new(2, 4),
            ],
        };
        let chain = pref.chain_from(ProcessorConfig::new(1, 2), 50);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[2], ProcessorConfig::new(2, 4));
        // Cap cuts the list.
        let capped = pref.chain_from(ProcessorConfig::new(1, 2), 4);
        assert_eq!(capped.len(), 2);
        // Legality is exact membership.
        assert!(pref.is_legal(ProcessorConfig::new(2, 2)));
        assert!(!pref.is_legal(ProcessorConfig::new(4, 4)));
        // A config off the list has no successor.
        assert_eq!(pref.next_config(ProcessorConfig::new(3, 3), 50), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(ProcessorConfig::new(4, 5).to_string(), "4x5");
        assert_eq!(ProcessorConfig::linear(8).to_string(), "1x8");
    }
}
