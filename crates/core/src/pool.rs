//! The processor resource pool: slot accounting for the Application
//! Scheduler ("selects the compute nodes, marks them as unavailable in the
//! resource pool").
//!
//! Slots may carry per-slot *speed factors* (paper §5 future work:
//! "support for heterogeneous clusters ... as individual plug-ins"): a
//! homogeneous pool has every factor at 1.0. Allocation can be speed-aware
//! (fastest free slots first — synchronous SPMD applications run at the
//! pace of their slowest processor, so concentrating fast slots matters)
//! or id-ordered (the homogeneous default, which keeps co-scheduled jobs
//! packed onto adjacent nodes).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// How `allocate` picks among free slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocOrder {
    /// Lowest-numbered free slots first (packs adjacent nodes).
    LowestId,
    /// Fastest free slots first (heterogeneity-aware; ties by id).
    FastestFirst,
}

/// A pool of processor slots. Native slots are identified `0..total`; slot
/// `s` lives on cluster node `s / slots_per_node` (the paper's nodes host 2
/// CPUs each).
///
/// Federated scheduling adds two cross-pool accounting states on top of
/// free/busy:
///
/// * **lent** — a native slot handed to another pool under a lease
///   ([`ResourcePool::lend`]). It counts neither free nor busy here until
///   [`ResourcePool::reattach`] brings it home.
/// * **borrowed** — a foreign processor attached under a lease
///   ([`ResourcePool::attach_foreign`]). Borrowed slots get fresh local ids
///   at a high-water mark `>= total` (ids are never reused, so a stale
///   reference can never alias a later lease) and count toward
///   [`ResourcePool::owned`] until detached.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourcePool {
    total: usize,
    free: BTreeSet<usize>,
    /// Relative speed of each slot (1.0 = nominal).
    speeds: Vec<f64>,
    order: AllocOrder,
    /// Native slots currently lent to another pool.
    lent: BTreeSet<usize>,
    /// Local ids of borrowed (foreign) slots currently attached.
    foreign: BTreeSet<usize>,
    /// Next local id minted for a borrowed slot; monotone, starts at
    /// `total`.
    next_foreign: usize,
}

impl ResourcePool {
    /// Homogeneous pool (every slot at speed 1.0, id-ordered allocation).
    pub fn new(total: usize) -> Self {
        ResourcePool {
            total,
            free: (0..total).collect(),
            speeds: vec![1.0; total],
            order: AllocOrder::LowestId,
            lent: BTreeSet::new(),
            foreign: BTreeSet::new(),
            next_foreign: total,
        }
    }

    /// Heterogeneous pool with per-slot speed factors; allocation hands out
    /// the fastest free slots first.
    pub fn new_heterogeneous(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty(), "empty pool");
        assert!(
            speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
            "speed factors must be positive and finite"
        );
        let total = speeds.len();
        ResourcePool {
            total,
            free: (0..total).collect(),
            speeds,
            order: AllocOrder::FastestFirst,
            lent: BTreeSet::new(),
            foreign: BTreeSet::new(),
            next_foreign: total,
        }
    }

    /// Override the allocation order (for placement ablations).
    pub fn with_order(mut self, order: AllocOrder) -> Self {
        self.order = order;
        self
    }

    /// Native capacity (slots this pool was created with), regardless of
    /// lending state.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Capacity this pool currently schedules over: native minus lent plus
    /// borrowed. Equal to [`ResourcePool::total`] when no leases are live.
    pub fn owned(&self) -> usize {
        self.total - self.lent.len() + self.foreign.len()
    }

    pub fn idle(&self) -> usize {
        self.free.len()
    }

    pub fn busy(&self) -> usize {
        self.owned() - self.free.len()
    }

    /// Native slots currently lent away, ascending.
    pub fn lent_slots(&self) -> Vec<usize> {
        self.lent.iter().copied().collect()
    }

    /// Local ids of borrowed slots currently attached, ascending.
    pub fn borrowed_slots(&self) -> Vec<usize> {
        self.foreign.iter().copied().collect()
    }

    /// How many foreign-slot local ids have ever been minted (the
    /// high-water mark minus `total`). Part of behavioral state: a
    /// recovered pool must mint the same ids the original would have.
    pub fn foreign_minted(&self) -> usize {
        self.next_foreign - self.total
    }

    /// Whether `slot` is currently owned by this pool (native and not
    /// lent, or an attached borrowed slot).
    pub fn is_owned(&self, slot: usize) -> bool {
        if slot < self.total {
            !self.lent.contains(&slot)
        } else {
            self.foreign.contains(&slot)
        }
    }

    /// Speed factor of a slot.
    pub fn speed(&self, slot: usize) -> f64 {
        self.speeds[slot]
    }

    /// All per-slot speed factors (1.0 everywhere on homogeneous pools).
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The pool's allocation order.
    pub fn order(&self) -> AllocOrder {
        self.order
    }

    /// The currently free slot ids, ascending.
    pub fn free_slots(&self) -> Vec<usize> {
        self.free.iter().copied().collect()
    }

    /// Allocate `n` slots according to the pool's order. Returns `None`
    /// without side effects if fewer than `n` are free.
    pub fn allocate(&mut self, n: usize) -> Option<Vec<usize>> {
        if self.free.len() < n {
            return None;
        }
        let slots: Vec<usize> = match self.order {
            AllocOrder::LowestId => self.free.iter().take(n).copied().collect(),
            AllocOrder::FastestFirst => {
                let mut all: Vec<usize> = self.free.iter().copied().collect();
                // Stable by id already; sort by descending speed, ties keep
                // id order.
                all.sort_by(|&a, &b| {
                    self.speeds[b]
                        .partial_cmp(&self.speeds[a])
                        .expect("finite speeds")
                        .then(a.cmp(&b))
                });
                all.truncate(n);
                all
            }
        };
        for s in &slots {
            self.free.remove(s);
        }
        Some(slots)
    }

    /// Return slots to the pool.
    ///
    /// # Panics
    ///
    /// Panics on double release or a slot the pool does not currently own
    /// (out of range, lent away, or a detached borrow) — all indicate
    /// scheduler bookkeeping bugs that must not be masked.
    pub fn release(&mut self, slots: &[usize]) {
        for &s in slots {
            assert!(self.is_owned(s), "slot {s} not owned by this pool");
            assert!(self.free.insert(s), "slot {s} double-released");
        }
    }

    /// Lend `n` idle slots to another pool: they are picked exactly like an
    /// allocation but marked *lent* instead of busy, so they count neither
    /// free nor busy until [`ResourcePool::reattach`]. Returns `None`
    /// without side effects if fewer than `n` are free.
    pub fn lend(&mut self, n: usize) -> Option<Vec<usize>> {
        let slots = self.allocate(n)?;
        for &s in &slots {
            self.lent.insert(s);
        }
        Some(slots)
    }

    /// Bring lent native slots home; they rejoin the free set.
    ///
    /// # Panics
    ///
    /// Panics if a slot is not currently lent — reclaiming a slot twice
    /// (or one never lent) is a lease-protocol bug.
    pub fn reattach(&mut self, slots: &[usize]) {
        for &s in slots {
            assert!(self.lent.remove(&s), "slot {s} not lent");
            assert!(self.free.insert(s), "slot {s} double-released");
        }
    }

    /// Attach `n` borrowed foreign slots, minting fresh local ids at the
    /// high-water mark (speed 1.0 — the federation's lease protocol is
    /// speed-agnostic). The new slots start free.
    pub fn attach_foreign(&mut self, n: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.next_foreign;
            self.next_foreign += 1;
            if self.speeds.len() <= id {
                self.speeds.resize(id + 1, 1.0);
            }
            self.foreign.insert(id);
            self.free.insert(id);
            out.push(id);
        }
        out
    }

    /// Detach one borrowed slot (lease expiry / release). The slot may be
    /// free (graceful detach) or held by a job the caller just evicted —
    /// either way it leaves the pool entirely. Returns whether it was free.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not an attached borrowed slot.
    pub fn detach_foreign_slot(&mut self, slot: usize) -> bool {
        assert!(self.foreign.remove(&slot), "slot {slot} not borrowed");
        self.free.remove(&slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut p = ResourcePool::new(8);
        assert_eq!(p.idle(), 8);
        let a = p.allocate(3).unwrap();
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!((p.idle(), p.busy()), (5, 3));
        let b = p.allocate(5).unwrap();
        assert_eq!(b, vec![3, 4, 5, 6, 7]);
        assert!(p.allocate(1).is_none());
        p.release(&a);
        assert_eq!(p.idle(), 3);
        // Freed slots are handed out again, lowest first.
        assert_eq!(p.allocate(2).unwrap(), vec![0, 1]);
    }

    #[test]
    fn failed_allocation_has_no_side_effects() {
        let mut p = ResourcePool::new(4);
        p.allocate(3).unwrap();
        assert!(p.allocate(2).is_none());
        assert_eq!(p.idle(), 1);
    }

    #[test]
    #[should_panic(expected = "double-released")]
    fn double_release_panics() {
        let mut p = ResourcePool::new(4);
        let a = p.allocate(1).unwrap();
        p.release(&a);
        p.release(&a);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn out_of_range_release_panics() {
        let mut p = ResourcePool::new(4);
        p.release(&[9]);
    }

    #[test]
    fn lend_removes_slots_from_both_free_and_busy() {
        let mut p = ResourcePool::new(8);
        let lent = p.lend(3).unwrap();
        assert_eq!(lent, vec![0, 1, 2]);
        assert_eq!((p.total(), p.owned(), p.idle(), p.busy()), (8, 5, 5, 0));
        assert!(!p.is_owned(0) && p.is_owned(3));
        // A lent slot cannot be released back while away.
        let a = p.allocate(5).unwrap();
        assert_eq!(a, vec![3, 4, 5, 6, 7]);
        assert!(p.allocate(1).is_none(), "lent slots are not allocatable");
        p.reattach(&lent);
        assert_eq!((p.owned(), p.idle(), p.busy()), (8, 3, 5));
        assert_eq!(p.allocate(3).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn releasing_a_lent_slot_panics() {
        let mut p = ResourcePool::new(4);
        p.lend(1).unwrap();
        p.release(&[0]);
    }

    #[test]
    #[should_panic(expected = "not lent")]
    fn double_reattach_panics() {
        let mut p = ResourcePool::new(4);
        let lent = p.lend(1).unwrap();
        p.reattach(&lent);
        p.reattach(&lent);
    }

    #[test]
    fn borrowed_slots_mint_monotone_ids() {
        let mut p = ResourcePool::new(4);
        let b1 = p.attach_foreign(2);
        assert_eq!(b1, vec![4, 5]);
        assert_eq!((p.total(), p.owned(), p.idle()), (4, 6, 6));
        assert!(p.is_owned(4));
        assert_eq!(p.speed(5), 1.0);
        // Detach one free, allocate across the native/borrowed boundary.
        assert!(p.detach_foreign_slot(4), "slot was free");
        assert_eq!(p.owned(), 5);
        let a = p.allocate(5).unwrap();
        assert_eq!(a, vec![0, 1, 2, 3, 5]);
        // Detaching a held slot reports it was not free.
        assert!(!p.detach_foreign_slot(5));
        assert_eq!((p.owned(), p.busy()), (4, 4));
        // Ids are never reused: the next attach mints fresh ones.
        assert_eq!(p.attach_foreign(1), vec![6]);
        assert_eq!(p.foreign_minted(), 3);
    }

    #[test]
    #[should_panic(expected = "not borrowed")]
    fn detaching_a_native_slot_panics() {
        let mut p = ResourcePool::new(4);
        p.detach_foreign_slot(2);
    }

    #[test]
    fn heterogeneous_allocation_prefers_fast_slots() {
        // Slots 2 and 5 are fast; they must be handed out first.
        let mut p = ResourcePool::new_heterogeneous(vec![1.0, 1.0, 2.0, 1.0, 0.5, 2.0]);
        let a = p.allocate(2).unwrap();
        assert_eq!(a, vec![2, 5]);
        // Next best: the 1.0 slots in id order.
        let b = p.allocate(3).unwrap();
        assert_eq!(b, vec![0, 1, 3]);
        // The slow slot is last.
        assert_eq!(p.allocate(1).unwrap(), vec![4]);
    }

    #[test]
    fn heterogeneous_release_and_reallocate() {
        let mut p = ResourcePool::new_heterogeneous(vec![0.5, 2.0, 1.0]);
        let a = p.allocate(3).unwrap();
        assert_eq!(a, vec![1, 2, 0]);
        p.release(&[1]);
        assert_eq!(p.allocate(1).unwrap(), vec![1], "fast slot reused first");
    }

    #[test]
    fn naive_order_ignores_speeds() {
        let mut p =
            ResourcePool::new_heterogeneous(vec![0.5, 2.0, 1.0]).with_order(AllocOrder::LowestId);
        assert_eq!(p.allocate(2).unwrap(), vec![0, 1]);
        assert_eq!(p.speed(0), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn invalid_speed_rejected() {
        ResourcePool::new_heterogeneous(vec![1.0, 0.0]);
    }
}
