//! The processor resource pool: slot accounting for the Application
//! Scheduler ("selects the compute nodes, marks them as unavailable in the
//! resource pool").
//!
//! Slots may carry per-slot *speed factors* (paper §5 future work:
//! "support for heterogeneous clusters ... as individual plug-ins"): a
//! homogeneous pool has every factor at 1.0. Allocation can be speed-aware
//! (fastest free slots first — synchronous SPMD applications run at the
//! pace of their slowest processor, so concentrating fast slots matters)
//! or id-ordered (the homogeneous default, which keeps co-scheduled jobs
//! packed onto adjacent nodes).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// How `allocate` picks among free slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocOrder {
    /// Lowest-numbered free slots first (packs adjacent nodes).
    LowestId,
    /// Fastest free slots first (heterogeneity-aware; ties by id).
    FastestFirst,
}

/// A pool of processor slots, identified `0..total`. Slot `s` lives on
/// cluster node `s / slots_per_node` (the paper's nodes host 2 CPUs each).
#[derive(Clone, Debug, PartialEq)]
pub struct ResourcePool {
    total: usize,
    free: BTreeSet<usize>,
    /// Relative speed of each slot (1.0 = nominal).
    speeds: Vec<f64>,
    order: AllocOrder,
}

impl ResourcePool {
    /// Homogeneous pool (every slot at speed 1.0, id-ordered allocation).
    pub fn new(total: usize) -> Self {
        ResourcePool {
            total,
            free: (0..total).collect(),
            speeds: vec![1.0; total],
            order: AllocOrder::LowestId,
        }
    }

    /// Heterogeneous pool with per-slot speed factors; allocation hands out
    /// the fastest free slots first.
    pub fn new_heterogeneous(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty(), "empty pool");
        assert!(
            speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
            "speed factors must be positive and finite"
        );
        ResourcePool {
            total: speeds.len(),
            free: (0..speeds.len()).collect(),
            speeds,
            order: AllocOrder::FastestFirst,
        }
    }

    /// Override the allocation order (for placement ablations).
    pub fn with_order(mut self, order: AllocOrder) -> Self {
        self.order = order;
        self
    }

    pub fn total(&self) -> usize {
        self.total
    }

    pub fn idle(&self) -> usize {
        self.free.len()
    }

    pub fn busy(&self) -> usize {
        self.total - self.free.len()
    }

    /// Speed factor of a slot.
    pub fn speed(&self, slot: usize) -> f64 {
        self.speeds[slot]
    }

    /// All per-slot speed factors (1.0 everywhere on homogeneous pools).
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The pool's allocation order.
    pub fn order(&self) -> AllocOrder {
        self.order
    }

    /// The currently free slot ids, ascending.
    pub fn free_slots(&self) -> Vec<usize> {
        self.free.iter().copied().collect()
    }

    /// Allocate `n` slots according to the pool's order. Returns `None`
    /// without side effects if fewer than `n` are free.
    pub fn allocate(&mut self, n: usize) -> Option<Vec<usize>> {
        if self.free.len() < n {
            return None;
        }
        let slots: Vec<usize> = match self.order {
            AllocOrder::LowestId => self.free.iter().take(n).copied().collect(),
            AllocOrder::FastestFirst => {
                let mut all: Vec<usize> = self.free.iter().copied().collect();
                // Stable by id already; sort by descending speed, ties keep
                // id order.
                all.sort_by(|&a, &b| {
                    self.speeds[b]
                        .partial_cmp(&self.speeds[a])
                        .expect("finite speeds")
                        .then(a.cmp(&b))
                });
                all.truncate(n);
                all
            }
        };
        for s in &slots {
            self.free.remove(s);
        }
        Some(slots)
    }

    /// Return slots to the pool.
    ///
    /// # Panics
    ///
    /// Panics on double release or an out-of-range slot — both indicate
    /// scheduler bookkeeping bugs that must not be masked.
    pub fn release(&mut self, slots: &[usize]) {
        for &s in slots {
            assert!(s < self.total, "slot {s} out of range");
            assert!(self.free.insert(s), "slot {s} double-released");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut p = ResourcePool::new(8);
        assert_eq!(p.idle(), 8);
        let a = p.allocate(3).unwrap();
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!((p.idle(), p.busy()), (5, 3));
        let b = p.allocate(5).unwrap();
        assert_eq!(b, vec![3, 4, 5, 6, 7]);
        assert!(p.allocate(1).is_none());
        p.release(&a);
        assert_eq!(p.idle(), 3);
        // Freed slots are handed out again, lowest first.
        assert_eq!(p.allocate(2).unwrap(), vec![0, 1]);
    }

    #[test]
    fn failed_allocation_has_no_side_effects() {
        let mut p = ResourcePool::new(4);
        p.allocate(3).unwrap();
        assert!(p.allocate(2).is_none());
        assert_eq!(p.idle(), 1);
    }

    #[test]
    #[should_panic(expected = "double-released")]
    fn double_release_panics() {
        let mut p = ResourcePool::new(4);
        let a = p.allocate(1).unwrap();
        p.release(&a);
        p.release(&a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_release_panics() {
        let mut p = ResourcePool::new(4);
        p.release(&[9]);
    }

    #[test]
    fn heterogeneous_allocation_prefers_fast_slots() {
        // Slots 2 and 5 are fast; they must be handed out first.
        let mut p = ResourcePool::new_heterogeneous(vec![1.0, 1.0, 2.0, 1.0, 0.5, 2.0]);
        let a = p.allocate(2).unwrap();
        assert_eq!(a, vec![2, 5]);
        // Next best: the 1.0 slots in id order.
        let b = p.allocate(3).unwrap();
        assert_eq!(b, vec![0, 1, 3]);
        // The slow slot is last.
        assert_eq!(p.allocate(1).unwrap(), vec![4]);
    }

    #[test]
    fn heterogeneous_release_and_reallocate() {
        let mut p = ResourcePool::new_heterogeneous(vec![0.5, 2.0, 1.0]);
        let a = p.allocate(3).unwrap();
        assert_eq!(a, vec![1, 2, 0]);
        p.release(&[1]);
        assert_eq!(p.allocate(1).unwrap(), vec![1], "fast slot reused first");
    }

    #[test]
    fn naive_order_ignores_speeds() {
        let mut p =
            ResourcePool::new_heterogeneous(vec![0.5, 2.0, 1.0]).with_order(AllocOrder::LowestId);
        assert_eq!(p.allocate(2).unwrap(), vec![0, 1]);
        assert_eq!(p.speed(0), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn invalid_speed_rejected() {
        ResourcePool::new_heterogeneous(vec![1.0, 0.0]);
    }
}
