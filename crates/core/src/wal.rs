//! Write-ahead log for [`SchedulerCore`](crate::SchedulerCore).
//!
//! The scheduler state machine is synchronous and deterministic: its entire
//! state is a pure function of the configuration it was built with and the
//! sequence of public transitions applied to it. Durability therefore takes
//! the classic command-logging form — every transition (`submit`,
//! `try_schedule`, `resize_point`, `on_finished`, `on_failed`,
//! `on_expand_failed`, `cancel`, reservations, clock ticks) is appended to a
//! checksummed record stream *before* it is applied, and
//! [`SchedulerCore::recover`](crate::SchedulerCore::recover) replays the
//! stream into a fresh core after a crash. Replay reproduces the pre-crash
//! state exactly (pool accounting, queue order, job records, profiler
//! history, the event trace, even the utilization integral).
//!
//! The on-disk format follows the telemetry journal: one JSON object per
//! line, `#[serde(tag = "type", rename_all = "snake_case")]`-tagged, here
//! prefixed with a CRC-32 of the JSON payload:
//!
//! ```text
//! 8c736521 {"type":"submit","spec":{...},"now":0.0}
//! ```
//!
//! A torn final line (the crash landed mid-append) is tolerated and dropped
//! on load; a checksum mismatch or garbage anywhere earlier is reported as
//! corruption — a WAL with a damaged interior cannot be trusted for replay.
//! The salvage loaders ([`Wal::load_salvage`], [`Wal::decode_salvage`])
//! instead recover the last-good prefix, quarantine the damaged remainder
//! (to `<path>.quarantine` for file-backed WALs), and report the truncation
//! in a [`WalSalvage`] so recovery can proceed with a shorter history
//! rather than none.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::core::{QueuePolicy, ReservationId};
use crate::job::{JobId, JobSpec};
use crate::policy::RemapPolicy;
use crate::pool::AllocOrder;
use crate::topology::ProcessorConfig;

/// One logged scheduler transition. The first record of every WAL is
/// [`WalRecord::Open`] (the core's configuration at attach time); every
/// subsequent record is a public [`SchedulerCore`](crate::SchedulerCore)
/// call with its arguments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum WalRecord {
    /// Genesis: everything needed to rebuild an empty core identical to the
    /// one the WAL was attached to.
    Open {
        total_procs: usize,
        policy: QueuePolicy,
        remap_policy: RemapPolicy,
        events_cap: usize,
        alloc_order: AllocOrder,
        /// Per-slot speed factors; `None` for homogeneous pools.
        #[serde(default)]
        slot_speeds: Option<Vec<f64>>,
    },
    Submit {
        spec: JobSpec,
        now: f64,
    },
    SubmitReserved {
        spec: JobSpec,
        reservation: ReservationId,
        now: f64,
    },
    TrySchedule {
        now: f64,
    },
    ResizePoint {
        job: JobId,
        iter_time: f64,
        redist_time: f64,
        now: f64,
    },
    PhaseChange {
        job: JobId,
        now: f64,
    },
    NoteRedist {
        job: JobId,
        from: ProcessorConfig,
        to: ProcessorConfig,
        seconds: f64,
    },
    Finished {
        job: JobId,
        now: f64,
    },
    Failed {
        job: JobId,
        reason: String,
        now: f64,
    },
    /// A node hosting part of the job died: only the dead slots are
    /// reclaimed and the job keeps running at the surviving configuration
    /// `to` (forced shrink, the survivability path).
    NodeFailed {
        job: JobId,
        dead_slots: Vec<usize>,
        to: ProcessorConfig,
        now: f64,
    },
    ExpandFailed {
        job: JobId,
        now: f64,
    },
    Cancel {
        job: JobId,
        now: f64,
    },
    Reserve {
        start: f64,
        end: f64,
        procs: usize,
    },
    CancelReservation {
        id: ReservationId,
    },
    /// A clock advance from a utilization query — it moves the busy-time
    /// integral, so exact-state recovery must replay it too.
    Tick {
        now: f64,
    },
    /// Federation lease, lender side: `slots` (picked deterministically by
    /// the pool order) left this pool under lease `lease`. They count
    /// neither free nor busy until the matching `lend_reclaim`.
    LendGrant {
        lease: u64,
        slots: Vec<usize>,
        now: f64,
    },
    /// Federation lease, lender side: the lease ended (borrower released it
    /// or the reclaim timeout fired) and its slots rejoined the pool.
    LendReclaim {
        lease: u64,
        now: f64,
    },
    /// Federation lease, borrower side: `global_slots` (federation-global
    /// processor ids, recorded for ledger audits) were attached under lease
    /// `lease`; the pool minted fresh local ids for them. `lender_epoch` is
    /// the lender's fencing epoch at grant time (0 in pre-epoch streams) —
    /// the partition oracle audits attaches against it.
    BorrowAttach {
        lease: u64,
        global_slots: Vec<usize>,
        #[serde(default)]
        lender_epoch: u64,
        now: f64,
    },
    /// Federation lease, borrower side: the lease expired or was released —
    /// jobs still holding its slots were force-shrunk off them (or failed
    /// if nothing remained) and every slot of the lease detached.
    BorrowEvict {
        lease: u64,
        now: f64,
    },
    /// Brownout control: expansion grants paused (`on = true`) or resumed.
    /// Shrinks and completions proceed regardless.
    PauseExpansion {
        on: bool,
        now: f64,
    },
    /// Partition fencing: the shard's monotonic fencing epoch advanced to
    /// `epoch` (a lender that lost contact with a borrower past the
    /// suspicion timeout bumps and refuses to honor leases minted under
    /// older epochs). Replay must restore the epoch exactly.
    EpochBump {
        epoch: u64,
        now: f64,
    },
    /// Anti-entropy heal: a post-partition reconciliation decision about
    /// `lease`, journaled explicitly before the repairing transition — no
    /// heal mutates state silently.
    HealRepair {
        lease: u64,
        action: HealAction,
        now: f64,
    },
}

/// What a post-partition reconciliation did to one lease.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum HealAction {
    /// The borrower evicted an attachment whose lease the lender fenced.
    EvictStaleBorrow,
    /// The lender reclaimed fenced escrow its borrower proved unattached.
    ReturnEscrow,
}

/// Why a WAL could not be loaded or replayed.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    /// A non-final line failed its checksum or did not parse. `line` is
    /// 1-based.
    Corrupt { line: usize, reason: String },
    /// The stream does not start with a usable [`WalRecord::Open`].
    BadGenesis(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::Corrupt { line, reason } => {
                write!(f, "WAL corrupt at line {line}: {reason}")
            }
            WalError::BadGenesis(why) => write!(f, "WAL genesis record invalid: {why}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

// CRC-32 (IEEE 802.3 polynomial), table built at compile time — the WAL
// must not pull in a checksum crate for one function.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of `data` (IEEE polynomial, as used by zip/png).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn encode_line(rec: &WalRecord) -> String {
    let json = serde_json::to_string(rec).expect("WAL records always serialize");
    format!("{:08x} {json}\n", crc32(json.as_bytes()))
}

fn decode_line(line: &str) -> Result<WalRecord, String> {
    let (crc_hex, json) = line
        .split_once(' ')
        .ok_or_else(|| "missing checksum field".to_string())?;
    let want = u32::from_str_radix(crc_hex, 16).map_err(|_| "bad checksum field".to_string())?;
    let got = crc32(json.as_bytes());
    if want != got {
        return Err(format!("checksum mismatch (stored {want:08x}, computed {got:08x})"));
    }
    serde_json::from_str(json).map_err(|e| format!("unparseable record: {e}"))
}

/// An append-only, checksummed record stream. Purely in-memory by default;
/// [`Wal::create`]/[`Wal::load`] back it with a file that is flushed on
/// every append (write-ahead: the record is durable before the transition's
/// effects are observable).
pub struct Wal {
    records: Vec<WalRecord>,
    file: Option<BufWriter<File>>,
    path: Option<PathBuf>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("records", &self.records.len())
            .field("path", &self.path)
            .finish()
    }
}

impl Wal {
    /// A WAL held only in memory (tests, simulators, crash-restart drills).
    pub fn in_memory() -> Self {
        Wal {
            records: Vec::new(),
            file: None,
            path: None,
        }
    }

    /// Create (truncate) a file-backed WAL at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Wal {
            records: Vec::new(),
            file: Some(BufWriter::new(file)),
            path: Some(path),
        })
    }

    /// Load an existing file-backed WAL for recovery and continued
    /// appending. A torn final line is truncated away; interior corruption
    /// is an error.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let (records, clean_len) = parse_stream(&text)?;
        // Drop any torn tail from the file so future appends start clean.
        if clean_len < text.len() {
            file.set_len(clean_len as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            records,
            file: Some(BufWriter::new(file)),
            path: Some(path),
        })
    }

    /// Parse an encoded stream (see [`Wal::encode`]) into an in-memory WAL.
    pub fn decode(text: &str) -> Result<Self, WalError> {
        let (records, _) = parse_stream(text)?;
        Ok(Wal {
            records,
            file: None,
            path: None,
        })
    }

    /// Parse an encoded stream, salvaging past interior corruption: the WAL
    /// keeps the last-good prefix and the damaged remainder is returned in
    /// the [`WalSalvage`] (`None` when the stream was clean). The torn-tail
    /// tolerance of [`Wal::decode`] is unchanged — a torn final line is
    /// dropped silently, not reported as salvage.
    pub fn decode_salvage(text: &str) -> (Self, Option<WalSalvage>) {
        let (records, clean_len, corrupt) = scan_stream(text);
        let salvage = corrupt.map(|(line, reason)| WalSalvage {
            line,
            reason,
            quarantined: text[clean_len..].to_string(),
            quarantine_path: None,
        });
        (
            Wal {
                records,
                file: None,
                path: None,
            },
            salvage,
        )
    }

    /// Load a file-backed WAL, salvaging past interior corruption: the
    /// corrupt remainder is written verbatim to `<path>.quarantine`, the
    /// WAL file is truncated to its last-good prefix (so future appends
    /// start clean), and the truncation is reported in the [`WalSalvage`].
    /// A clean stream (including one with only a torn tail) salvages
    /// nothing and behaves exactly like [`Wal::load`].
    pub fn load_salvage(path: impl AsRef<Path>) -> Result<(Self, Option<WalSalvage>), WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        let (records, clean_len, corrupt) = scan_stream(&text);
        let salvage = match corrupt {
            Some((line, reason)) => {
                let quarantined = text[clean_len..].to_string();
                let qpath = PathBuf::from(format!("{}.quarantine", path.display()));
                std::fs::write(&qpath, &quarantined)?;
                Some(WalSalvage {
                    line,
                    reason,
                    quarantined,
                    quarantine_path: Some(qpath),
                })
            }
            None => None,
        };
        // Drop the quarantined remainder and/or torn tail from the file so
        // future appends start clean.
        if clean_len < text.len() {
            file.set_len(clean_len as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                records,
                file: Some(BufWriter::new(file)),
                path: Some(path),
            },
            salvage,
        ))
    }

    /// The full stream in wire format (what a file-backed WAL would
    /// contain).
    pub fn encode(&self) -> String {
        self.records.iter().map(encode_line).collect()
    }

    /// Append one record; file-backed WALs write and flush before
    /// returning.
    ///
    /// # Panics
    ///
    /// Panics if the backing file cannot be written — a WAL that silently
    /// loses records is worse than no WAL.
    pub fn append(&mut self, rec: WalRecord) {
        if let Some(f) = self.file.as_mut() {
            f.write_all(encode_line(&rec).as_bytes())
                .and_then(|_| f.flush())
                .expect("WAL append failed");
        }
        self.records.push(rec);
    }

    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

/// Scan `text` into records. Returns the records of the clean prefix, the
/// byte length of that prefix (fully parsed, newline-terminated), and —
/// when an *interior* line failed its checksum or did not parse — the
/// 1-based line number and reason of the first corruption. A torn final
/// line (unterminated: the crash landed mid-append) is dropped silently
/// and is not corruption.
fn scan_stream(text: &str) -> (Vec<WalRecord>, usize, Option<(usize, String)>) {
    let mut records = Vec::new();
    let mut clean_len = 0usize;
    let mut offset = 0usize;
    for (idx, line) in text.split_inclusive('\n').enumerate() {
        let terminated = line.ends_with('\n');
        let body = line.trim_end_matches(['\n', '\r']);
        offset += line.len();
        if body.is_empty() {
            clean_len = offset;
            continue;
        }
        match decode_line(body) {
            Ok(rec) => {
                records.push(rec);
                clean_len = offset;
            }
            // Torn tail: the crash interrupted the final append. Drop it.
            Err(_) if !terminated => break,
            Err(reason) => return (records, clean_len, Some((idx + 1, reason))),
        }
    }
    (records, clean_len, None)
}

/// Parse `text` into records; returns the records and the byte length of
/// the clean (fully parsed, newline-terminated) prefix. Interior
/// corruption is an error — use the salvage loaders to recover the prefix
/// instead.
fn parse_stream(text: &str) -> Result<(Vec<WalRecord>, usize), WalError> {
    match scan_stream(text) {
        (records, clean_len, None) => Ok((records, clean_len)),
        (_, _, Some((line, reason))) => Err(WalError::Corrupt { line, reason }),
    }
}

/// What a salvage load recovered from a WAL with a corrupt interior: the
/// stream was truncated to its last-good prefix and the damaged remainder
/// quarantined (to `<path>.quarantine` for file-backed loads).
#[derive(Clone, Debug, PartialEq)]
pub struct WalSalvage {
    /// 1-based line number of the first corrupt record.
    pub line: usize,
    /// Why that line failed (checksum mismatch, unparseable record).
    pub reason: String,
    /// The corrupt remainder, verbatim — everything past the clean prefix.
    pub quarantined: String,
    /// Where the remainder was written (`<path>.quarantine`); `None` for
    /// in-memory salvage.
    pub quarantine_path: Option<PathBuf>,
}

/// A summary of WAL contents by record type, for diagnostics and tests.
pub fn record_histogram(records: &[WalRecord]) -> BTreeMap<&'static str, usize> {
    let mut h = BTreeMap::new();
    for r in records {
        let k = match r {
            WalRecord::Open { .. } => "open",
            WalRecord::Submit { .. } => "submit",
            WalRecord::SubmitReserved { .. } => "submit_reserved",
            WalRecord::TrySchedule { .. } => "try_schedule",
            WalRecord::ResizePoint { .. } => "resize_point",
            WalRecord::PhaseChange { .. } => "phase_change",
            WalRecord::NoteRedist { .. } => "note_redist",
            WalRecord::Finished { .. } => "finished",
            WalRecord::Failed { .. } => "failed",
            WalRecord::NodeFailed { .. } => "node_failed",
            WalRecord::ExpandFailed { .. } => "expand_failed",
            WalRecord::Cancel { .. } => "cancel",
            WalRecord::Reserve { .. } => "reserve",
            WalRecord::CancelReservation { .. } => "cancel_reservation",
            WalRecord::Tick { .. } => "tick",
            WalRecord::LendGrant { .. } => "lend_grant",
            WalRecord::LendReclaim { .. } => "lend_reclaim",
            WalRecord::BorrowAttach { .. } => "borrow_attach",
            WalRecord::BorrowEvict { .. } => "borrow_evict",
            WalRecord::PauseExpansion { .. } => "pause_expansion",
            WalRecord::EpochBump { .. } => "epoch_bump",
            WalRecord::HealRepair { .. } => "heal_repair",
        };
        *h.entry(k).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WalRecord> {
        vec![
            WalRecord::Open {
                total_procs: 8,
                policy: QueuePolicy::Fcfs,
                remap_policy: RemapPolicy::default(),
                events_cap: 1024,
                alloc_order: AllocOrder::LowestId,
                slot_speeds: None,
            },
            WalRecord::TrySchedule { now: 1.5 },
            WalRecord::Failed {
                job: JobId(3),
                reason: "node 2 crashed".into(),
                now: 9.25,
            },
            WalRecord::NodeFailed {
                job: JobId(4),
                dead_slots: vec![5, 6],
                to: ProcessorConfig::linear(2),
                now: 9.5,
            },
            WalRecord::Reserve {
                start: 10.0,
                end: 20.0,
                procs: 4,
            },
            WalRecord::LendGrant {
                lease: 7,
                slots: vec![0, 1],
                now: 11.0,
            },
            WalRecord::BorrowAttach {
                lease: 8,
                global_slots: vec![12, 13],
                lender_epoch: 2,
                now: 11.5,
            },
            WalRecord::BorrowEvict {
                lease: 8,
                now: 14.0,
            },
            WalRecord::LendReclaim {
                lease: 7,
                now: 15.0,
            },
            WalRecord::PauseExpansion { on: true, now: 16.0 },
            WalRecord::EpochBump { epoch: 3, now: 17.0 },
            WalRecord::HealRepair {
                lease: 8,
                action: HealAction::EvictStaleBorrow,
                now: 18.0,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_records() {
        let mut wal = Wal::in_memory();
        for r in sample() {
            wal.append(r);
        }
        let text = wal.encode();
        let back = Wal::decode(&text).expect("clean stream decodes");
        assert_eq!(back.records(), wal.records());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let mut wal = Wal::in_memory();
        for r in sample() {
            wal.append(r);
        }
        let text = wal.encode();
        // Chop the final record mid-line, as a crash during append would.
        let cut = text.len() - 10;
        let torn = &text[..cut];
        let back = Wal::decode(torn).expect("torn tail tolerated");
        assert_eq!(back.len(), wal.len() - 1);
        assert_eq!(back.records(), &wal.records()[..wal.len() - 1]);
    }

    #[test]
    fn interior_corruption_is_rejected() {
        let mut wal = Wal::in_memory();
        for r in sample() {
            wal.append(r);
        }
        let mut text = wal.encode();
        // Flip a byte inside the second line's JSON.
        let second_line_start = text.find('\n').unwrap() + 1;
        let pos = second_line_start + 12;
        unsafe { text.as_bytes_mut()[pos] ^= 0x01 };
        let err = Wal::decode(&text).expect_err("corruption must be detected");
        assert!(matches!(err, WalError::Corrupt { line: 2, .. }), "{err}");
    }

    #[test]
    fn file_backed_wal_survives_reload() {
        let dir = std::env::temp_dir().join(format!("reshape-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sched.wal");
        {
            let mut wal = Wal::create(&path).unwrap();
            for r in sample() {
                wal.append(r);
            }
        }
        // Simulate a torn append: write half a line at the end.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"deadbeef {\"type\":\"try_sch").unwrap();
        }
        let mut wal = Wal::load(&path).unwrap();
        assert_eq!(wal.len(), sample().len());
        // Appending after a torn-tail load produces a clean stream.
        wal.append(WalRecord::Tick { now: 42.0 });
        drop(wal);
        let again = Wal::load(&path).unwrap();
        assert_eq!(again.len(), sample().len() + 1);
        assert_eq!(
            again.records().last(),
            Some(&WalRecord::Tick { now: 42.0 })
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        // serde_json uses Ryu/Grisu shortest-representation printing, which
        // round-trips every finite f64 exactly — the recovery-equality
        // guarantee leans on this.
        let values = [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            123.456e-78,
        ];
        for v in values {
            let mut wal = Wal::in_memory();
            wal.append(WalRecord::Tick { now: v });
            let back = Wal::decode(&wal.encode()).unwrap();
            match back.records()[0] {
                WalRecord::Tick { now } => assert_eq!(now.to_bits(), v.to_bits()),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn salvage_recovers_prefix_and_reports_remainder() {
        let mut wal = Wal::in_memory();
        for r in sample() {
            wal.append(r);
        }
        let mut text = wal.encode();
        // Bit-flip inside the fourth line's JSON payload.
        let mut start = 0;
        for _ in 0..3 {
            start = text[start..].find('\n').unwrap() + start + 1;
        }
        unsafe { text.as_bytes_mut()[start + 15] ^= 0x40 };
        let (back, salvage) = Wal::decode_salvage(&text);
        let salvage = salvage.expect("corruption must be reported");
        assert_eq!(salvage.line, 4);
        assert!(salvage.reason.contains("checksum"), "{}", salvage.reason);
        assert_eq!(back.records(), &wal.records()[..3]);
        // Everything from the corrupt line onward is quarantined verbatim.
        assert_eq!(salvage.quarantined, &text[text.len() - salvage.quarantined.len()..]);
        assert!(salvage.quarantined.starts_with(&text[start..start + 8]));
        // A clean stream salvages nothing.
        let (clean, none) = Wal::decode_salvage(&wal.encode());
        assert!(none.is_none());
        assert_eq!(clean.records(), wal.records());
    }

    #[test]
    fn file_salvage_quarantines_and_truncates() {
        let dir =
            std::env::temp_dir().join(format!("reshape-wal-salvage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sched.wal");
        {
            let mut wal = Wal::create(&path).unwrap();
            for r in sample() {
                wal.append(r);
            }
        }
        // Flip one bit in the middle of the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();

        // Strict load refuses the damaged interior …
        assert!(matches!(Wal::load(&path), Err(WalError::Corrupt { .. })));

        // … salvage load recovers the prefix and quarantines the rest.
        let (mut wal, salvage) = Wal::load_salvage(&path).unwrap();
        let salvage = salvage.expect("bit flip must be reported");
        assert!(wal.len() < sample().len());
        assert_eq!(wal.records(), &sample()[..wal.len()]);
        let qpath = salvage.quarantine_path.clone().expect("file-backed quarantine");
        assert_eq!(std::fs::read_to_string(&qpath).unwrap(), salvage.quarantined);

        // The WAL file itself was truncated to the clean prefix and appends
        // continue from there; a strict reload now succeeds.
        wal.append(WalRecord::Tick { now: 99.0 });
        drop(wal);
        let again = Wal::load(&path).unwrap();
        assert_eq!(again.records().last(), Some(&WalRecord::Tick { now: 99.0 }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn histogram_counts_types() {
        let h = record_histogram(&sample());
        assert_eq!(h.get("open"), Some(&1));
        assert_eq!(h.get("try_schedule"), Some(&1));
        assert_eq!(h.get("failed"), Some(&1));
        assert_eq!(h.get("node_failed"), Some(&1));
        assert_eq!(h.get("reserve"), Some(&1));
    }
}
