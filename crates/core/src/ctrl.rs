//! Reliable delivery for the scheduler's control plane.
//!
//! The threaded runtime's drivers talk to the scheduler thread over a
//! message channel. In-process channels never lose messages, but the
//! paper's deployment has the resize library talking to the scheduler over
//! sockets — a control plane that can drop, duplicate or reorder. This
//! module wraps any `Clone + Send` message type in a sequenced
//! ack/retransmit protocol so exactly-once, in-order delivery survives an
//! unreliable link:
//!
//! * every message gets a monotonically increasing sequence number;
//! * the sender daemon keeps unacknowledged messages and retransmits the
//!   whole window every `retransmit_after` until acknowledged — control
//!   messages must eventually arrive;
//! * the receiver daemon delivers strictly in sequence order, buffering
//!   out-of-order arrivals and discarding duplicates, and acknowledges
//!   every frame it sees (acks are cumulative: acking `n` covers all
//!   `seq <= n`);
//! * an optional [`ChaosConfig`] makes the simulated wire lossy — a seeded
//!   deterministic fault stream drops, duplicates and reorders frames so
//!   tests can prove the protocol masks all three.
//!
//! The guarantee tests lean on: every message passed to
//! [`ReliableSender::send`] is delivered to the receiver **exactly once**,
//! in send order, no matter what the chaos stream does.
//!
//! **Causal tracing.** Trace propagation needs no support from this layer:
//! the runtime embeds a `TraceCtx` (trace id + parent span) inside the
//! message payload itself, so the context rides through loss, duplication
//! and reordering under the same exactly-once guarantee as the rest of the
//! message. The receiver re-establishes the sender's causal context
//! (`trace::ctx_guard`) before acting, which is what links driver-side
//! spans to the scheduler-side spans they cause across this channel.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Probabilities for the simulated unreliable wire. All in `[0, 1)`;
/// `seed` makes the fault stream deterministic.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Probability a frame is delivered twice.
    pub dup: f64,
    /// Probability a frame is held back and delivered after the next one.
    pub reorder: f64,
    pub seed: u64,
}

impl ChaosConfig {
    /// A heavily faulty wire for stress tests.
    pub fn heavy(seed: u64) -> Self {
        ChaosConfig {
            loss: 0.25,
            dup: 0.2,
            reorder: 0.2,
            seed,
        }
    }
}

/// Tuning for the reliable wrapper.
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// `None` models a perfect wire (protocol still runs, nothing to mask).
    pub chaos: Option<ChaosConfig>,
    /// How long an unacked frame waits before retransmission.
    pub retransmit_after: Duration,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            chaos: None,
            retransmit_after: Duration::from_millis(5),
        }
    }
}

impl ReliableConfig {
    pub fn with_chaos(chaos: ChaosConfig) -> Self {
        ReliableConfig {
            chaos: Some(chaos),
            ..Default::default()
        }
    }
}

/// SplitMix64 — the same tiny deterministic generator the testkit uses,
/// reimplemented here because `reshape-core` must not depend on the
/// testkit.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

struct Frame<T> {
    seq: u64,
    payload: T,
}

/// Sending half of a reliable channel. Cloneable; drop every clone to shut
/// the channel down (pending messages are still retransmitted until
/// acknowledged).
pub struct ReliableSender<T> {
    tx: Sender<Frame<T>>,
    next_seq: Arc<AtomicU64>,
}

impl<T> Clone for ReliableSender<T> {
    fn clone(&self) -> Self {
        ReliableSender {
            tx: self.tx.clone(),
            next_seq: Arc::clone(&self.next_seq),
        }
    }
}

impl<T> ReliableSender<T> {
    /// Queue a message for exactly-once, in-order delivery. Returns `Err`
    /// only when the receiving side is gone entirely.
    pub fn send(&self, payload: T) -> Result<(), T> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Frame { seq, payload })
            .map_err(|e| e.0.payload)
    }
}

/// Build a reliable channel: messages sent on the [`ReliableSender`] come
/// out of the returned `Receiver` exactly once and in order, even when
/// `cfg.chaos` makes the simulated wire lose, duplicate or reorder frames.
/// The two daemon threads exit on their own once all senders are dropped
/// and everything in flight is acknowledged.
pub fn reliable_channel<T: Clone + Send + 'static>(
    cfg: ReliableConfig,
) -> (ReliableSender<T>, Receiver<T>) {
    let (in_tx, in_rx) = unbounded::<Frame<T>>();
    let (wire_tx, wire_rx) = unbounded::<Frame<T>>();
    let (ack_tx, ack_rx) = unbounded::<u64>();
    let (out_tx, out_rx) = unbounded::<T>();

    // Sender daemon: owns the unacked window, applies chaos to every
    // transmission, retransmits on timeout.
    std::thread::Builder::new()
        .name("reshape-ctrl-send".into())
        .spawn(move || {
            let mut rng = Rng(cfg.chaos.map(|c| c.seed).unwrap_or(0));
            // A frame held back by the reorder fault, delivered after the
            // next transmission.
            let mut held: Option<Frame<T>> = None;
            let mut transmit = |frame: &Frame<T>, held: &mut Option<Frame<T>>| {
                let chaos = match cfg.chaos {
                    Some(c) => c,
                    None => {
                        let _ = wire_tx.send(Frame {
                            seq: frame.seq,
                            payload: frame.payload.clone(),
                        });
                        return;
                    }
                };
                if rng.chance(chaos.loss) {
                    reshape_telemetry::incr("ctrl.frames_lost", 1);
                } else {
                    let copies = if rng.chance(chaos.dup) {
                        reshape_telemetry::incr("ctrl.frames_duped", 1);
                        2
                    } else {
                        1
                    };
                    if rng.chance(chaos.reorder) && held.is_none() {
                        reshape_telemetry::incr("ctrl.frames_reordered", 1);
                        *held = Some(Frame {
                            seq: frame.seq,
                            payload: frame.payload.clone(),
                        });
                    } else {
                        for _ in 0..copies {
                            let _ = wire_tx.send(Frame {
                                seq: frame.seq,
                                payload: frame.payload.clone(),
                            });
                        }
                    }
                }
                // Anything held back goes out after this frame.
                if let Some(h) = held.take() {
                    let _ = wire_tx.send(h);
                }
            };

            let mut unacked: BTreeMap<u64, T> = BTreeMap::new();
            let mut inputs_open = true;
            loop {
                // Drain acknowledgments first; they are what lets us stop.
                while let Ok(acked) = ack_rx.try_recv() {
                    unacked.retain(|&s, _| s > acked);
                }
                if !inputs_open && unacked.is_empty() {
                    // Flush a reorder-held frame even though nothing new
                    // will push it out (it is already acked or about to be
                    // retransmitted anyway, but do not strand it).
                    if let Some(h) = held.take() {
                        let _ = wire_tx.send(h);
                    }
                    break;
                }
                match in_rx.recv_timeout(cfg.retransmit_after) {
                    Ok(frame) => {
                        unacked.insert(frame.seq, frame.payload.clone());
                        transmit(&frame, &mut held);
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        // Retransmit the full unacked window.
                        if !unacked.is_empty() {
                            reshape_telemetry::incr(
                                "ctrl.retransmits",
                                unacked.len() as u64,
                            );
                        }
                        for (&seq, payload) in &unacked {
                            transmit(
                                &Frame {
                                    seq,
                                    payload: payload.clone(),
                                },
                                &mut held,
                            );
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        inputs_open = false;
                        if unacked.is_empty() {
                            break;
                        }
                        // Keep retransmitting until everything is acked.
                        for (&seq, payload) in &unacked {
                            transmit(
                                &Frame {
                                    seq,
                                    payload: payload.clone(),
                                },
                                &mut held,
                            );
                        }
                        std::thread::sleep(cfg.retransmit_after);
                    }
                }
            }
        })
        .expect("spawn ctrl sender daemon");

    // Receiver daemon: in-order delivery with dedup, cumulative acks.
    std::thread::Builder::new()
        .name("reshape-ctrl-recv".into())
        .spawn(move || {
            let mut next_expected = 0u64;
            let mut pending: BTreeMap<u64, T> = BTreeMap::new();
            while let Ok(frame) = wire_rx.recv() {
                if frame.seq >= next_expected {
                    pending.entry(frame.seq).or_insert(frame.payload);
                } else {
                    reshape_telemetry::incr("ctrl.duplicates_discarded", 1);
                }
                while let Some(payload) = pending.remove(&next_expected) {
                    if out_tx.send(payload).is_err() {
                        return; // consumer gone; stop delivering
                    }
                    next_expected += 1;
                }
                // Cumulative ack: everything below next_expected arrived.
                if next_expected > 0 {
                    let _ = ack_tx.send(next_expected - 1);
                }
            }
        })
        .expect("spawn ctrl receiver daemon");

    (
        ReliableSender {
            tx: in_tx,
            next_seq: Arc::new(AtomicU64::new(0)),
        },
        out_rx,
    )
}

pub mod seq {
    //! Thread-free, virtual-time counterparts of the reliable channel above.
    //!
    //! The threaded [`reliable_channel`](super::reliable_channel) daemons
    //! use wall-clock timeouts, which makes them useless inside a
    //! discrete-event simulation. [`SeqSender`] and [`SeqReceiver`] are the
    //! same sequenced ack/retransmit protocol factored into pure state
    //! machines: the caller owns the clock, the wire, and the event loop —
    //! it asks the sender what is due at a virtual time, carries frames
    //! across whatever (chaotic) wire it models, and feeds them to the
    //! receiver, which hands back in-order payloads plus a cumulative ack.
    //! The federation's lease control plane drives its shard-to-shard bus
    //! with exactly these machines, so grant/ack/release survive loss,
    //! duplication and reordering deterministically.

    use std::collections::BTreeMap;

    use crate::backoff::Backoff;

    /// One wire frame: a sequence number and the payload.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Frame<T> {
        pub seq: u64,
        pub payload: T,
    }

    /// Sending half: owns the unacked window and the retransmit deadline.
    /// Retransmit pacing follows a [`Backoff`] schedule — [`SeqSender::new`]
    /// uses the classic fixed RTO ([`Backoff::fixed`]), while
    /// [`SeqSender::with_backoff`] spaces consecutive retransmits of the
    /// same window exponentially (attempts reset whenever an ack makes
    /// progress).
    #[derive(Clone, Debug)]
    pub struct SeqSender<T> {
        next_seq: u64,
        unacked: BTreeMap<u64, T>,
        backoff: Backoff,
        /// Jitter key for the backoff schedule (e.g. a link id).
        key: u64,
        /// Retransmit attempt for the current window, 1-based; advances on
        /// every timer fire, resets to 1 when an ack makes progress.
        attempt: usize,
        deadline: Option<f64>,
    }

    impl<T: Clone> SeqSender<T> {
        /// `rto`: virtual seconds before an unacked frame is retransmitted
        /// (a fixed-interval schedule; see [`SeqSender::with_backoff`] for
        /// exponential pacing).
        pub fn new(rto: f64) -> Self {
            Self::with_backoff(Backoff::fixed(rto), 0)
        }

        /// A sender whose retransmit timer follows `backoff`, jittered by
        /// `key` (so parallel links with the same schedule de-synchronize
        /// deterministically).
        pub fn with_backoff(backoff: Backoff, key: u64) -> Self {
            assert!(
                backoff.base > 0.0 && backoff.base.is_finite(),
                "backoff base must be positive"
            );
            SeqSender {
                next_seq: 0,
                unacked: BTreeMap::new(),
                backoff,
                key,
                attempt: 1,
                deadline: None,
            }
        }

        /// Assign the next sequence number, remember the payload until it
        /// is acked, and return the frame to put on the wire now.
        pub fn send(&mut self, now: f64, payload: T) -> Frame<T> {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.unacked.insert(seq, payload.clone());
            if self.deadline.is_none() {
                self.attempt = 1;
                self.deadline = Some(now + self.backoff.delay(self.key, 1));
            }
            Frame { seq, payload }
        }

        /// A cumulative ack arrived: everything `<= cum` is delivered.
        pub fn on_ack(&mut self, cum: u64) {
            let before = self.unacked.len();
            self.unacked.retain(|&s, _| s > cum);
            if self.unacked.is_empty() {
                self.deadline = None;
            }
            if self.unacked.len() < before {
                // Progress: the wire works again, restart the schedule.
                self.attempt = 1;
            }
        }

        /// Frames to retransmit at virtual time `now` (the whole unacked
        /// window once the deadline passes; empty otherwise). Advances the
        /// deadline along the backoff schedule, so the caller just re-polls
        /// at [`SeqSender::next_deadline`].
        pub fn due(&mut self, now: f64) -> Vec<Frame<T>> {
            match self.deadline {
                Some(d) if now >= d && !self.unacked.is_empty() => {
                    self.attempt += 1;
                    self.deadline = Some(now + self.backoff.delay(self.key, self.attempt));
                    self.unacked
                        .iter()
                        .map(|(&seq, payload)| Frame {
                            seq,
                            payload: payload.clone(),
                        })
                        .collect()
                }
                _ => Vec::new(),
            }
        }

        /// When the caller should next call [`SeqSender::due`]; `None`
        /// while nothing is unacked.
        pub fn next_deadline(&self) -> Option<f64> {
            self.deadline
        }

        /// Unacked frames in flight.
        pub fn pending(&self) -> usize {
            self.unacked.len()
        }
    }

    /// Receiving half: in-order delivery with dedup, cumulative acks.
    #[derive(Clone, Debug, Default)]
    pub struct SeqReceiver<T> {
        next_expected: u64,
        pending: BTreeMap<u64, T>,
    }

    impl<T> SeqReceiver<T> {
        pub fn new() -> Self {
            SeqReceiver {
                next_expected: 0,
                pending: BTreeMap::new(),
            }
        }

        /// Feed one frame off the wire. Returns the payloads now
        /// deliverable in order (possibly none, possibly several if this
        /// frame filled a gap) and the cumulative ack to send back
        /// (`None` only before anything has been delivered).
        pub fn on_frame(&mut self, frame: Frame<T>) -> (Vec<T>, Option<u64>) {
            if frame.seq >= self.next_expected {
                self.pending.entry(frame.seq).or_insert(frame.payload);
            }
            let mut out = Vec::new();
            while let Some(payload) = self.pending.remove(&self.next_expected) {
                out.push(payload);
                self.next_expected += 1;
            }
            (out, self.next_expected.checked_sub(1))
        }

        /// Frames delivered so far.
        pub fn delivered(&self) -> u64 {
            self.next_expected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_wire_delivers_in_order() {
        let (tx, rx) = reliable_channel::<u32>(ReliableConfig::default());
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), i);
        }
    }

    #[test]
    fn heavy_chaos_still_delivers_exactly_once_in_order() {
        for seed in [1u64, 7, 42, 9001] {
            let cfg = ReliableConfig {
                chaos: Some(ChaosConfig::heavy(seed)),
                retransmit_after: Duration::from_millis(2),
            };
            let (tx, rx) = reliable_channel::<u64>(cfg);
            const N: u64 = 500;
            let producer = std::thread::spawn(move || {
                for i in 0..N {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..N {
                let got = rx
                    .recv_timeout(Duration::from_secs(30))
                    .unwrap_or_else(|_| panic!("seed {seed}: message {i} never arrived"));
                assert_eq!(got, i, "seed {seed}: out of order or duplicated");
            }
            producer.join().unwrap();
            // Nothing extra may trickle in: exactly once.
            assert!(
                rx.recv_timeout(Duration::from_millis(50)).is_err(),
                "seed {seed}: duplicate delivery after the stream"
            );
        }
    }

    #[test]
    fn seq_machines_mask_chaos_deterministically() {
        use super::seq::{Frame, SeqReceiver, SeqSender};
        // Drive the pure state machines through a seeded chaotic wire in
        // virtual time: drop every third transmission, duplicate every
        // fourth, and deliver the rest; retransmits must fill every hole
        // and the receiver must emit 0..N exactly once, in order.
        let mut tx = SeqSender::new(1.0);
        let mut rx: SeqReceiver<u64> = SeqReceiver::new();
        let mut rng = Rng(42);
        let mut wire: Vec<Frame<u64>> = Vec::new();
        for i in 0..50u64 {
            wire.push(tx.send(i as f64 * 0.1, i));
        }
        let mut delivered = Vec::new();
        let mut now = 5.0;
        let mut rounds = 0;
        while tx.pending() > 0 {
            rounds += 1;
            assert!(rounds < 1000, "protocol did not converge");
            let mut acks = Vec::new();
            for f in wire.drain(..) {
                if rng.chance(0.33) {
                    continue; // lost
                }
                let copies = if rng.chance(0.25) { 2 } else { 1 };
                for _ in 0..copies {
                    let (out, ack) = rx.on_frame(f.clone());
                    delivered.extend(out);
                    if let Some(a) = ack {
                        acks.push(a);
                    }
                }
            }
            for a in acks {
                if rng.chance(0.33) {
                    continue; // ack lost: cumulative acks make this safe
                }
                tx.on_ack(a);
            }
            now += 1.0;
            wire = tx.due(now);
        }
        assert_eq!(delivered, (0..50).collect::<Vec<u64>>());
        assert_eq!(rx.delivered(), 50);
        assert_eq!(tx.next_deadline(), None);
    }

    #[test]
    fn seq_sender_backoff_spaces_retransmits_exponentially() {
        use super::seq::SeqSender;
        use crate::backoff::Backoff;
        let schedule = Backoff {
            base: 1.0,
            factor: 2.0,
            max: 8.0,
            jitter_frac: 0.0,
        };
        let mut tx = SeqSender::with_backoff(schedule, 7);
        tx.send(0.0, "x");
        // First deadline is base; each unanswered fire doubles the spacing
        // up to the cap.
        let mut expected = 0.0;
        for delay in [1.0, 2.0, 4.0, 8.0, 8.0] {
            expected += delay;
            assert_eq!(tx.next_deadline(), Some(expected));
            assert_eq!(tx.due(expected).len(), 1);
        }
        // Ack progress resets the schedule for the next window.
        tx.on_ack(0);
        assert_eq!(tx.next_deadline(), None);
        tx.send(100.0, "y");
        assert_eq!(tx.next_deadline(), Some(101.0));
        // The fixed-RTO constructor is the degenerate schedule: deadlines
        // never stretch.
        let mut fixed = SeqSender::new(1.5);
        fixed.send(0.0, "z");
        for i in 1..=4 {
            assert_eq!(fixed.next_deadline(), Some(i as f64 * 1.5));
            assert_eq!(fixed.due(i as f64 * 1.5).len(), 1);
        }
    }

    #[test]
    fn seq_receiver_reorders_and_dedups() {
        use super::seq::{Frame, SeqReceiver};
        let mut rx: SeqReceiver<&str> = SeqReceiver::new();
        let (out, ack) = rx.on_frame(Frame { seq: 2, payload: "c" });
        assert!(out.is_empty() && ack.is_none());
        let (out, ack) = rx.on_frame(Frame { seq: 0, payload: "a" });
        assert_eq!(out, vec!["a"]);
        assert_eq!(ack, Some(0));
        // Duplicate of an already-delivered frame re-acks, delivers nothing.
        let (out, ack) = rx.on_frame(Frame { seq: 0, payload: "a" });
        assert!(out.is_empty());
        assert_eq!(ack, Some(0));
        let (out, ack) = rx.on_frame(Frame { seq: 1, payload: "b" });
        assert_eq!(out, vec!["b", "c"], "gap fill flushes the buffer");
        assert_eq!(ack, Some(2));
    }

    #[test]
    fn dropping_sender_shuts_the_channel_down() {
        let (tx, rx) = reliable_channel::<u8>(ReliableConfig::default());
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 9);
        // After the daemons wind down the receiver disconnects.
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }
}
