//! # reshape-core — the ReSHAPE framework
//!
//! A Rust reproduction of the scheduling framework of *ReSHAPE: A Framework
//! for Dynamic Resizing and Scheduling of Homogeneous Applications in a
//! Parallel Environment* (Sudarsan & Ribbens, ICPP 2007). It contains the
//! two components of the paper's Figure 1(a):
//!
//! 1. **Application scheduling and monitoring** — [`SchedulerCore`] (queue +
//!    FCFS/backfill allocation + Remap Scheduler policy + Performance
//!    Profiler) and, in real-execution mode, the [`runtime`] module's
//!    scheduler thread, System Monitor and Job Startup.
//! 2. **The resizing library and API** — the [`driver`] module: the
//!    [`driver::ResizeContext`] API (`log`, `resize`, plus the advanced
//!    `contact_scheduler` / `expand_processors` / `shrink_processors` /
//!    `redistribute` entry points) and [`driver::run_resizable`], which
//!    turns an iterate closure over distributed matrices into a fully
//!    resizable application.
//!
//! The scheduler state machine is synchronous and time-stamped, so the same
//! policy code drives both the threaded real runtime here and the
//! discrete-event simulator in `reshape-clustersim`.

pub mod backoff;
mod core;
pub mod ctrl;
pub mod driver;
mod job;
mod policy;
mod pool;
mod profiler;
pub mod runtime;
mod topology;
pub mod wal;

pub use crate::core::{
    BorrowedLease, CoreSnapshot, Directive, EventKind, EvictOutcome, JobRecord, QueuePolicy,
    Reservation, ReservationId, SchedEvent, SchedulerCore, StartAction,
};
pub use backoff::Backoff;
pub use wal::{HealAction, Wal, WalError, WalRecord, WalSalvage};
pub use job::{JobId, JobSpec, JobState};
pub use policy::{decide, decide_with, RemapDecision, RemapPolicy, SystemSnapshot};
pub use pool::{AllocOrder, ResourcePool};
pub use profiler::{JobProfile, PerfRecord, Profiler, Resize, ShrinkPoint};
pub use topology::{ProcessorConfig, TopologyPref};
