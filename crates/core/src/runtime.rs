//! Real-execution mode: the scheduler as a live service.
//!
//! The paper's "application scheduling and monitoring module" runs five
//! components, each on its own thread. Here:
//!
//! * the **scheduler thread** combines the Application Scheduler, Remap
//!   Scheduler and Performance Profiler (all state lives in
//!   [`SchedulerCore`]) and also plays **Job Startup**: when the core says a
//!   queued job can run, the thread launches its process group on the
//!   simulated cluster;
//! * the **System Monitor thread** subscribes to process lifecycle events
//!   from the [`Universe`] and reclaims the resources of failed jobs;
//! * the optional **watchdog thread** supervises per-job heartbeats (one
//!   per resize point) and declares jobs that miss their deadline hung,
//!   killing them through the scheduler and optionally requeueing them;
//! * applications talk to the scheduler through a [`SchedulerLink`]
//!   implemented over channels — and, like the paper's socket protocol
//!   between the resize library and the scheduler, the channel is wrapped
//!   in the sequenced ack/retransmit protocol of [`crate::ctrl`], so
//!   control messages survive a lossy wire exactly once and in order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use reshape_mpisim::{NodeId, ProcId, ProcStatus, Universe};
use reshape_telemetry::trace::{self, TraceCtx};

use crate::core::{Directive, QueuePolicy, SchedEvent, SchedulerCore, StartAction};
use crate::ctrl::{reliable_channel, ReliableConfig, ReliableSender};
use crate::driver::{run_resizable, AppDef, DriverShared, RetryPolicy, SchedulerLink};
use crate::job::{JobId, JobSpec, JobState};
use crate::topology::ProcessorConfig;

#[derive(Clone)]
enum Msg {
    Submit {
        spec: JobSpec,
        app: AppDef,
        reply: Sender<JobId>,
    },
    ResizePoint {
        job: JobId,
        iter_time: f64,
        redist_time: f64,
        now: f64,
        /// Causal trace context of the sender (the driver's current span),
        /// so the scheduler's decision span parents to the application
        /// iteration that triggered it — across the sequenced channel.
        ctx: TraceCtx,
        reply: Sender<Directive>,
    },
    NoteRedist {
        job: JobId,
        from: ProcessorConfig,
        to: ProcessorConfig,
        seconds: f64,
    },
    Finished {
        job: JobId,
        now: f64,
        ctx: TraceCtx,
    },
    PhaseChange {
        job: JobId,
        now: f64,
    },
    Cancel {
        job: JobId,
    },
    Failed {
        job: JobId,
        reason: String,
        now: f64,
        ctx: TraceCtx,
    },
    /// A survivable job lost ranks to a node failure but recovered in
    /// place; only the dead ranks' slots should be reclaimed.
    NodeFailed {
        job: JobId,
        dead_ranks: Vec<usize>,
        to: ProcessorConfig,
        now: f64,
        ctx: TraceCtx,
    },
    ExpandFailed {
        job: JobId,
        now: f64,
        ctx: TraceCtx,
    },
    /// Watchdog verdict: `job` missed its heartbeat deadline. Revalidated
    /// on the scheduler thread before acting.
    Hung {
        job: JobId,
    },
    Shutdown,
}

/// Channel-backed [`SchedulerLink`] handed to application processes.
struct RuntimeLink {
    tx: ReliableSender<Msg>,
}

impl SchedulerLink for RuntimeLink {
    fn resize_point(&self, job: JobId, iter_time: f64, redist_time: f64, now: f64) -> Directive {
        let (reply, rx) = unbounded();
        let sent = self
            .tx
            .send(Msg::ResizePoint {
                job,
                iter_time,
                redist_time,
                now,
                ctx: trace::current(),
                reply,
            })
            .is_ok();
        assert!(sent, "scheduler thread alive");
        rx.recv().expect("scheduler replies to resize points")
    }

    fn note_redist(&self, job: JobId, from: ProcessorConfig, to: ProcessorConfig, seconds: f64) {
        let _ = self.tx.send(Msg::NoteRedist {
            job,
            from,
            to,
            seconds,
        });
    }

    fn finished(&self, job: JobId, now: f64) {
        let _ = self.tx.send(Msg::Finished {
            job,
            now,
            ctx: trace::current(),
        });
    }

    fn phase_change(&self, job: JobId, now: f64) {
        let _ = self.tx.send(Msg::PhaseChange { job, now });
    }

    fn expand_failed(&self, job: JobId, _to: ProcessorConfig, now: f64) {
        let _ = self.tx.send(Msg::ExpandFailed {
            job,
            now,
            ctx: trace::current(),
        });
    }

    fn node_failed(&self, job: JobId, dead_ranks: &[usize], to: ProcessorConfig, now: f64) {
        let _ = self.tx.send(Msg::NodeFailed {
            job,
            dead_ranks: dead_ranks.to_vec(),
            to,
            now,
            ctx: trace::current(),
        });
    }

    fn failed(&self, job: JobId, reason: &str, now: f64) {
        let _ = self.tx.send(Msg::Failed {
            job,
            reason: reason.to_string(),
            now,
            ctx: trace::current(),
        });
    }
}

/// Hung-job watchdog tuning. A job "heartbeats" every time its resize
/// point reaches the scheduler; the watchdog thread declares it hung when
/// no heartbeat arrives within `grace + multiplier × (observed mean
/// inter-heartbeat gap)` of wall time, kills it through the scheduler
/// (reclaiming its processors like any failure), and optionally requeues
/// it as a fresh submission whose initial allocation is capped at the
/// job's last-known-good configuration.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// How often the watchdog scans for missed heartbeats.
    pub check_interval: Duration,
    /// Fixed slack added to every deadline (covers startup and resize
    /// pauses before the first heartbeats establish a rhythm).
    pub grace: Duration,
    /// Deadline multiplier over the observed mean heartbeat gap.
    pub multiplier: f64,
    /// Resubmit a killed job automatically.
    pub requeue: bool,
    /// How many times one job may be requeued (chained across respawns).
    pub max_requeues: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            check_interval: Duration::from_millis(25),
            grace: Duration::from_secs(1),
            multiplier: 4.0,
            requeue: false,
            max_requeues: 1,
        }
    }
}

/// Full configuration for [`ReshapeRuntime::with_runtime_options`].
#[derive(Clone)]
pub struct RuntimeOptions {
    pub policy: QueuePolicy,
    /// Fold real wall-clock compute time of each iteration into the
    /// virtual clock (for measurement runs).
    pub fold_wall_time: bool,
    /// Spawn-shortfall retry behavior handed to every job's driver.
    pub retry: RetryPolicy,
    /// Hung-job supervision; `None` disables the watchdog thread.
    pub watchdog: Option<WatchdogConfig>,
    /// Reliability/chaos settings for the scheduler↔driver control
    /// channel. The default is a perfect wire (the protocol still runs).
    pub ctrl: ReliableConfig,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            policy: QueuePolicy::Fcfs,
            fold_wall_time: false,
            retry: RetryPolicy::default(),
            watchdog: None,
            ctrl: ReliableConfig::default(),
        }
    }
}

/// Timeout from [`ReshapeRuntime::wait_quiescent`] /
/// [`ReshapeRuntime::wait_for`]: the awaited condition did not hold in
/// time. Carries what was being waited on so callers can build a useful
/// panic or retry message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitTimeout {
    /// Description of the unmet condition ("jobs still active", "job3
    /// still active").
    pub what: String,
    pub timeout: Duration,
}

impl std::fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after {:?}", self.what, self.timeout)
    }
}

impl std::error::Error for WaitTimeout {}

/// Wall-clock heartbeat record for one running job.
struct Heartbeat {
    last: Instant,
    /// EWMA of the inter-heartbeat gap in seconds (0 until the second
    /// beat).
    mean_gap: f64,
    beats: u64,
}

fn heartbeat_deadline(wd: &WatchdogConfig, hb: &Heartbeat) -> f64 {
    wd.grace.as_secs_f64() + wd.multiplier * hb.mean_gap
}

/// The live ReSHAPE service: submit resizable jobs against a simulated
/// cluster and let the framework schedule, monitor, resize and reclaim them.
pub struct ReshapeRuntime {
    universe: Arc<Universe>,
    tx: ReliableSender<Msg>,
    core: Arc<Mutex<SchedulerCore>>,
    /// First (rank-0) process of each job, which the System Monitor watches
    /// — "only the monitor running on the first node of its processor set
    /// communicates with the System Monitor".
    watch: Arc<Mutex<HashMap<ProcId, JobId>>>,
    sched_thread: Option<std::thread::JoinHandle<()>>,
    monitor_thread: Option<std::thread::JoinHandle<()>>,
    watchdog_thread: Option<std::thread::JoinHandle<()>>,
    watchdog_stop: Arc<AtomicBool>,
    fold_wall_time: bool,
}

struct SchedThreadCtx {
    universe: Arc<Universe>,
    core: Arc<Mutex<SchedulerCore>>,
    apps: HashMap<JobId, (AppDef, usize)>, // app + iterations
    watch: Arc<Mutex<HashMap<ProcId, JobId>>>,
    link_tx: ReliableSender<Msg>,
    slots_per_node: usize,
    fold_wall_time: bool,
    retry: RetryPolicy,
    watchdog: Option<WatchdogConfig>,
    hearts: Arc<Mutex<HashMap<JobId, Heartbeat>>>,
    /// Remaining requeue budget per job id (original jobs start at
    /// `max_requeues`; each respawn inherits one less).
    requeue_budget: HashMap<JobId, usize>,
}

impl SchedThreadCtx {
    fn actuate(&mut self, starts: Vec<StartAction>) {
        for s in starts {
            let (app, iterations) = match self.apps.get(&s.job) {
                Some(a) => a.clone(),
                // Bookkeeping-only job (tests submit specs without apps).
                None => continue,
            };
            let nodes: Vec<NodeId> = s
                .slots
                .iter()
                .map(|&slot| NodeId((slot / self.slots_per_node) as u32))
                .collect();
            let (name, survivable) = {
                let core = self.core.lock();
                core.job(s.job)
                    .map(|r| (r.spec.name.clone(), r.spec.survivable))
                    .unwrap_or_default()
            };
            let shared = Arc::new(DriverShared {
                job: s.job,
                app,
                iterations,
                link: Arc::new(RuntimeLink {
                    tx: self.link_tx.clone(),
                }),
                slots_per_node: self.slots_per_node,
                fold_wall_time: self.fold_wall_time,
                retry: self.retry,
                survivable,
            });
            let config = s.config;
            let start_vtime = self.core.lock().job(s.job).and_then(|r| r.started_at).unwrap_or(0.0);
            let handle = self.universe.launch_at(
                config.procs(),
                Some(nodes),
                &format!("{name}-{}", s.job),
                start_vtime,
                move |comm| {
                    run_resizable(comm, config, Arc::clone(&shared));
                },
            );
            self.watch.lock().insert(handle.members()[0], s.job);
            if self.watchdog.is_some() {
                // Heartbeat clock starts at launch; the first resize point
                // seeds the mean gap with the first-iteration latency.
                self.hearts.lock().insert(
                    s.job,
                    Heartbeat {
                        last: Instant::now(),
                        mean_gap: 0.0,
                        beats: 0,
                    },
                );
            }
            // Handles are joined through the universe's status tracking; the
            // GroupHandle itself can be dropped (threads keep running).
            drop(handle);
        }
    }

    /// Record a heartbeat for `job` (its resize point reached the
    /// scheduler) and fold the observed gap into the per-job EWMA.
    fn beat(&self, job: JobId) {
        if self.watchdog.is_none() {
            return;
        }
        let mut hearts = self.hearts.lock();
        let Some(hb) = hearts.get_mut(&job) else { return };
        let now = Instant::now();
        let gap = now.duration_since(hb.last).as_secs_f64();
        hb.mean_gap = if hb.beats == 0 {
            gap
        } else {
            0.7 * hb.mean_gap + 0.3 * gap
        };
        hb.last = now;
        hb.beats += 1;
    }

    fn run(mut self, rx: Receiver<Msg>) {
        while let Ok(msg) = rx.recv() {
            // Scheduler-loop latency: how long each message (resize point,
            // submission, completion, ...) holds the scheduler. Recorded on
            // drop, including early exits.
            let _span = reshape_telemetry::span("core.sched_loop_seconds");
            reshape_telemetry::incr("core.sched_msgs", 1);
            match msg {
                Msg::Submit { spec, app, reply } => {
                    let iterations = spec.iterations;
                    let now = self.wall_now();
                    let (id, starts) = self.core.lock().submit(spec, now);
                    self.apps.insert(id, (app, iterations));
                    let _ = reply.send(id);
                    self.actuate(starts);
                }
                Msg::ResizePoint {
                    job,
                    iter_time,
                    redist_time,
                    now,
                    ctx,
                    reply,
                } => {
                    self.beat(job);
                    // Adopt the sender's causal context for the duration of
                    // the core call, so the decision span it emits parents
                    // to the driver-side span that sent this message.
                    let _g = trace::ctx_guard(ctx);
                    let (directive, starts) = self
                        .core
                        .lock()
                        .resize_point(job, iter_time, redist_time, now);
                    let _ = reply.send(directive);
                    self.actuate(starts);
                }
                Msg::NoteRedist {
                    job,
                    from,
                    to,
                    seconds,
                } => {
                    self.core.lock().note_redist_cost(job, from, to, seconds);
                }
                Msg::Finished { job, now, ctx } => {
                    self.hearts.lock().remove(&job);
                    let _g = trace::ctx_guard(ctx);
                    let starts = self.core.lock().on_finished(job, now);
                    self.actuate(starts);
                }
                Msg::PhaseChange { job, now } => {
                    self.core.lock().phase_change(job, now);
                }
                Msg::Cancel { job } => {
                    let now = self.wall_now();
                    self.hearts.lock().remove(&job);
                    let starts = self.core.lock().cancel(job, now);
                    self.actuate(starts);
                }
                Msg::Failed {
                    job,
                    reason,
                    now,
                    ctx,
                } => {
                    self.hearts.lock().remove(&job);
                    let _g = trace::ctx_guard(ctx);
                    let starts = self.core.lock().on_failed(job, reason, now);
                    self.actuate(starts);
                }
                Msg::NodeFailed {
                    job,
                    dead_ranks,
                    to,
                    now,
                    ctx,
                } => {
                    // Completing a recovery is progress; keep the watchdog
                    // off the job's back while it resumes.
                    self.beat(job);
                    let _g = trace::ctx_guard(ctx);
                    let starts = {
                        let mut core = self.core.lock();
                        // Ranks index the job's communicator in slot-grant
                        // order: initial grants and expansion grants both
                        // append slots in rank order, so slot i backs rank i.
                        let dead_slots: Vec<usize> = core
                            .job(job)
                            .map(|r| {
                                dead_ranks
                                    .iter()
                                    .filter_map(|&rk| r.slots.get(rk).copied())
                                    .collect()
                            })
                            .unwrap_or_default();
                        core.on_node_failed(job, &dead_slots, to, now)
                    };
                    self.actuate(starts);
                }
                Msg::ExpandFailed { job, now, ctx } => {
                    let _g = trace::ctx_guard(ctx);
                    let starts = self.core.lock().on_expand_failed(job, now);
                    self.actuate(starts);
                }
                Msg::Hung { job } => self.on_hung(job),
                Msg::Shutdown => break,
            }
        }
    }

    /// Act on a watchdog hang verdict. Revalidated here on the scheduler
    /// thread — a heartbeat (or completion) may have raced the verdict
    /// through the channel, in which case the alarm is dropped as false.
    fn on_hung(&mut self, job: JobId) {
        let Some(wd) = self.watchdog else { return };
        let still_stale = {
            let hearts = self.hearts.lock();
            match hearts.get(&job) {
                Some(hb) => hb.last.elapsed().as_secs_f64() > heartbeat_deadline(&wd, hb),
                None => false,
            }
        };
        let still_running = matches!(
            self.core.lock().job(job).map(|r| r.state.clone()),
            Some(JobState::Running { .. })
        );
        if !still_stale || !still_running {
            reshape_telemetry::incr("runtime.watchdog_false_alarms", 1);
            return;
        }
        reshape_telemetry::incr("runtime.watchdog_kills", 1);
        if trace::enabled() {
            // The watchdog has no virtual clock; stamp the kill at the
            // core's latest observed virtual time so the mark lands inside
            // the job's span window instead of at t=0.
            let t = self.core.lock().last_tick();
            let m = trace::complete(
                job.0,
                trace::head(job.0),
                "watchdog_kill",
                "recovery",
                "scheduler",
                t,
                t,
            );
            trace::set_head(job.0, m);
        }
        // Capture what the requeue needs before the failure path clears it.
        let (last_good, spec) = {
            let core = self.core.lock();
            let last_good = core
                .profiler()
                .profile(job)
                .and_then(|p| p.history().last().map(|r| r.config));
            let spec = core.job(job).map(|r| r.spec.clone());
            (last_good, spec)
        };
        self.hearts.lock().remove(&job);
        // Kill through the same path as any monitored failure: the job's
        // processors return to the pool and queued work may start. The hung
        // processes themselves get Directive::Terminate if they ever reach
        // another resize point (zombie fencing in SchedulerCore).
        let starts = self.core.lock().on_failed(
            job,
            "hung: missed watchdog heartbeat deadline".into(),
            f64::NAN,
        );
        self.actuate(starts);
        if !wd.requeue {
            return;
        }
        let budget = self
            .requeue_budget
            .get(&job)
            .copied()
            .unwrap_or(wd.max_requeues);
        if budget == 0 {
            return;
        }
        let (Some(mut spec), Some((app, iters))) = (spec, self.apps.get(&job).cloned()) else {
            return;
        };
        // Cap the respawn's initial allocation at the last configuration
        // the profiler saw the job make progress on — a job that hung
        // after expanding should not come back at the size that hung it.
        if let Some(cfg) = last_good {
            if cfg.procs() < spec.initial.procs() {
                spec.initial = cfg;
            }
        }
        let now = self.wall_now();
        let (new_id, starts) = self.core.lock().submit(spec, now);
        self.apps.insert(new_id, (app, iters));
        self.requeue_budget.insert(new_id, budget - 1);
        reshape_telemetry::incr("runtime.watchdog_requeues", 1);
        self.actuate(starts);
    }

    /// Wall-clock submission timestamps; virtual times come from the apps.
    fn wall_now(&self) -> f64 {
        // Submission order is what matters for the queue; monotone is enough.
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        COUNTER.fetch_add(1, Ordering::Relaxed) as f64 * 1e-6
    }
}

impl ReshapeRuntime {
    /// Stand up the framework over `universe`. `policy` selects FCFS or
    /// backfill for initial allocations.
    pub fn new(universe: Universe, policy: QueuePolicy) -> Self {
        Self::with_options(universe, policy, false)
    }

    /// `fold_wall_time` makes the driver add real compute time of each
    /// iteration to the virtual clock (for measurement runs).
    pub fn with_options(universe: Universe, policy: QueuePolicy, fold_wall_time: bool) -> Self {
        Self::with_runtime_options(
            universe,
            RuntimeOptions {
                policy,
                fold_wall_time,
                ..Default::default()
            },
        )
    }

    /// Full-control constructor: retry policy, watchdog supervision and
    /// control-channel reliability settings on top of
    /// [`ReshapeRuntime::with_options`].
    pub fn with_runtime_options(universe: Universe, opts: RuntimeOptions) -> Self {
        let universe = Arc::new(universe);
        let total = universe.total_slots();
        let core = Arc::new(Mutex::new(SchedulerCore::new(total, opts.policy)));
        let watch: Arc<Mutex<HashMap<ProcId, JobId>>> = Arc::new(Mutex::new(HashMap::new()));
        let hearts: Arc<Mutex<HashMap<JobId, Heartbeat>>> = Arc::new(Mutex::new(HashMap::new()));
        let fold_wall_time = opts.fold_wall_time;
        // The control channel between applications/monitor and the
        // scheduler thread runs the sequenced ack/retransmit protocol; with
        // chaos configured, frames are lost/duplicated/reordered underneath
        // it and must still arrive exactly once, in order.
        let (tx, rx) = reliable_channel::<Msg>(opts.ctrl);

        let ctx = SchedThreadCtx {
            universe: Arc::clone(&universe),
            core: Arc::clone(&core),
            apps: HashMap::new(),
            watch: Arc::clone(&watch),
            link_tx: tx.clone(),
            slots_per_node: universe.slots_per_node(),
            fold_wall_time,
            retry: opts.retry,
            watchdog: opts.watchdog,
            hearts: Arc::clone(&hearts),
            requeue_budget: HashMap::new(),
        };
        let sched_thread = std::thread::Builder::new()
            .name("reshape-scheduler".into())
            .spawn(move || ctx.run(rx))
            .expect("spawn scheduler thread");

        // Watchdog: scan heartbeats on a wall-clock cadence; verdicts are
        // revalidated by the scheduler thread before any kill, so a beat
        // racing the verdict is a dropped alarm, never a false kill.
        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog_thread = opts.watchdog.map(|wd| {
            let stop = Arc::clone(&watchdog_stop);
            let wd_hearts = Arc::clone(&hearts);
            let wd_core = Arc::clone(&core);
            let wd_tx = tx.clone();
            std::thread::Builder::new()
                .name("reshape-watchdog".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(wd.check_interval);
                        let stale: Vec<JobId> = {
                            let hearts = wd_hearts.lock();
                            hearts
                                .iter()
                                .filter(|(_, hb)| {
                                    hb.last.elapsed().as_secs_f64() > heartbeat_deadline(&wd, hb)
                                })
                                .map(|(&j, _)| j)
                                .collect()
                        };
                        for job in stale {
                            let running = matches!(
                                wd_core.lock().job(job).map(|r| r.state.clone()),
                                Some(JobState::Running { .. })
                            );
                            if running {
                                let _ = wd_tx.send(Msg::Hung { job });
                            }
                        }
                    }
                })
                .expect("spawn watchdog thread")
        });

        // System Monitor: react to process failures. The per-job
        // application monitor of the paper reports through the job's first
        // process; failures of dynamically spawned ranks are attributed to
        // the running job occupying the failed process's node. Caveat: with
        // several slots per node, co-located jobs make this heuristic
        // ambiguous (the first matching running job is blamed) — the same
        // ambiguity a per-node monitor has on a real shared-node cluster.
        let events = universe.events();
        let mon_tx = tx.clone();
        let mon_watch = Arc::clone(&watch);
        let mon_core = Arc::clone(&core);
        let spn = universe.slots_per_node();
        let monitor_thread = std::thread::Builder::new()
            .name("reshape-sysmon".into())
            .spawn(move || {
                while let Ok(ev) = events.recv() {
                    if let ProcStatus::Failed(reason) = ev.status {
                        let job = mon_watch.lock().get(&ev.proc).copied().or_else(|| {
                            // Attribute by node occupancy.
                            let core = mon_core.lock();
                            let found = core
                                .jobs()
                                .find(|(_, r)| {
                                    matches!(r.state, JobState::Running { .. })
                                        && r.slots
                                            .iter()
                                            .any(|&s| (s / spn) as u32 == ev.node.0)
                                })
                                .map(|(id, _)| *id);
                            found
                        });
                        if let Some(job) = job {
                            // Survivable jobs handle rank death themselves
                            // (buddy restore + forced shrink); the monitor
                            // stays out of the way while they are running.
                            // If recovery is impossible the driver reports
                            // the failure through its link, and a wedged
                            // recovery is the watchdog's to kill.
                            let deferred = mon_core.lock().job(job).is_some_and(|r| {
                                r.spec.survivable && matches!(r.state, JobState::Running { .. })
                            });
                            if deferred {
                                reshape_telemetry::incr("runtime.monitor_deferred_to_recovery", 1);
                            } else {
                                let _ = mon_tx.send(Msg::Failed {
                                    job,
                                    reason,
                                    now: f64::NAN,
                                    // The monitor thread has no ambient
                                    // span; the core falls back to the
                                    // job's trace head for parenting.
                                    ctx: TraceCtx::default(),
                                });
                            }
                        }
                    }
                }
            })
            .expect("spawn monitor thread");

        ReshapeRuntime {
            universe,
            tx,
            core,
            watch,
            sched_thread: Some(sched_thread),
            monitor_thread: Some(monitor_thread),
            watchdog_thread,
            watchdog_stop,
            fold_wall_time,
        }
    }

    /// Submit a resizable application; returns its job id immediately (the
    /// job may queue).
    pub fn submit(&self, spec: JobSpec, app: AppDef) -> JobId {
        let (reply, rx) = unbounded();
        let sent = self.tx.send(Msg::Submit { spec, app, reply }).is_ok();
        assert!(sent, "scheduler thread alive");
        rx.recv().expect("submission acknowledged")
    }

    /// Cancel a job: queued jobs leave immediately, running jobs terminate
    /// at their next resize point.
    pub fn cancel(&self, job: JobId) {
        let _ = self.tx.send(Msg::Cancel { job });
    }

    /// Shared scheduler state, for inspection (profiles, events, jobs).
    pub fn core(&self) -> &Arc<Mutex<SchedulerCore>> {
        &self.core
    }

    /// Remove and return the scheduling trace accumulated so far (see
    /// [`SchedulerCore::drain_events`]); keeps long-lived runtimes from
    /// hitting the trace retention cap.
    pub fn drain_events(&self) -> Vec<SchedEvent> {
        self.core.lock().drain_events()
    }

    /// The underlying cluster.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Whether wall-time folding is enabled for this runtime.
    pub fn folds_wall_time(&self) -> bool {
        self.fold_wall_time
    }

    /// Block until every submitted job has left the system (finished or
    /// failed); [`WaitTimeout`] after `timeout` so callers choose whether
    /// that is fatal (tests `.unwrap()`, services retry or report).
    pub fn wait_quiescent(&self, timeout: Duration) -> Result<(), WaitTimeout> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let core = self.core.lock();
                let all_done = core.jobs().all(|(_, r)| !r.state.is_active());
                if all_done {
                    return Ok(());
                }
            }
            if Instant::now() >= deadline {
                return Err(WaitTimeout {
                    what: "jobs still active".into(),
                    timeout,
                });
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Wait for one specific job to leave the system and return its final
    /// state, or [`WaitTimeout`] if it is still active after `timeout`.
    pub fn wait_for(&self, job: JobId, timeout: Duration) -> Result<JobState, WaitTimeout> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let core = self.core.lock();
                if let Some(r) = core.job(job) {
                    if !r.state.is_active() {
                        return Ok(r.state.clone());
                    }
                }
            }
            if Instant::now() >= deadline {
                return Err(WaitTimeout {
                    what: format!("{job} still active"),
                    timeout,
                });
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for ReshapeRuntime {
    fn drop(&mut self) {
        // Watchdog first, so no hang verdict fires into a dying scheduler.
        self.watchdog_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.watchdog_thread.take() {
            let _ = h.join();
        }
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.sched_thread.take() {
            let _ = h.join();
        }
        // The monitor thread exits when the universe's event channel closes
        // (universe dropped); don't block on it here.
        if let Some(h) = self.monitor_thread.take() {
            drop(h);
        }
        let _ = &self.watch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyPref;
    use reshape_blockcyclic::{Descriptor, DistMatrix};
    use reshape_mpisim::NetModel;

    fn toy(n: usize, per_iter: f64) -> AppDef {
        AppDef::new(
            move |grid| {
                let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
                vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |i, j| {
                    (i + j) as f64
                })]
            },
            move |grid, _m, _it| {
                let p = (grid.nprow() * grid.npcol()) as f64;
                grid.comm().advance(per_iter / p);
            },
        )
    }

    #[test]
    fn single_job_runs_to_completion() {
        let rt = ReshapeRuntime::new(Universe::new(8, 1, NetModel::ideal()), QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "toy",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(1, 2),
            5,
        );
        let job = rt.submit(spec, toy(8, 1.0));
        let state = rt.wait_for(job, Duration::from_secs(30)).unwrap();
        assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
        // All processors returned to the pool.
        assert_eq!(rt.core().lock().idle_procs(), 8);
    }

    #[test]
    fn queued_job_starts_after_first_finishes() {
        let rt = ReshapeRuntime::new(Universe::new(2, 1, NetModel::ideal()), QueuePolicy::Fcfs);
        let mk = |name: &str| {
            JobSpec::new(
                name,
                TopologyPref::Grid { problem_size: 8 },
                ProcessorConfig::new(1, 2),
                3,
            )
        };
        let a = rt.submit(mk("A"), toy(8, 1.0));
        let b = rt.submit(mk("B"), toy(8, 1.0));
        assert!(matches!(
            rt.wait_for(a, Duration::from_secs(30)).unwrap(),
            JobState::Finished { .. }
        ));
        assert!(matches!(
            rt.wait_for(b, Duration::from_secs(30)).unwrap(),
            JobState::Finished { .. }
        ));
        rt.wait_quiescent(Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn failing_job_resources_are_reclaimed() {
        let rt = ReshapeRuntime::new(Universe::new(4, 1, NetModel::ideal()), QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "crasher",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(2, 2),
            5,
        )
        .static_job();
        let app = AppDef::new(
            |grid| {
                let desc = Descriptor::square(8, 2, grid.nprow(), grid.npcol());
                vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |_, _| 0.0)]
            },
            |grid, _m, it| {
                if it == 2 && grid.comm().rank() == 0 {
                    panic!("injected application error");
                }
                grid.comm().advance(0.1);
            },
        );
        let job = rt.submit(spec, app);
        let state = rt.wait_for(job, Duration::from_secs(30)).unwrap();
        assert!(
            matches!(state, JobState::Failed { ref reason, .. } if reason.contains("injected")),
            "{state:?}"
        );
        // The monitor reclaims asynchronously; poll with a deadline.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if rt.core().lock().idle_procs() == 4 {
                break;
            }
            assert!(Instant::now() < deadline, "resources never reclaimed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn spawn_fault_recovers_through_runtime_channel() {
        let uni = Universe::new(8, 1, NetModel::ideal());
        // Every expansion attempt spawn is denied outright (the default
        // retry policy makes up to three attempts).
        uni.inject_spawn_cap(0);
        uni.inject_spawn_cap(0);
        uni.inject_spawn_cap(0);
        let rt = ReshapeRuntime::new(uni, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "short-grant",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(1, 2),
            5,
        );
        let job = rt.submit(spec, toy(8, 1.0));
        let state = rt.wait_for(job, Duration::from_secs(30)).unwrap();
        assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
        // The granted-then-reverted processors all made it back.
        assert_eq!(rt.core().lock().idle_procs(), 8);
        assert!(rt
            .core()
            .lock()
            .events()
            .iter()
            .any(|e| matches!(e.kind, crate::core::EventKind::ExpandFailed { .. })));
    }

    /// A tight watchdog for tests: millisecond cadence, sub-second grace.
    fn test_watchdog() -> WatchdogConfig {
        WatchdogConfig {
            check_interval: Duration::from_millis(10),
            grace: Duration::from_millis(250),
            multiplier: 4.0,
            requeue: false,
            max_requeues: 0,
        }
    }

    #[test]
    fn watchdog_kills_hung_job_and_reclaims_processors() {
        static RELEASE: AtomicBool = AtomicBool::new(false);
        let rt = ReshapeRuntime::with_runtime_options(
            Universe::new(4, 1, NetModel::ideal()),
            RuntimeOptions {
                watchdog: Some(test_watchdog()),
                ..Default::default()
            },
        );
        let spec = JobSpec::new(
            "hanger",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(1, 2),
            50,
        );
        let app = AppDef::new(
            |grid| {
                let desc = Descriptor::square(8, 2, grid.nprow(), grid.npcol());
                vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |_, _| 0.0)]
            },
            |grid, _m, it| {
                if it == 2 {
                    // Simulated deadlock: every rank stops making progress
                    // (but can be released so the test tears down cleanly).
                    while !RELEASE.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                grid.comm().advance(0.1);
            },
        );
        let job = rt.submit(spec, app);
        let state = rt.wait_for(job, Duration::from_secs(30)).unwrap();
        assert!(
            matches!(state, JobState::Failed { ref reason, .. } if reason.contains("hung")),
            "{state:?}"
        );
        // The kill reclaims the job's processors even though its (zombie)
        // processes are still parked.
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.core().lock().idle_procs() != 4 {
            assert!(Instant::now() < deadline, "hung job never reclaimed");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Release the zombies: their next resize point returns Terminate
        // (zombie fencing) and they exit without touching the pool.
        RELEASE.store(true, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(rt.core().lock().idle_procs(), 4);
    }

    #[test]
    fn watchdog_never_kills_healthy_jobs() {
        let rt = ReshapeRuntime::with_runtime_options(
            Universe::new(8, 1, NetModel::ideal()),
            RuntimeOptions {
                watchdog: Some(test_watchdog()),
                ..Default::default()
            },
        );
        let mk = |name: &str| {
            JobSpec::new(
                name,
                TopologyPref::Grid { problem_size: 8 },
                ProcessorConfig::new(1, 2),
                8,
            )
        };
        let a = rt.submit(mk("A"), toy(8, 1.0));
        let b = rt.submit(mk("B"), toy(8, 1.0));
        for j in [a, b] {
            let state = rt.wait_for(j, Duration::from_secs(30)).unwrap();
            assert!(
                matches!(state, JobState::Finished { .. }),
                "watchdog falsely killed {j}: {state:?}"
            );
        }
        assert_eq!(rt.core().lock().idle_procs(), 8);
    }

    #[test]
    fn watchdog_requeues_hung_job_once() {
        static HANG_ONCE: AtomicBool = AtomicBool::new(true);
        static RELEASE: AtomicBool = AtomicBool::new(false);
        let rt = ReshapeRuntime::with_runtime_options(
            Universe::new(4, 1, NetModel::ideal()),
            RuntimeOptions {
                watchdog: Some(WatchdogConfig {
                    requeue: true,
                    max_requeues: 1,
                    ..test_watchdog()
                }),
                ..Default::default()
            },
        );
        let spec = JobSpec::new(
            "flaky",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(1, 2),
            5,
        );
        let app = AppDef::new(
            |grid| {
                let desc = Descriptor::square(8, 2, grid.nprow(), grid.npcol());
                vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |_, _| 0.0)]
            },
            |grid, _m, it| {
                // One rank stalling stalls the whole job (the peer blocks in
                // the next collective); only the first incarnation hangs.
                if it == 1 && grid.comm().rank() == 0 && HANG_ONCE.swap(false, Ordering::Relaxed) {
                    while !RELEASE.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                grid.comm().advance(0.1);
            },
        );
        let first = rt.submit(spec, app);
        let state = rt.wait_for(first, Duration::from_secs(30)).unwrap();
        assert!(
            matches!(state, JobState::Failed { ref reason, .. } if reason.contains("hung")),
            "{state:?}"
        );
        // The respawned incarnation (a fresh job id) runs clean.
        rt.wait_quiescent(Duration::from_secs(30)).unwrap();
        let finished = {
            let core = rt.core().lock();
            core.jobs()
                .filter(|(id, r)| {
                    **id != first && matches!(r.state, JobState::Finished { .. })
                })
                .count()
        };
        assert_eq!(finished, 1, "hung job was not requeued to completion");
        RELEASE.store(true, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(rt.core().lock().idle_procs(), 4);
    }

    #[test]
    fn jobs_complete_exactly_once_over_chaotic_control_channel() {
        use crate::ctrl::ChaosConfig;
        // Heavy loss/duplication/reordering underneath the scheduler's
        // control channel: the ack/retransmit protocol must deliver every
        // resize point, completion and submission exactly once, in order.
        let rt = ReshapeRuntime::with_runtime_options(
            Universe::new(8, 1, NetModel::ideal()),
            RuntimeOptions {
                ctrl: ReliableConfig::with_chaos(ChaosConfig::heavy(0xC0FFEE)),
                ..Default::default()
            },
        );
        let mk = |name: &str| {
            JobSpec::new(
                name,
                TopologyPref::Grid { problem_size: 8 },
                ProcessorConfig::new(1, 2),
                6,
            )
        };
        let a = rt.submit(mk("A"), toy(8, 1.0));
        let b = rt.submit(mk("B"), toy(8, 1.0));
        for j in [a, b] {
            let state = rt.wait_for(j, Duration::from_secs(60)).unwrap();
            assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
        }
        // Exactly one Finished transition per job (no duplicate delivery
        // double-finishing), and the pool is whole.
        let core = rt.core().lock();
        for j in [a, b] {
            let n = core
                .events()
                .iter()
                .filter(|e| e.job == j && e.kind == crate::core::EventKind::Finished)
                .count();
            assert_eq!(n, 1, "{j} finished {n} times");
        }
        assert_eq!(core.idle_procs(), 8);
    }

    #[test]
    fn node_crash_fails_job_and_reclaims() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        // Node 1 dies at t=0.5; the static 2x2 job straddles it.
        uni.inject_node_crash(NodeId(1), 0.5);
        let rt = ReshapeRuntime::new(uni, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "crashy",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(2, 2),
            50,
        )
        .static_job();
        let job = rt.submit(spec, toy(8, 1.0));
        let state = rt.wait_for(job, Duration::from_secs(30)).unwrap();
        assert!(
            matches!(state, JobState::Failed { ref reason, .. } if reason.contains("crashed")),
            "{state:?}"
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if rt.core().lock().idle_procs() == 4 {
                break;
            }
            assert!(Instant::now() < deadline, "resources never reclaimed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn survivable_job_outlives_a_node_crash() {
        // Same crash as above, but the job opted into shrink-to-survivors
        // recovery: the system monitor must defer to the driver (a
        // survivable Running job is the recovery path's to handle, not
        // `Msg::Failed`'s), the driver shrinks 2x2 -> 1x3 from buddy
        // copies, and the job runs to completion at the degraded size.
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.inject_node_crash(NodeId(1), 0.5);
        let rt = ReshapeRuntime::new(uni, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "survivor",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(2, 2),
            50,
        )
        .static_job()
        .survivable();
        let job = rt.submit(spec, toy(8, 1.0));
        let state = rt.wait_for(job, Duration::from_secs(30)).unwrap();
        assert!(
            matches!(state, JobState::Finished { .. }),
            "survivable job should outlive the crash, got {state:?}"
        );
        let core = rt.core().lock();
        assert!(
            core.events().iter().any(|e| e.job == job
                && matches!(e.kind, crate::core::EventKind::NodeFailed { lost: 1, .. })),
            "forced shrink never reached the scheduler"
        );
        drop(core);
        // All four slots drain back: three at finish, the dead one at the
        // forced shrink.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if rt.core().lock().idle_procs() == 4 {
                break;
            }
            assert!(Instant::now() < deadline, "resources never reclaimed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
