//! Real-execution mode: the scheduler as a live service.
//!
//! The paper's "application scheduling and monitoring module" runs five
//! components, each on its own thread. Here:
//!
//! * the **scheduler thread** combines the Application Scheduler, Remap
//!   Scheduler and Performance Profiler (all state lives in
//!   [`SchedulerCore`]) and also plays **Job Startup**: when the core says a
//!   queued job can run, the thread launches its process group on the
//!   simulated cluster;
//! * the **System Monitor thread** subscribes to process lifecycle events
//!   from the [`Universe`] and reclaims the resources of failed jobs;
//! * applications talk to the scheduler through a [`SchedulerLink`]
//!   implemented over channels, exactly like the paper's socket protocol
//!   between the resize library and the scheduler.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use reshape_mpisim::{NodeId, ProcId, ProcStatus, Universe};

use crate::core::{Directive, QueuePolicy, SchedEvent, SchedulerCore, StartAction};
use crate::driver::{run_resizable, AppDef, DriverShared, SchedulerLink};
use crate::job::{JobId, JobSpec, JobState};
use crate::topology::ProcessorConfig;

enum Msg {
    Submit {
        spec: JobSpec,
        app: AppDef,
        reply: Sender<JobId>,
    },
    ResizePoint {
        job: JobId,
        iter_time: f64,
        redist_time: f64,
        now: f64,
        reply: Sender<Directive>,
    },
    NoteRedist {
        job: JobId,
        from: ProcessorConfig,
        to: ProcessorConfig,
        seconds: f64,
    },
    Finished {
        job: JobId,
        now: f64,
    },
    PhaseChange {
        job: JobId,
        now: f64,
    },
    Cancel {
        job: JobId,
    },
    Failed {
        job: JobId,
        reason: String,
        now: f64,
    },
    ExpandFailed {
        job: JobId,
        now: f64,
    },
    Shutdown,
}

/// Channel-backed [`SchedulerLink`] handed to application processes.
struct RuntimeLink {
    tx: Sender<Msg>,
}

impl SchedulerLink for RuntimeLink {
    fn resize_point(&self, job: JobId, iter_time: f64, redist_time: f64, now: f64) -> Directive {
        let (reply, rx) = unbounded();
        self.tx
            .send(Msg::ResizePoint {
                job,
                iter_time,
                redist_time,
                now,
                reply,
            })
            .expect("scheduler thread alive");
        rx.recv().expect("scheduler replies to resize points")
    }

    fn note_redist(&self, job: JobId, from: ProcessorConfig, to: ProcessorConfig, seconds: f64) {
        let _ = self.tx.send(Msg::NoteRedist {
            job,
            from,
            to,
            seconds,
        });
    }

    fn finished(&self, job: JobId, now: f64) {
        let _ = self.tx.send(Msg::Finished { job, now });
    }

    fn phase_change(&self, job: JobId, now: f64) {
        let _ = self.tx.send(Msg::PhaseChange { job, now });
    }

    fn expand_failed(&self, job: JobId, _to: ProcessorConfig, now: f64) {
        let _ = self.tx.send(Msg::ExpandFailed { job, now });
    }
}

/// The live ReSHAPE service: submit resizable jobs against a simulated
/// cluster and let the framework schedule, monitor, resize and reclaim them.
pub struct ReshapeRuntime {
    universe: Arc<Universe>,
    tx: Sender<Msg>,
    core: Arc<Mutex<SchedulerCore>>,
    /// First (rank-0) process of each job, which the System Monitor watches
    /// — "only the monitor running on the first node of its processor set
    /// communicates with the System Monitor".
    watch: Arc<Mutex<HashMap<ProcId, JobId>>>,
    sched_thread: Option<std::thread::JoinHandle<()>>,
    monitor_thread: Option<std::thread::JoinHandle<()>>,
    fold_wall_time: bool,
}

struct SchedThreadCtx {
    universe: Arc<Universe>,
    core: Arc<Mutex<SchedulerCore>>,
    apps: HashMap<JobId, (AppDef, usize)>, // app + iterations
    watch: Arc<Mutex<HashMap<ProcId, JobId>>>,
    link_tx: Sender<Msg>,
    slots_per_node: usize,
    fold_wall_time: bool,
}

impl SchedThreadCtx {
    fn actuate(&mut self, starts: Vec<StartAction>) {
        for s in starts {
            let (app, iterations) = match self.apps.get(&s.job) {
                Some(a) => a.clone(),
                // Bookkeeping-only job (tests submit specs without apps).
                None => continue,
            };
            let nodes: Vec<NodeId> = s
                .slots
                .iter()
                .map(|&slot| NodeId((slot / self.slots_per_node) as u32))
                .collect();
            let shared = Arc::new(DriverShared {
                job: s.job,
                app,
                iterations,
                link: Arc::new(RuntimeLink {
                    tx: self.link_tx.clone(),
                }),
                slots_per_node: self.slots_per_node,
                fold_wall_time: self.fold_wall_time,
            });
            let config = s.config;
            let name = {
                let core = self.core.lock();
                core.job(s.job).map(|r| r.spec.name.clone()).unwrap_or_default()
            };
            let start_vtime = self.core.lock().job(s.job).and_then(|r| r.started_at).unwrap_or(0.0);
            let handle = self.universe.launch_at(
                config.procs(),
                Some(nodes),
                &format!("{name}-{}", s.job),
                start_vtime,
                move |comm| {
                    run_resizable(comm, config, Arc::clone(&shared));
                },
            );
            self.watch.lock().insert(handle.members()[0], s.job);
            // Handles are joined through the universe's status tracking; the
            // GroupHandle itself can be dropped (threads keep running).
            drop(handle);
        }
    }

    fn run(mut self, rx: Receiver<Msg>) {
        while let Ok(msg) = rx.recv() {
            // Scheduler-loop latency: how long each message (resize point,
            // submission, completion, ...) holds the scheduler. Recorded on
            // drop, including early exits.
            let _span = reshape_telemetry::span("core.sched_loop_seconds");
            reshape_telemetry::incr("core.sched_msgs", 1);
            match msg {
                Msg::Submit { spec, app, reply } => {
                    let iterations = spec.iterations;
                    let now = self.wall_now();
                    let (id, starts) = self.core.lock().submit(spec, now);
                    self.apps.insert(id, (app, iterations));
                    let _ = reply.send(id);
                    self.actuate(starts);
                }
                Msg::ResizePoint {
                    job,
                    iter_time,
                    redist_time,
                    now,
                    reply,
                } => {
                    let (directive, starts) = self
                        .core
                        .lock()
                        .resize_point(job, iter_time, redist_time, now);
                    let _ = reply.send(directive);
                    self.actuate(starts);
                }
                Msg::NoteRedist {
                    job,
                    from,
                    to,
                    seconds,
                } => {
                    self.core.lock().note_redist_cost(job, from, to, seconds);
                }
                Msg::Finished { job, now } => {
                    let starts = self.core.lock().on_finished(job, now);
                    self.actuate(starts);
                }
                Msg::PhaseChange { job, now } => {
                    self.core.lock().phase_change(job, now);
                }
                Msg::Cancel { job } => {
                    let now = self.wall_now();
                    let starts = self.core.lock().cancel(job, now);
                    self.actuate(starts);
                }
                Msg::Failed { job, reason, now } => {
                    let starts = self.core.lock().on_failed(job, reason, now);
                    self.actuate(starts);
                }
                Msg::ExpandFailed { job, now } => {
                    let starts = self.core.lock().on_expand_failed(job, now);
                    self.actuate(starts);
                }
                Msg::Shutdown => break,
            }
        }
    }

    /// Wall-clock submission timestamps; virtual times come from the apps.
    fn wall_now(&self) -> f64 {
        // Submission order is what matters for the queue; monotone is enough.
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        COUNTER.fetch_add(1, Ordering::Relaxed) as f64 * 1e-6
    }
}

impl ReshapeRuntime {
    /// Stand up the framework over `universe`. `policy` selects FCFS or
    /// backfill for initial allocations.
    pub fn new(universe: Universe, policy: QueuePolicy) -> Self {
        Self::with_options(universe, policy, false)
    }

    /// `fold_wall_time` makes the driver add real compute time of each
    /// iteration to the virtual clock (for measurement runs).
    pub fn with_options(universe: Universe, policy: QueuePolicy, fold_wall_time: bool) -> Self {
        let universe = Arc::new(universe);
        let total = universe.total_slots();
        let core = Arc::new(Mutex::new(SchedulerCore::new(total, policy)));
        let watch: Arc<Mutex<HashMap<ProcId, JobId>>> = Arc::new(Mutex::new(HashMap::new()));
        let (tx, rx) = unbounded();

        let ctx = SchedThreadCtx {
            universe: Arc::clone(&universe),
            core: Arc::clone(&core),
            apps: HashMap::new(),
            watch: Arc::clone(&watch),
            link_tx: tx.clone(),
            slots_per_node: universe.slots_per_node(),
            fold_wall_time,
        };
        let sched_thread = std::thread::Builder::new()
            .name("reshape-scheduler".into())
            .spawn(move || ctx.run(rx))
            .expect("spawn scheduler thread");

        // System Monitor: react to process failures. The per-job
        // application monitor of the paper reports through the job's first
        // process; failures of dynamically spawned ranks are attributed to
        // the running job occupying the failed process's node. Caveat: with
        // several slots per node, co-located jobs make this heuristic
        // ambiguous (the first matching running job is blamed) — the same
        // ambiguity a per-node monitor has on a real shared-node cluster.
        let events = universe.events();
        let mon_tx = tx.clone();
        let mon_watch = Arc::clone(&watch);
        let mon_core = Arc::clone(&core);
        let spn = universe.slots_per_node();
        let monitor_thread = std::thread::Builder::new()
            .name("reshape-sysmon".into())
            .spawn(move || {
                while let Ok(ev) = events.recv() {
                    if let ProcStatus::Failed(reason) = ev.status {
                        let job = mon_watch.lock().get(&ev.proc).copied().or_else(|| {
                            // Attribute by node occupancy.
                            let core = mon_core.lock();
                            let found = core
                                .jobs()
                                .find(|(_, r)| {
                                    matches!(r.state, JobState::Running { .. })
                                        && r.slots
                                            .iter()
                                            .any(|&s| (s / spn) as u32 == ev.node.0)
                                })
                                .map(|(id, _)| *id);
                            found
                        });
                        if let Some(job) = job {
                            let _ = mon_tx.send(Msg::Failed {
                                job,
                                reason,
                                now: f64::NAN,
                            });
                        }
                    }
                }
            })
            .expect("spawn monitor thread");

        ReshapeRuntime {
            universe,
            tx,
            core,
            watch,
            sched_thread: Some(sched_thread),
            monitor_thread: Some(monitor_thread),
            fold_wall_time,
        }
    }

    /// Submit a resizable application; returns its job id immediately (the
    /// job may queue).
    pub fn submit(&self, spec: JobSpec, app: AppDef) -> JobId {
        let (reply, rx) = unbounded();
        self.tx
            .send(Msg::Submit { spec, app, reply })
            .expect("scheduler thread alive");
        rx.recv().expect("submission acknowledged")
    }

    /// Cancel a job: queued jobs leave immediately, running jobs terminate
    /// at their next resize point.
    pub fn cancel(&self, job: JobId) {
        let _ = self.tx.send(Msg::Cancel { job });
    }

    /// Shared scheduler state, for inspection (profiles, events, jobs).
    pub fn core(&self) -> &Arc<Mutex<SchedulerCore>> {
        &self.core
    }

    /// Remove and return the scheduling trace accumulated so far (see
    /// [`SchedulerCore::drain_events`]); keeps long-lived runtimes from
    /// hitting the trace retention cap.
    pub fn drain_events(&self) -> Vec<SchedEvent> {
        self.core.lock().drain_events()
    }

    /// The underlying cluster.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Whether wall-time folding is enabled for this runtime.
    pub fn folds_wall_time(&self) -> bool {
        self.fold_wall_time
    }

    /// Block until every submitted job has left the system (finished or
    /// failed), or panic after `timeout`.
    pub fn wait_quiescent(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let core = self.core.lock();
                let all_done = core.jobs().all(|(_, r)| !r.state.is_active());
                if all_done {
                    return;
                }
            }
            assert!(
                Instant::now() < deadline,
                "jobs still active after {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Wait for one specific job to leave the system and return its final
    /// state.
    pub fn wait_for(&self, job: JobId, timeout: Duration) -> JobState {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let core = self.core.lock();
                if let Some(r) = core.job(job) {
                    if !r.state.is_active() {
                        return r.state.clone();
                    }
                }
            }
            assert!(Instant::now() < deadline, "{job} still active after {timeout:?}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for ReshapeRuntime {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.sched_thread.take() {
            let _ = h.join();
        }
        // The monitor thread exits when the universe's event channel closes
        // (universe dropped); don't block on it here.
        if let Some(h) = self.monitor_thread.take() {
            drop(h);
        }
        let _ = &self.watch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyPref;
    use reshape_blockcyclic::{Descriptor, DistMatrix};
    use reshape_mpisim::NetModel;

    fn toy(n: usize, per_iter: f64) -> AppDef {
        AppDef::new(
            move |grid| {
                let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
                vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |i, j| {
                    (i + j) as f64
                })]
            },
            move |grid, _m, _it| {
                let p = (grid.nprow() * grid.npcol()) as f64;
                grid.comm().advance(per_iter / p);
            },
        )
    }

    #[test]
    fn single_job_runs_to_completion() {
        let rt = ReshapeRuntime::new(Universe::new(8, 1, NetModel::ideal()), QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "toy",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(1, 2),
            5,
        );
        let job = rt.submit(spec, toy(8, 1.0));
        let state = rt.wait_for(job, Duration::from_secs(30));
        assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
        // All processors returned to the pool.
        assert_eq!(rt.core().lock().idle_procs(), 8);
    }

    #[test]
    fn queued_job_starts_after_first_finishes() {
        let rt = ReshapeRuntime::new(Universe::new(2, 1, NetModel::ideal()), QueuePolicy::Fcfs);
        let mk = |name: &str| {
            JobSpec::new(
                name,
                TopologyPref::Grid { problem_size: 8 },
                ProcessorConfig::new(1, 2),
                3,
            )
        };
        let a = rt.submit(mk("A"), toy(8, 1.0));
        let b = rt.submit(mk("B"), toy(8, 1.0));
        assert!(matches!(
            rt.wait_for(a, Duration::from_secs(30)),
            JobState::Finished { .. }
        ));
        assert!(matches!(
            rt.wait_for(b, Duration::from_secs(30)),
            JobState::Finished { .. }
        ));
        rt.wait_quiescent(Duration::from_secs(5));
    }

    #[test]
    fn failing_job_resources_are_reclaimed() {
        let rt = ReshapeRuntime::new(Universe::new(4, 1, NetModel::ideal()), QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "crasher",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(2, 2),
            5,
        )
        .static_job();
        let app = AppDef::new(
            |grid| {
                let desc = Descriptor::square(8, 2, grid.nprow(), grid.npcol());
                vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |_, _| 0.0)]
            },
            |grid, _m, it| {
                if it == 2 && grid.comm().rank() == 0 {
                    panic!("injected application error");
                }
                grid.comm().advance(0.1);
            },
        );
        let job = rt.submit(spec, app);
        let state = rt.wait_for(job, Duration::from_secs(30));
        assert!(
            matches!(state, JobState::Failed { ref reason, .. } if reason.contains("injected")),
            "{state:?}"
        );
        // The monitor reclaims asynchronously; poll with a deadline.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if rt.core().lock().idle_procs() == 4 {
                break;
            }
            assert!(Instant::now() < deadline, "resources never reclaimed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn spawn_fault_recovers_through_runtime_channel() {
        let uni = Universe::new(8, 1, NetModel::ideal());
        // Every expansion attempt spawn is denied outright.
        uni.inject_spawn_cap(0);
        let rt = ReshapeRuntime::new(uni, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "short-grant",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(1, 2),
            5,
        );
        let job = rt.submit(spec, toy(8, 1.0));
        let state = rt.wait_for(job, Duration::from_secs(30));
        assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
        // The granted-then-reverted processors all made it back.
        assert_eq!(rt.core().lock().idle_procs(), 8);
        assert!(rt
            .core()
            .lock()
            .events()
            .iter()
            .any(|e| matches!(e.kind, crate::core::EventKind::ExpandFailed { .. })));
    }

    #[test]
    fn node_crash_fails_job_and_reclaims() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        // Node 1 dies at t=0.5; the static 2x2 job straddles it.
        uni.inject_node_crash(NodeId(1), 0.5);
        let rt = ReshapeRuntime::new(uni, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "crashy",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(2, 2),
            50,
        )
        .static_job();
        let job = rt.submit(spec, toy(8, 1.0));
        let state = rt.wait_for(job, Duration::from_secs(30));
        assert!(
            matches!(state, JobState::Failed { ref reason, .. } if reason.contains("crashed")),
            "{state:?}"
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if rt.core().lock().idle_procs() == 4 {
                break;
            }
            assert!(Instant::now() < deadline, "resources never reclaimed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
