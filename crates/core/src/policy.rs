//! The Remap Scheduler's expand/shrink policy (paper §3.1).
//!
//! A decision to **expand** is made iff
//! 1. there are enough idle processors for the next configuration, and
//! 2. no jobs are waiting in the queue, and
//! 3. the previous expansion improved the iteration time, or the job has
//!    never been expanded.
//!
//! A decision to **shrink** is made iff the job has previously run on a
//! smaller set and
//! 1. the last expansion yielded no performance benefit (revert to the
//!    previous configuration — this is the sweet-spot detector), or
//! 2. jobs are waiting in the queue: shrink to the largest previously
//!    visited configuration that frees enough processors to start the first
//!    queued job; if none frees enough, shrink all the way to the smallest
//!    visited configuration and let the next application's resize point
//!    contribute the rest.

use serde::{Deserialize, Serialize};

use crate::job::JobSpec;
use crate::profiler::{JobProfile, Resize};
use crate::topology::ProcessorConfig;

/// What the cluster looks like when a job checks in at a resize point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemSnapshot {
    /// Idle processors available for expansion.
    pub idle_procs: usize,
    /// Processor request of the first queued job, if any.
    pub queue_head_need: Option<usize>,
    /// Outer iterations the job still has to run (0 when unknown) — used by
    /// the cost-benefit policy to amortize redistribution cost.
    pub remaining_iters: usize,
}

/// The Remap Scheduler's verdict for one resize point.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemapDecision {
    /// Grow to `to`; the scheduler grants the additional processors.
    Expand { to: ProcessorConfig },
    /// Shrink to `to` (a previously visited configuration), relinquishing
    /// the difference.
    Shrink { to: ProcessorConfig },
    /// Continue on the current configuration.
    NoChange,
}

/// Remap-policy variant. [`RemapPolicy::Paper`] is the policy of §3.1;
/// the others are ablations of its two key design decisions (see the
/// `ablation_policy` bench).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemapPolicy {
    /// The paper's policy: probe upward while improving, revert
    /// unprofitable expansions, shrink for queued work.
    #[default]
    Paper,
    /// Expand whenever processors are idle — even past the sweet spot and
    /// even with jobs waiting. Shrinks only to revert a failed expansion.
    GreedyExpand,
    /// Never give processors back: expansion as in the paper, but ignore
    /// queued jobs and never revert.
    NeverShrink,
    /// The paper's §4.1.2 suggestion implemented: expand only when the
    /// estimated iteration-time gain over the job's *remaining* iterations
    /// exceeds the redistribution cost. The gain estimate is optimistic
    /// (ideal speedup), so the policy still probes unknown configurations;
    /// the cost estimate is the profiler's measured redistribution cost for
    /// the transition (or, unmeasured, the cost of the most similar known
    /// transition) — "with ReSHAPE we save a record of actual
    /// redistribution costs ... which allows for more informed decisions".
    CostBenefit,
}

/// Decide expand/shrink/no-change for a resizable job at a resize point,
/// under the paper's policy.
pub fn decide(
    spec: &JobSpec,
    current: ProcessorConfig,
    profile: &JobProfile,
    sys: &SystemSnapshot,
    max_procs: usize,
) -> RemapDecision {
    decide_with(RemapPolicy::Paper, spec, current, profile, sys, max_procs)
}

/// [`decide`] parameterized by policy variant.
pub fn decide_with(
    policy: RemapPolicy,
    spec: &JobSpec,
    current: ProcessorConfig,
    profile: &JobProfile,
    sys: &SystemSnapshot,
    max_procs: usize,
) -> RemapDecision {
    if !spec.resizable {
        return RemapDecision::NoChange;
    }

    // Shrink rule 1: revert an unprofitable expansion (sweet spot found).
    if policy != RemapPolicy::NeverShrink {
        if let Some(Resize::Expanded { from, to }) = profile.last_resize() {
            if to == current && profile.last_expansion_improved() == Some(false) {
                return RemapDecision::Shrink { to: from };
            }
        }
    }

    // Shrink rule 2: make room for queued work (CostBenefit keeps the
    // paper's cooperative shrinking; it only gates *expansions*).
    if matches!(policy, RemapPolicy::Paper | RemapPolicy::CostBenefit) {
        if let Some(need) = sys.queue_head_need {
            let pts = profile.shrink_points(current);
            if let Some(pt) = pts.iter().find(|pt| pt.frees + sys.idle_procs >= need) {
                return RemapDecision::Shrink { to: pt.config };
            }
            if let Some(smallest) = profile.smallest_visited() {
                if smallest.procs() < current.procs() {
                    return RemapDecision::Shrink { to: smallest };
                }
            }
            return RemapDecision::NoChange;
        }
    }

    // Expand rule: idle processors, empty queue (Paper), still improving
    // (Paper/NeverShrink); GreedyExpand grows whenever anything is idle.
    let improving = match policy {
        RemapPolicy::GreedyExpand => true,
        _ => profile.last_expansion_improved().unwrap_or(true),
    };
    if improving {
        if let Some(next) = spec.topology.next_config(current, max_procs) {
            let delta = next.procs() - current.procs();
            if delta <= sys.idle_procs
                && (policy != RemapPolicy::CostBenefit
                    || expansion_pays_off(profile, current, next, sys.remaining_iters))
            {
                return RemapDecision::Expand { to: next };
            }
        }
    }
    RemapDecision::NoChange
}

/// Cost-benefit test: optimistic per-iteration gain (ideal speedup from the
/// measured time at `current`) times the remaining iterations must exceed
/// the redistribution cost. Without a cost record for this transition, fall
/// back to the largest cost the job has ever measured (conservative);
/// without any record at all, probe optimistically as the paper's base
/// policy does.
fn expansion_pays_off(
    profile: &JobProfile,
    current: ProcessorConfig,
    next: ProcessorConfig,
    remaining_iters: usize,
) -> bool {
    let Some(t_cur) = profile.time_at(current) else {
        return true;
    };
    let t_next_est = profile
        .time_at(next)
        .unwrap_or(t_cur * current.procs() as f64 / next.procs() as f64);
    let gain_per_iter = t_cur - t_next_est;
    if gain_per_iter <= 0.0 {
        return false;
    }
    let cost = profile.redist_cost(current, next).or_else(|| {
        profile
            .visited()
            .iter()
            .flat_map(|&a| profile.visited().iter().map(move |&b| (a, b)))
            .filter_map(|(a, b)| profile.redist_cost(a, b))
            .fold(None, |acc: Option<f64>, c| Some(acc.map_or(c, |m| m.max(c))))
    });
    match cost {
        Some(c) => gain_per_iter * remaining_iters.max(1) as f64 > c,
        None => true, // nothing measured yet: probe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::profiler::Profiler;
    use crate::topology::TopologyPref;

    fn cfg(r: usize, c: usize) -> ProcessorConfig {
        ProcessorConfig::new(r, c)
    }

    fn lu_spec() -> JobSpec {
        JobSpec::new(
            "LU",
            TopologyPref::Grid {
                problem_size: 12000,
            },
            cfg(1, 2),
            10,
        )
    }

    fn idle(n: usize) -> SystemSnapshot {
        SystemSnapshot {
            idle_procs: n,
            queue_head_need: None,
            remaining_iters: 5,
        }
    }

    #[test]
    fn fresh_job_expands_when_idle_and_no_queue() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(1, 2), 129.63, 0.0);
        let d = decide(&lu_spec(), cfg(1, 2), p.profile(j).unwrap(), &idle(30), 48);
        assert_eq!(d, RemapDecision::Expand { to: cfg(2, 2) });
    }

    #[test]
    fn no_expansion_without_idle_processors() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(1, 2), 129.63, 0.0);
        let d = decide(&lu_spec(), cfg(1, 2), p.profile(j).unwrap(), &idle(1), 48);
        // 1x2 -> 2x2 needs 2 more processors; only 1 idle.
        assert_eq!(d, RemapDecision::NoChange);
    }

    #[test]
    fn no_expansion_when_queue_nonempty() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(1, 2), 129.63, 0.0);
        let sys = SystemSnapshot {
            idle_procs: 30,
            queue_head_need: Some(100), // cannot be satisfied, but blocks expansion
            remaining_iters: 5,
        };
        let d = decide(&lu_spec(), cfg(1, 2), p.profile(j).unwrap(), &sys, 48);
        assert_eq!(d, RemapDecision::NoChange);
    }

    #[test]
    fn unprofitable_expansion_reverts() {
        // The Figure 3(a) trajectory: 12 -> 16 degraded, so revert to 12.
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(3, 4), 69.85, 0.0);
        p.record_resize(
            j,
            crate::profiler::Resize::Expanded {
                from: cfg(3, 4),
                to: cfg(4, 4),
            },
            4.41,
        );
        p.record_iteration(j, cfg(4, 4), 74.91, 4.41);
        let d = decide(&lu_spec(), cfg(4, 4), p.profile(j).unwrap(), &idle(30), 48);
        assert_eq!(d, RemapDecision::Shrink { to: cfg(3, 4) });
    }

    #[test]
    fn held_at_sweet_spot_after_revert() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(3, 4), 69.85, 0.0);
        p.record_resize(
            j,
            crate::profiler::Resize::Expanded {
                from: cfg(3, 4),
                to: cfg(4, 4),
            },
            4.41,
        );
        p.record_iteration(j, cfg(4, 4), 74.91, 4.41);
        p.record_resize(
            j,
            crate::profiler::Resize::Shrunk {
                from: cfg(4, 4),
                to: cfg(3, 4),
            },
            4.41,
        );
        p.record_iteration(j, cfg(3, 4), 69.85, 4.41);
        // Last expansion (3x4 -> 4x4) did not improve: expansion stays
        // blocked even with the whole cluster idle.
        let d = decide(&lu_spec(), cfg(3, 4), p.profile(j).unwrap(), &idle(36), 48);
        assert_eq!(d, RemapDecision::NoChange);
    }

    #[test]
    fn shrinks_to_largest_config_that_frees_enough() {
        let mut p = Profiler::new();
        let j = JobId(1);
        for (c, t) in [(cfg(1, 2), 129.6), (cfg(2, 2), 112.5), (cfg(2, 3), 82.3), (cfg(3, 3), 79.6)] {
            p.record_iteration(j, c, t, 0.0);
        }
        let sys = SystemSnapshot {
            idle_procs: 0,
            queue_head_need: Some(3),
            remaining_iters: 5,
        };
        let d = decide(&lu_spec(), cfg(3, 3), p.profile(j).unwrap(), &sys, 48);
        // 2x3 frees 3 procs — the largest visited config that satisfies the
        // queued job (2x2 would free 5, needlessly hurting this job).
        assert_eq!(d, RemapDecision::Shrink { to: cfg(2, 3) });
    }

    #[test]
    fn idle_procs_count_toward_queued_need() {
        let mut p = Profiler::new();
        let j = JobId(1);
        for (c, t) in [(cfg(2, 2), 112.5), (cfg(2, 3), 82.3)] {
            p.record_iteration(j, c, t, 0.0);
        }
        let sys = SystemSnapshot {
            idle_procs: 2,
            queue_head_need: Some(4),
            remaining_iters: 5,
        };
        // Shrinking 2x3 -> 2x2 frees 2; with 2 idle that covers the need.
        let d = decide(&lu_spec(), cfg(2, 3), p.profile(j).unwrap(), &sys, 48);
        assert_eq!(d, RemapDecision::Shrink { to: cfg(2, 2) });
    }

    #[test]
    fn falls_back_to_smallest_when_cannot_free_enough() {
        let mut p = Profiler::new();
        let j = JobId(1);
        for (c, t) in [(cfg(1, 2), 129.6), (cfg(2, 2), 112.5), (cfg(2, 3), 82.3)] {
            p.record_iteration(j, c, t, 0.0);
        }
        let sys = SystemSnapshot {
            idle_procs: 0,
            queue_head_need: Some(30),
            remaining_iters: 5,
        };
        let d = decide(&lu_spec(), cfg(2, 3), p.profile(j).unwrap(), &sys, 48);
        assert_eq!(d, RemapDecision::Shrink { to: cfg(1, 2) });
    }

    #[test]
    fn job_at_starting_size_cannot_shrink() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(1, 2), 129.6, 0.0);
        let sys = SystemSnapshot {
            idle_procs: 0,
            queue_head_need: Some(4),
            remaining_iters: 5,
        };
        let d = decide(&lu_spec(), cfg(1, 2), p.profile(j).unwrap(), &sys, 48);
        assert_eq!(d, RemapDecision::NoChange);
    }

    #[test]
    fn static_jobs_never_resize() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(1, 2), 129.6, 0.0);
        let d = decide(
            &lu_spec().static_job(),
            cfg(1, 2),
            p.profile(j).unwrap(),
            &idle(36),
            48,
        );
        assert_eq!(d, RemapDecision::NoChange);
    }

    #[test]
    fn re_expansion_allowed_after_queue_shrink() {
        // W1 behaviour: LU shrinks for queued jobs, then grows back once the
        // cluster drains (its last *expansion* had improved).
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(2, 2), 112.5, 0.0);
        p.record_resize(j, crate::profiler::Resize::Expanded { from: cfg(2, 2), to: cfg(2, 3) }, 7.7);
        p.record_iteration(j, cfg(2, 3), 82.3, 7.7);
        p.record_resize(j, crate::profiler::Resize::Shrunk { from: cfg(2, 3), to: cfg(2, 2) }, 7.7);
        p.record_iteration(j, cfg(2, 2), 112.5, 7.7);
        let d = decide(&lu_spec(), cfg(2, 2), p.profile(j).unwrap(), &idle(36), 48);
        assert_eq!(d, RemapDecision::Expand { to: cfg(2, 3) });
    }

    #[test]
    fn cost_benefit_blocks_unamortizable_expansion() {
        // Measured: 1x2 -> 2x2 cost 8 s, gain per iteration ~1 s. With only
        // 3 iterations left the expansion cannot pay for itself.
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(2, 2), 10.0, 0.0);
        p.record_resize(
            j,
            crate::profiler::Resize::Expanded { from: cfg(2, 2), to: cfg(2, 3) },
            8.0,
        );
        p.record_iteration(j, cfg(2, 3), 9.0, 8.0);
        // Gain to next config (3x3, est. 9*6/9 = 6 s/iter → 3 s/iter gain):
        // amortized over `remaining` iterations against the measured 8 s.
        let sys_few = SystemSnapshot {
            idle_procs: 30,
            queue_head_need: None,
            remaining_iters: 2, // 2 * 3 = 6 < 8 → hold
        };
        let d = decide_with(
            RemapPolicy::CostBenefit,
            &lu_spec(),
            cfg(2, 3),
            p.profile(j).unwrap(),
            &sys_few,
            48,
        );
        assert_eq!(d, RemapDecision::NoChange);
        let sys_many = SystemSnapshot {
            remaining_iters: 5, // 5 * 3 = 15 > 8 → expand
            ..sys_few
        };
        let d = decide_with(
            RemapPolicy::CostBenefit,
            &lu_spec(),
            cfg(2, 3),
            p.profile(j).unwrap(),
            &sys_many,
            48,
        );
        assert_eq!(d, RemapDecision::Expand { to: cfg(3, 3) });
    }

    #[test]
    fn cost_benefit_probes_when_nothing_is_measured() {
        // First resize point: no redistribution cost on record — behave
        // like the paper's optimistic probe.
        let mut p = Profiler::new();
        let j = JobId(2);
        p.record_iteration(j, cfg(1, 2), 100.0, 0.0);
        let sys = SystemSnapshot {
            idle_procs: 30,
            queue_head_need: None,
            remaining_iters: 9,
        };
        let d = decide_with(
            RemapPolicy::CostBenefit,
            &lu_spec(),
            cfg(1, 2),
            p.profile(j).unwrap(),
            &sys,
            48,
        );
        assert_eq!(d, RemapDecision::Expand { to: cfg(2, 2) });
    }

    #[test]
    fn expansion_capped_by_max_procs() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(6, 6), 40.0, 0.0);
        // Next config 6x8 = 48 > cap 36.
        let d = decide(&lu_spec(), cfg(6, 6), p.profile(j).unwrap(), &idle(36), 36);
        assert_eq!(d, RemapDecision::NoChange);
    }
}
