//! Job model: what the scheduler knows about an application.

use serde::{Deserialize, Serialize};

use crate::topology::{ProcessorConfig, TopologyPref};

/// Scheduler-assigned job identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Everything submitted with a job (the command line + configuration file of
/// the paper's submission process).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable name ("LU", "Jacobi", ...).
    pub name: String,
    /// Topology preference / legal-configuration generator.
    pub topology: TopologyPref,
    /// Requested initial configuration (the paper's jobs start at the
    /// smallest configuration that fits the data).
    pub initial: ProcessorConfig,
    /// Number of outer iterations (all paper experiments use 10).
    pub iterations: usize,
    /// Whether the job is resizable. Statically scheduled jobs keep their
    /// initial allocation for their whole lifetime.
    pub resizable: bool,
    /// Scheduling priority; higher values queue ahead of lower ones and
    /// their processor needs drive the shrink-for-queue rule first (the
    /// paper's future-work "quality of service" knob).
    #[serde(default)]
    pub priority: u8,
    /// Whether the application runs with buddy redundancy and can survive a
    /// node loss by force-shrinking onto its surviving ranks. For such jobs
    /// the System Monitor leaves crash handling to the driver's recovery
    /// path instead of failing the job on the first dead process.
    #[serde(default)]
    pub survivable: bool,
}

impl JobSpec {
    pub fn new(
        name: impl Into<String>,
        topology: TopologyPref,
        initial: ProcessorConfig,
        iterations: usize,
    ) -> Self {
        let spec = JobSpec {
            name: name.into(),
            topology,
            initial,
            iterations,
            resizable: true,
            priority: 0,
            survivable: false,
        };
        assert!(
            spec.topology.is_legal(spec.initial),
            "initial configuration {} is not legal for {}",
            spec.initial,
            spec.name
        );
        spec
    }

    /// Mark the job as statically scheduled (baseline runs).
    pub fn static_job(mut self) -> Self {
        self.resizable = false;
        self
    }

    /// Set the scheduling priority (higher queues first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Opt the job into shrink-to-survivors recovery: the driver maintains
    /// buddy copies of its panels and a node loss force-shrinks the job
    /// instead of failing it (as long as redundancy holds).
    pub fn survivable(mut self) -> Self {
        self.survivable = true;
        self
    }
}

/// Lifecycle state of a job inside the scheduler.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting for its initial allocation.
    Queued,
    /// Running on the given configuration.
    Running { config: ProcessorConfig },
    /// Completed normally at the given virtual/wall time.
    Finished { at: f64 },
    /// Terminated by an application error.
    Failed { at: f64, reason: String },
    /// Cancelled by the user (queued jobs leave immediately; running jobs
    /// acknowledge at their next resize point).
    Cancelled { at: f64 },
}

impl JobState {
    pub fn is_active(&self) -> bool {
        matches!(self, JobState::Queued | JobState::Running { .. })
    }

    /// Terminal states (finished, failed or cancelled).
    pub fn is_terminal(&self) -> bool {
        !self.is_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates_initial_config() {
        let spec = JobSpec::new(
            "LU",
            TopologyPref::Grid { problem_size: 8000 },
            ProcessorConfig::new(2, 2),
            10,
        );
        assert!(spec.resizable);
        assert_eq!(spec.initial.procs(), 4);
    }

    #[test]
    #[should_panic(expected = "not legal")]
    fn spec_rejects_illegal_initial() {
        JobSpec::new(
            "LU",
            TopologyPref::Grid { problem_size: 8000 },
            ProcessorConfig::new(3, 3),
            10,
        );
    }

    #[test]
    fn static_marker() {
        let spec = JobSpec::new(
            "FFT",
            TopologyPref::Linear {
                problem_size: 8192,
                even_only: true,
            },
            ProcessorConfig::linear(2),
            10,
        )
        .static_job();
        assert!(!spec.resizable);
    }

    #[test]
    fn state_activity() {
        assert!(JobState::Queued.is_active());
        assert!(JobState::Running {
            config: ProcessorConfig::linear(4)
        }
        .is_active());
        assert!(!JobState::Finished { at: 1.0 }.is_active());
        assert!(!JobState::Failed {
            at: 1.0,
            reason: "x".into()
        }
        .is_active());
    }
}
