//! The Performance Profiler (paper §3.1): remembers, for every job, the
//! iteration time at every processor configuration it has run on, the
//! measured redistribution costs between configurations, and the possible
//! shrink points with their expected performance degradation.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::job::JobId;
use crate::topology::ProcessorConfig;

/// One recorded iteration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfRecord {
    pub config: ProcessorConfig,
    pub iter_time: f64,
    /// Redistribution cost paid just before this iteration (0 if none).
    pub redist_time: f64,
}

/// The most recent resize a job performed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Resize {
    Expanded {
        from: ProcessorConfig,
        to: ProcessorConfig,
    },
    Shrunk {
        from: ProcessorConfig,
        to: ProcessorConfig,
    },
}

/// A configuration a job could shrink to, with the anticipated impact.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShrinkPoint {
    pub config: ProcessorConfig,
    /// Processors the job would relinquish relative to its current size.
    pub frees: usize,
    /// Expected iteration-time increase (seconds; negative would mean the
    /// smaller configuration was actually faster).
    pub degradation: f64,
}

/// Per-job performance bookkeeping.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    history: Vec<PerfRecord>,
    /// Aggregated (sum, count) iteration time per configuration.
    stats: HashMap<ProcessorConfig, (f64, usize)>,
    /// Configurations in first-visit order.
    visited: Vec<ProcessorConfig>,
    /// Measured redistribution seconds between configuration pairs.
    redist_costs: HashMap<(ProcessorConfig, ProcessorConfig), f64>,
    last_resize: Option<Resize>,
    /// Set when the job's most recent expansion attempt could not be
    /// actuated (spawn failure) and the job reverted to `from`. Cleared by
    /// the next successful resize or a phase change.
    failed_expansion: Option<(ProcessorConfig, ProcessorConfig)>,
}

impl JobProfile {
    /// Mean iteration time observed at `config`.
    pub fn time_at(&self, config: ProcessorConfig) -> Option<f64> {
        self.stats.get(&config).map(|&(sum, n)| sum / n as f64)
    }

    pub fn visited(&self) -> &[ProcessorConfig] {
        &self.visited
    }

    pub fn history(&self) -> &[PerfRecord] {
        &self.history
    }

    pub fn last_resize(&self) -> Option<Resize> {
        self.last_resize
    }

    /// Has this job ever grown its processor set?
    pub fn ever_expanded(&self) -> bool {
        self.history
            .windows(2)
            .any(|w| w[1].config.procs() > w[0].config.procs())
            || matches!(self.last_resize, Some(Resize::Expanded { .. }))
    }

    /// The expansion that most recently failed to actuate, as `(from, to)`,
    /// if the job is currently under a failed-expansion verdict.
    pub fn failed_expansion(&self) -> Option<(ProcessorConfig, ProcessorConfig)> {
        self.failed_expansion
    }

    /// Did the most recent expansion reduce the iteration time? `None` if
    /// the job never expanded or the expanded configuration has not been
    /// measured yet.
    pub fn last_expansion_improved(&self) -> Option<bool> {
        // An expansion that could not even be actuated (spawn failure) is
        // judged "did not help", so the §3.1 policy stops re-probing it.
        if self.failed_expansion.is_some() {
            return Some(false);
        }
        // If the latest resize was an expansion, judge it directly.
        if let Some(Resize::Expanded { from, to }) = self.last_resize {
            if self.time_at(to).is_some() {
                return Some(self.expansion_improved(from, to));
            }
            // Not measured yet (cannot happen through the normal
            // record-then-decide flow); fall through to the history scan.
        }
        // Otherwise find the most recent processor-count increase in the
        // iteration history (the latest resize may have been a shrink).
        let mut last_exp: Option<(ProcessorConfig, ProcessorConfig)> = None;
        for w in self.history.windows(2) {
            if w[1].config.procs() > w[0].config.procs() {
                last_exp = Some((w[0].config, w[1].config));
            }
        }
        last_exp.map(|(f, t)| self.expansion_improved(f, t))
    }

    fn expansion_improved(&self, from: ProcessorConfig, to: ProcessorConfig) -> bool {
        match (self.time_at(from), self.time_at(to)) {
            (Some(a), Some(b)) => b < a,
            // Not measured yet: be optimistic, matching the paper's "grow
            // while improving" probe.
            _ => true,
        }
    }

    /// Shrink points relative to `current`: every previously visited smaller
    /// configuration, largest first, with the expected degradation
    /// ("applications can only shrink to processor configurations on which
    /// they have previously run").
    pub fn shrink_points(&self, current: ProcessorConfig) -> Vec<ShrinkPoint> {
        let cur_time = self.time_at(current);
        let mut pts: Vec<ShrinkPoint> = self
            .visited
            .iter()
            .filter(|c| c.procs() < current.procs())
            .map(|&c| ShrinkPoint {
                config: c,
                frees: current.procs() - c.procs(),
                degradation: match (self.time_at(c), cur_time) {
                    (Some(t), Some(ct)) => t - ct,
                    _ => 0.0,
                },
            })
            .collect();
        pts.sort_by_key(|pt| std::cmp::Reverse(pt.config.procs()));
        pts
    }

    /// The smallest configuration ever used (the job's "starting processor
    /// set" in the paper's smallest-shrink-point rule).
    pub fn smallest_visited(&self) -> Option<ProcessorConfig> {
        self.visited.iter().copied().min_by_key(|c| c.procs())
    }

    /// Measured redistribution cost between two configurations, if any.
    pub fn redist_cost(&self, from: ProcessorConfig, to: ProcessorConfig) -> Option<f64> {
        self.redist_costs.get(&(from, to)).copied()
    }
}

/// The profiler proper: one [`JobProfile`] per job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profiler {
    jobs: HashMap<JobId, JobProfile>,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed iteration (called from the Remap Scheduler when an
    /// application checks in at a resize point).
    pub fn record_iteration(
        &mut self,
        job: JobId,
        config: ProcessorConfig,
        iter_time: f64,
        redist_time: f64,
    ) {
        let p = self.jobs.entry(job).or_default();
        if !p.visited.contains(&config) {
            p.visited.push(config);
        }
        let (sum, n) = p.stats.entry(config).or_insert((0.0, 0));
        *sum += iter_time;
        *n += 1;
        p.history.push(PerfRecord {
            config,
            iter_time,
            redist_time,
        });
    }

    /// Record an actuated resize and its measured redistribution cost.
    pub fn record_resize(&mut self, job: JobId, resize: Resize, redist_seconds: f64) {
        let p = self.jobs.entry(job).or_default();
        let (from, to) = match resize {
            Resize::Expanded { from, to } | Resize::Shrunk { from, to } => (from, to),
        };
        p.redist_costs.insert((from, to), redist_seconds);
        p.last_resize = Some(resize);
        // A successfully actuated resize supersedes any failed-expansion
        // verdict.
        p.failed_expansion = None;
    }

    /// Record that `job`'s expansion `from -> to` failed to actuate and the
    /// job reverted to `from`. Until the next successful resize (or a phase
    /// change) the profile reports `last_expansion_improved() == Some(false)`
    /// so the Remap Scheduler treats the attempt exactly like an expansion
    /// that did not help.
    pub fn mark_expansion_failed(
        &mut self,
        job: JobId,
        from: ProcessorConfig,
        to: ProcessorConfig,
    ) {
        let p = self.jobs.entry(job).or_default();
        p.failed_expansion = Some((from, to));
        p.last_resize = None;
    }

    pub fn profile(&self, job: JobId) -> Option<&JobProfile> {
        self.jobs.get(&job)
    }

    /// Every tracked job with its profile (iteration order unspecified).
    pub fn profiles(&self) -> impl Iterator<Item = (&JobId, &JobProfile)> {
        self.jobs.iter()
    }

    /// Profile accessor that creates an empty profile on first touch.
    pub fn profile_mut(&mut self, job: JobId) -> &mut JobProfile {
        self.jobs.entry(job).or_default()
    }

    pub fn forget(&mut self, job: JobId) {
        self.jobs.remove(&job);
    }

    /// Drop a job's timing history (iteration records, per-config stats,
    /// visited configurations, last-resize verdict) while keeping its
    /// measured redistribution costs. Used at application phase changes,
    /// where previous iteration times stop being predictive.
    pub fn reset_timing(&mut self, job: JobId) {
        if let Some(p) = self.jobs.get_mut(&job) {
            p.history.clear();
            p.stats.clear();
            p.visited.clear();
            p.last_resize = None;
            p.failed_expansion = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(r: usize, c: usize) -> ProcessorConfig {
        ProcessorConfig::new(r, c)
    }

    #[test]
    fn records_and_averages() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(1, 2), 10.0, 0.0);
        p.record_iteration(j, cfg(1, 2), 12.0, 0.0);
        let prof = p.profile(j).unwrap();
        assert_eq!(prof.time_at(cfg(1, 2)), Some(11.0));
        assert_eq!(prof.visited(), &[cfg(1, 2)]);
        assert_eq!(prof.history().len(), 2);
    }

    #[test]
    fn expansion_improvement_detection() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(1, 2), 100.0, 0.0);
        assert_eq!(p.profile(j).unwrap().last_expansion_improved(), None);
        assert!(!p.profile(j).unwrap().ever_expanded());

        p.record_resize(
            j,
            Resize::Expanded {
                from: cfg(1, 2),
                to: cfg(2, 2),
            },
            5.0,
        );
        p.record_iteration(j, cfg(2, 2), 80.0, 5.0);
        let prof = p.profile(j).unwrap();
        assert!(prof.ever_expanded());
        assert_eq!(prof.last_expansion_improved(), Some(true));
        assert_eq!(prof.redist_cost(cfg(1, 2), cfg(2, 2)), Some(5.0));
    }

    #[test]
    fn failed_expansion_detected() {
        let mut p = Profiler::new();
        let j = JobId(1);
        p.record_iteration(j, cfg(3, 4), 69.85, 0.0);
        p.record_resize(
            j,
            Resize::Expanded {
                from: cfg(3, 4),
                to: cfg(4, 4),
            },
            4.41,
        );
        p.record_iteration(j, cfg(4, 4), 74.91, 4.41);
        assert_eq!(p.profile(j).unwrap().last_expansion_improved(), Some(false));
    }

    #[test]
    fn shrink_points_are_visited_configs_largest_first() {
        let mut p = Profiler::new();
        let j = JobId(1);
        for (c, t) in [(cfg(1, 2), 100.0), (cfg(2, 2), 70.0), (cfg(2, 3), 55.0), (cfg(3, 3), 50.0)] {
            p.record_iteration(j, c, t, 0.0);
        }
        let pts = p.profile(j).unwrap().shrink_points(cfg(3, 3));
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].config, cfg(2, 3));
        assert_eq!(pts[0].frees, 3);
        assert!((pts[0].degradation - 5.0).abs() < 1e-12);
        assert_eq!(pts[2].config, cfg(1, 2));
        assert_eq!(pts[2].frees, 7);
        assert_eq!(
            p.profile(j).unwrap().smallest_visited(),
            Some(cfg(1, 2))
        );
    }

    #[test]
    fn unexpanded_job_has_no_expansion_verdict() {
        let mut p = Profiler::new();
        let j = JobId(9);
        p.record_iteration(j, cfg(2, 2), 50.0, 0.0);
        // A shrink does not count as an expansion.
        p.record_resize(
            j,
            Resize::Shrunk {
                from: cfg(2, 2),
                to: cfg(1, 2),
            },
            2.0,
        );
        p.record_iteration(j, cfg(1, 2), 90.0, 2.0);
        assert_eq!(p.profile(j).unwrap().last_expansion_improved(), None);
    }

    #[test]
    fn expansion_after_shrink_uses_latest_expansion() {
        let mut p = Profiler::new();
        let j = JobId(2);
        p.record_iteration(j, cfg(2, 2), 50.0, 0.0);
        p.record_resize(j, Resize::Expanded { from: cfg(2, 2), to: cfg(2, 3) }, 1.0);
        p.record_iteration(j, cfg(2, 3), 40.0, 1.0);
        p.record_resize(j, Resize::Shrunk { from: cfg(2, 3), to: cfg(2, 2) }, 1.0);
        p.record_iteration(j, cfg(2, 2), 50.0, 1.0);
        // Latest expansion (2x2 -> 2x3) improved, so the job may grow again.
        assert_eq!(p.profile(j).unwrap().last_expansion_improved(), Some(true));
    }

    #[test]
    fn reset_timing_keeps_redistribution_costs() {
        let mut p = Profiler::new();
        let j = JobId(3);
        p.record_iteration(j, cfg(2, 2), 50.0, 0.0);
        p.record_resize(j, Resize::Expanded { from: cfg(2, 2), to: cfg(2, 3) }, 4.0);
        p.record_iteration(j, cfg(2, 3), 40.0, 4.0);
        p.reset_timing(j);
        let prof = p.profile(j).unwrap();
        assert!(prof.history().is_empty());
        assert!(prof.visited().is_empty());
        assert_eq!(prof.last_resize(), None);
        assert_eq!(prof.last_expansion_improved(), None);
        // The measured cost survives — it is layout physics, not phase
        // performance.
        assert_eq!(prof.redist_cost(cfg(2, 2), cfg(2, 3)), Some(4.0));
    }

    #[test]
    fn failed_expansion_counts_as_not_improved() {
        let mut p = Profiler::new();
        let j = JobId(5);
        p.record_iteration(j, cfg(2, 2), 50.0, 0.0);
        p.mark_expansion_failed(j, cfg(2, 2), cfg(2, 4));
        let prof = p.profile(j).unwrap();
        assert_eq!(prof.failed_expansion(), Some((cfg(2, 2), cfg(2, 4))));
        assert_eq!(prof.last_expansion_improved(), Some(false));
        // A later successful resize clears the verdict.
        p.record_resize(j, Resize::Expanded { from: cfg(2, 2), to: cfg(4, 4) }, 1.0);
        assert_eq!(p.profile(j).unwrap().failed_expansion(), None);
        // ...and a phase change does too.
        p.mark_expansion_failed(j, cfg(2, 2), cfg(2, 4));
        p.reset_timing(j);
        assert_eq!(p.profile(j).unwrap().failed_expansion(), None);
        assert_eq!(p.profile(j).unwrap().last_expansion_improved(), None);
    }

    #[test]
    fn reset_timing_on_unknown_job_is_noop() {
        let mut p = Profiler::new();
        p.reset_timing(JobId(99));
        assert!(p.profile(JobId(99)).is_none());
    }

    #[test]
    fn forget_clears_state() {
        let mut p = Profiler::new();
        p.record_iteration(JobId(1), cfg(1, 2), 1.0, 0.0);
        p.forget(JobId(1));
        assert!(p.profile(JobId(1)).is_none());
    }
}
