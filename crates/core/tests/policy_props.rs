//! Property tests for the §3.1 remap decision (`core::policy`): over random
//! profile trajectories,
//!
//! * the decision is *monotone in idle processors* — granting the scheduler
//!   more idle capacity can never flip an expansion into a shrink (an
//!   expansion stays exactly the same expansion);
//! * a non-empty queue never yields an expansion (the paper's rule 2:
//!   expand only when no jobs are waiting).

use proptest::collection::vec;
use proptest::prelude::*;
use reshape_core::{
    decide, JobId, JobSpec, ProcessorConfig, Profiler, RemapDecision, Resize, SystemSnapshot,
    TopologyPref,
};

/// Replay a random walk along the job's configuration chain, recording
/// iterations and resizes, and return (profiler, current configuration).
fn build_profile(spec: &JobSpec, moves: &[(u8, f64)], max_procs: usize) -> (Profiler, ProcessorConfig) {
    let chain = spec.topology.chain_from(spec.initial, max_procs);
    let job = JobId(1);
    let mut prof = Profiler::new();
    let mut pos = 0usize;
    prof.record_iteration(job, chain[0], 100.0, 0.0);
    for &(mv, t) in moves {
        match mv {
            1 if pos + 1 < chain.len() => {
                prof.record_resize(
                    job,
                    Resize::Expanded {
                        from: chain[pos],
                        to: chain[pos + 1],
                    },
                    1.0,
                );
                pos += 1;
                prof.record_iteration(job, chain[pos], t, 1.0);
            }
            2 if pos > 0 => {
                prof.record_resize(
                    job,
                    Resize::Shrunk {
                        from: chain[pos],
                        to: chain[pos - 1],
                    },
                    1.0,
                );
                pos -= 1;
                prof.record_iteration(job, chain[pos], t, 1.0);
            }
            _ => prof.record_iteration(job, chain[pos], t, 0.0),
        }
    }
    (prof, chain[pos])
}

fn spec() -> JobSpec {
    JobSpec::new(
        "LU",
        TopologyPref::Grid { problem_size: 8000 },
        ProcessorConfig::new(1, 2),
        10,
    )
}

const MAX_PROCS: usize = 40;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn more_idle_processors_never_flip_expand_to_shrink(
        moves in vec((0u8..3, 1.0f64..200.0), 0..12),
        idle in 0usize..40,
        extra in 1usize..60,
    ) {
        let spec = spec();
        let (prof, current) = build_profile(&spec, &moves, MAX_PROCS);
        let profile = prof.profile(JobId(1)).expect("recorded");
        let base = decide(
            &spec,
            current,
            profile,
            &SystemSnapshot { idle_procs: idle, queue_head_need: None, remaining_iters: 5 },
            MAX_PROCS,
        );
        let richer = decide(
            &spec,
            current,
            profile,
            &SystemSnapshot { idle_procs: idle + extra, queue_head_need: None, remaining_iters: 5 },
            MAX_PROCS,
        );
        if let RemapDecision::Expand { to } = &base {
            // With more idle capacity the same expansion must stand.
            prop_assert_eq!(
                &richer,
                &RemapDecision::Expand { to: *to },
                "idle {} -> {} changed the expansion", idle, idle + extra
            );
        }
        // And regardless of the base decision, extra idle capacity never
        // *introduces* a shrink: shrink triggers (unprofitable expansion,
        // queued demand) do not depend on idle processors growing.
        if !matches!(base, RemapDecision::Shrink { .. }) {
            prop_assert!(
                !matches!(richer, RemapDecision::Shrink { .. }),
                "adding {} idle processors introduced a shrink", extra
            );
        }
    }

    #[test]
    fn nonempty_queue_never_yields_expansion(
        moves in vec((0u8..3, 1.0f64..200.0), 0..12),
        idle in 0usize..40,
        need in 1usize..64,
    ) {
        let spec = spec();
        let (prof, current) = build_profile(&spec, &moves, MAX_PROCS);
        let profile = prof.profile(JobId(1)).expect("recorded");
        let d = decide(
            &spec,
            current,
            profile,
            &SystemSnapshot { idle_procs: idle, queue_head_need: Some(need), remaining_iters: 5 },
            MAX_PROCS,
        );
        prop_assert!(
            !matches!(d, RemapDecision::Expand { .. }),
            "expanded past a queued job needing {}: {:?}", need, d
        );
    }
}
