//! Telemetry under fault injection: a spawn shortfall and a node crash must
//! leave a visible trail — `spawn_fault` / `recovery` journal events, the
//! fault counters, and a JSONL export in which every line still parses and
//! carries the `type` tag the CI validator keys on.
//!
//! Both fault scenarios live in one test function: the telemetry mode,
//! registry, and journal are process-global, and this integration binary is
//! the only place in `reshape-core` that turns recording on.

use std::time::{Duration, Instant};

use reshape_blockcyclic::{Descriptor, DistMatrix};
use reshape_core::driver::AppDef;
use reshape_core::runtime::ReshapeRuntime;
use reshape_core::{JobSpec, JobState, ProcessorConfig, QueuePolicy, TopologyPref};
use reshape_mpisim::{NetModel, NodeId, Universe};
use reshape_telemetry::Event;

fn toy(n: usize, per_iter: f64) -> AppDef {
    AppDef::new(
        move |grid| {
            let desc = Descriptor::square(n, 2, grid.nprow(), grid.npcol());
            vec![DistMatrix::from_fn(desc, grid.myrow(), grid.mycol(), |i, j| {
                (i + j) as f64
            })]
        },
        move |grid, _m, _it| {
            let p = (grid.nprow() * grid.npcol()) as f64;
            grid.comm().advance(per_iter / p);
        },
    )
}

#[test]
fn injected_faults_leave_a_complete_telemetry_trail() {
    reshape_telemetry::set_mode(reshape_telemetry::Mode::Json);
    reshape_telemetry::drain_journal();

    // Scenario 1 — every expansion spawn is denied: the job must finish on
    // its original configuration, journaling the spawn fault and the
    // revert-expansion recovery along the way.
    {
        let uni = Universe::new(8, 1, NetModel::ideal());
        // Deny every attempt the default retry policy will make, so the
        // expansion is ultimately reverted (not rescued by a retry).
        uni.inject_spawn_cap(0);
        uni.inject_spawn_cap(0);
        uni.inject_spawn_cap(0);
        let rt = ReshapeRuntime::new(uni, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "short-grant",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(1, 2),
            5,
        );
        let job = rt.submit(spec, toy(8, 1.0));
        let state = rt.wait_for(job, Duration::from_secs(30)).unwrap();
        assert!(matches!(state, JobState::Finished { .. }), "{state:?}");
        // Scenario teardown: drop any unconsumed injected faults so they
        // cannot leak into runtime shutdown (or a later scenario).
        rt.universe().clear_faults();
    }

    // Scenario 2 — a node crash kills a static job mid-run: the monitor
    // reports the failure and the scheduler reclaims, journaling the
    // reclaim recovery.
    {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.inject_node_crash(NodeId(1), 0.5);
        let rt = ReshapeRuntime::new(uni, QueuePolicy::Fcfs);
        let spec = JobSpec::new(
            "crashy",
            TopologyPref::Grid { problem_size: 8 },
            ProcessorConfig::new(2, 2),
            50,
        )
        .static_job();
        let job = rt.submit(spec, toy(8, 1.0));
        let state = rt.wait_for(job, Duration::from_secs(30)).unwrap();
        assert!(matches!(state, JobState::Failed { .. }), "{state:?}");
        // Reclamation happens on the scheduler thread shortly after.
        let deadline = Instant::now() + Duration::from_secs(10);
        while rt.core().lock().idle_procs() != 4 {
            assert!(Instant::now() < deadline, "crashed job never reclaimed");
            std::thread::sleep(Duration::from_millis(5));
        }
        rt.universe().clear_faults();
    }

    // The journal saw both fault kinds and both recovery actions.
    let events = reshape_telemetry::snapshot_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::SpawnFault { requested, granted, .. }
                if granted < requested)),
        "no spawn_fault event journaled"
    );
    let recovery_action = |want: &str| {
        events.iter().any(
            |e| matches!(e, Event::Recovery { action, freed, .. } if action == want && *freed > 0),
        )
    };
    assert!(
        recovery_action("revert_failed_expansion"),
        "no revert_failed_expansion recovery journaled"
    );
    assert!(
        recovery_action("reclaim_failed_job"),
        "no reclaim_failed_job recovery journaled"
    );

    // The fault counters moved.
    for name in ["mpisim.spawn_shortfalls", "core.expand_failures", "core.job_failures"] {
        assert!(
            reshape_telemetry::counter(name).get() > 0,
            "counter {name} never incremented"
        );
    }

    // The JSONL export still honors the schema the CI validator checks:
    // every line is a JSON object with a `type` tag, the fault/recovery
    // records are present, and the final line is the metrics summary.
    let jsonl = reshape_telemetry::json_lines();
    let mut kinds = std::collections::BTreeSet::new();
    for line in jsonl.lines() {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("unparseable telemetry line ({e}): {line}"));
        let ty = v
            .get("type")
            .and_then(|t| t.as_str())
            .unwrap_or_else(|| panic!("telemetry line missing type tag: {line}"));
        kinds.insert(ty.to_string());
    }
    for required in ["spawn_fault", "recovery", "metrics"] {
        assert!(kinds.contains(required), "JSONL missing {required}: {kinds:?}");
    }
    assert!(
        jsonl.lines().last().unwrap().contains("\"type\":\"metrics\""),
        "metrics summary is not the final JSONL line"
    );

    reshape_telemetry::set_mode(reshape_telemetry::Mode::Off);
}
