//! Integration-level WAL durability drills: a scripted mixed history
//! (submissions, resize points, reservations, cancellation, failure,
//! completion) must recover from the WAL's durable *text* form into a core
//! whose snapshot equals the writer's, including under NaN failure
//! timestamps and on a heterogeneous pool whose genesis carries slot
//! speeds. The seeded many-schedule version of this lives in
//! `reshape-testkit`'s crash-restart sweep; these are the hand-written
//! corner cases.

use reshape_core::wal::Wal;
use reshape_core::{JobSpec, ProcessorConfig, QueuePolicy, SchedulerCore, TopologyPref};

fn spec(name: &str, iters: usize) -> JobSpec {
    JobSpec::new(
        name,
        TopologyPref::Grid { problem_size: 8000 },
        ProcessorConfig::new(1, 2),
        iters,
    )
}

/// Round-trip the WAL through its on-disk text encoding and recover.
fn recover_from_text(core: &mut SchedulerCore) -> SchedulerCore {
    let wal = core.take_wal().expect("WAL attached");
    let text = wal.encode();
    let decoded = Wal::decode(&text).expect("durable WAL text reparses");
    SchedulerCore::recover(decoded).expect("recovery succeeds")
}

#[test]
fn scripted_mixed_history_recovers_exactly() {
    let mut core = SchedulerCore::new(12, QueuePolicy::Backfill).with_wal(Wal::in_memory());
    let (a, _) = core.submit(spec("a", 5), 0.0);
    let (b, _) = core.submit(spec("b", 3), 1.0);
    let (c, _) = core.submit(spec("c", 2), 2.0);
    core.resize_point(a, 10.0, 0.0, 3.0);
    core.resize_point(b, 8.0, 0.5, 4.0);
    let _rsv = core.reserve(50.0, 80.0, 4);
    core.resize_point(a, 9.0, 0.0, 5.0);
    core.cancel(c, 6.0);
    core.resize_point(c, 0.0, 0.0, 6.5); // delivers Terminate
    core.on_failed(b, "node died".into(), 7.0);
    core.on_finished(a, 9.0);

    let recovered = recover_from_text(&mut core);
    assert_eq!(recovered.snapshot(), core.snapshot());
    // The WAL stays attached after recovery, so the restarted scheduler
    // keeps journaling.
    assert!(recovered.wal().is_some());
}

#[test]
fn node_failed_record_replays_to_equal_snapshot() {
    let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs).with_wal(Wal::in_memory());
    let spec_a = JobSpec::new(
        "survivor",
        TopologyPref::Grid { problem_size: 8000 },
        ProcessorConfig::new(2, 2),
        6,
    )
    .survivable();
    let (a, s) = core.submit(spec_a, 0.0);
    core.resize_point(a, 10.0, 0.0, 1.0);
    // A node dies under the job; the driver recovered onto 2 survivors and
    // reports the forced shrink.
    let dead: Vec<usize> = s[0].slots[..2].to_vec();
    core.on_node_failed(a, &dead, ProcessorConfig::new(1, 2), 2.0);
    // Life goes on at the degraded size: another resize point, then done.
    core.resize_point(a, 11.0, 0.0, 3.0);
    core.on_finished(a, 9.0);

    let recovered = recover_from_text(&mut core);
    assert_eq!(recovered.snapshot(), core.snapshot());
}

#[test]
fn nan_failure_timestamps_are_sanitized_for_replay() {
    let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs).with_wal(Wal::in_memory());
    let (a, _) = core.submit(spec("a", 5), 0.0);
    core.resize_point(a, 10.0, 0.0, 1.0);
    // The threaded runtime's monitor stamps failures with NaN when no
    // virtual clock is available; serde_json cannot represent NaN, so the
    // logger must clamp it before the record hits the stream.
    core.on_failed(a, "monitor-detected crash".into(), f64::NAN);

    let wal_text = core.wal().expect("WAL attached").encode();
    assert!(
        !wal_text.to_lowercase().contains("nan"),
        "non-finite timestamp leaked into the WAL: {wal_text}"
    );
    let recovered = recover_from_text(&mut core);
    assert_eq!(recovered.snapshot(), core.snapshot());
}

#[test]
fn heterogeneous_pool_genesis_survives_recovery() {
    let speeds: Vec<f64> = (0..8).map(|i| 1.0 + 0.25 * (i % 3) as f64).collect();
    let mut core = SchedulerCore::new(8, QueuePolicy::Fcfs)
        .with_slot_speeds(speeds)
        .with_wal(Wal::in_memory());
    let (a, _) = core.submit(spec("het", 4), 0.0);
    core.resize_point(a, 12.0, 0.0, 1.0);

    let recovered = recover_from_text(&mut core);
    assert_eq!(recovered.snapshot(), core.snapshot());
    for s in 0..8 {
        assert_eq!(
            recovered.slot_speed(s),
            core.slot_speed(s),
            "slot {s} speed lost in the genesis record"
        );
    }
}
