//! Property tests: under arbitrary event sequences, the scheduler never
//! loses or double-books a processor, and job states stay consistent.

use std::collections::HashSet;

use proptest::prelude::*;
use reshape_core::{
    JobId, JobSpec, JobState, ProcessorConfig, QueuePolicy, RemapPolicy, SchedulerCore,
    TopologyPref,
};

#[derive(Clone, Debug)]
enum Op {
    /// Submit a grid job with the given initial square-ish size index.
    Submit { size: usize, priority: u8 },
    /// Finish the i-th live job (mod live count).
    Finish { pick: usize },
    /// Fail the i-th live job.
    Fail { pick: usize },
    /// Resize point for the i-th running job with some iteration time.
    Resize { pick: usize, iter_time: f64 },
    /// Install a reservation for `procs` over a window starting now.
    Reserve { procs: usize, len: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4, 0u8..3).prop_map(|(size, priority)| Op::Submit { size, priority }),
        (0usize..8).prop_map(|pick| Op::Finish { pick }),
        (0usize..8).prop_map(|pick| Op::Fail { pick }),
        (0usize..8, 1.0f64..200.0).prop_map(|(pick, iter_time)| Op::Resize { pick, iter_time }),
        (1usize..12, 10.0f64..500.0).prop_map(|(procs, len)| Op::Reserve { procs, len }),
    ]
}

/// Initial configurations whose divisibility works for problem size 7200.
const SIZES: [(usize, usize); 4] = [(1, 2), (2, 2), (2, 3), (3, 4)];

fn check_invariants(core: &SchedulerCore) {
    let total = core.total_procs();
    assert_eq!(core.busy_procs() + core.idle_procs(), total, "slot count conserved");
    // Every slot assigned to exactly one running job; none out of range.
    let mut seen: HashSet<usize> = HashSet::new();
    let mut busy = 0usize;
    for (id, rec) in core.jobs() {
        match &rec.state {
            JobState::Running { config } => {
                assert_eq!(
                    rec.slots.len(),
                    config.procs(),
                    "{id}: slots must match configuration"
                );
                for &s in &rec.slots {
                    assert!(s < total, "{id}: slot {s} out of range");
                    assert!(seen.insert(s), "{id}: slot {s} double-booked");
                }
                busy += rec.slots.len();
            }
            _ => assert!(rec.slots.is_empty(), "{id}: non-running job holds slots"),
        }
    }
    assert_eq!(busy, core.busy_procs(), "busy count matches slot ownership");
}

fn live_jobs(core: &SchedulerCore) -> Vec<JobId> {
    let mut v: Vec<JobId> = core
        .jobs()
        .filter(|(_, r)| r.state.is_active())
        .map(|(id, _)| *id)
        .collect();
    v.sort();
    v
}

fn running_jobs(core: &SchedulerCore) -> Vec<JobId> {
    let mut v: Vec<JobId> = core
        .jobs()
        .filter(|(_, r)| matches!(r.state, JobState::Running { .. }))
        .map(|(id, _)| *id)
        .collect();
    v.sort();
    v
}

fn run_ops(total: usize, policy: QueuePolicy, remap: RemapPolicy, ops: Vec<Op>) {
    let mut core = SchedulerCore::new(total, policy).with_remap_policy(remap);
    let mut now = 0.0;
    for op in ops {
        now += 1.0;
        match op {
            Op::Submit { size, priority } => {
                let (r, c) = SIZES[size % SIZES.len()];
                let spec = JobSpec::new(
                    "p",
                    TopologyPref::Grid { problem_size: 7200 },
                    ProcessorConfig::new(r, c),
                    1000,
                )
                .with_priority(priority);
                core.submit(spec, now);
            }
            Op::Finish { pick } => {
                let live = live_jobs(&core);
                if !live.is_empty() {
                    core.on_finished(live[pick % live.len()], now);
                }
            }
            Op::Fail { pick } => {
                let live = live_jobs(&core);
                if !live.is_empty() {
                    core.on_failed(live[pick % live.len()], "injected".into(), now);
                }
            }
            Op::Resize { pick, iter_time } => {
                let running = running_jobs(&core);
                if !running.is_empty() {
                    core.resize_point(running[pick % running.len()], iter_time, 0.0, now);
                }
            }
            Op::Reserve { procs, len } => {
                let procs = procs.min(total);
                core.reserve(now, now + len, procs);
            }
        }
        check_invariants(&core);
    }
    // Drain: finish everything, pool must be whole again.
    for id in live_jobs(&core) {
        now += 1.0;
        core.on_finished(id, now);
        check_invariants(&core);
    }
    assert_eq!(core.idle_procs(), total, "all processors returned at the end");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_conserves_slots_fcfs(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        run_ops(16, QueuePolicy::Fcfs, RemapPolicy::Paper, ops);
    }

    #[test]
    fn scheduler_conserves_slots_backfill(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        run_ops(12, QueuePolicy::Backfill, RemapPolicy::Paper, ops);
    }

    #[test]
    fn scheduler_conserves_slots_greedy(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        run_ops(20, QueuePolicy::Fcfs, RemapPolicy::GreedyExpand, ops);
    }

    #[test]
    fn scheduler_conserves_slots_never_shrink(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        run_ops(16, QueuePolicy::Backfill, RemapPolicy::NeverShrink, ops);
    }

    #[test]
    fn utilization_is_a_fraction(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut core = SchedulerCore::new(10, QueuePolicy::Fcfs);
        let mut now = 0.0;
        for op in ops {
            now += 1.0;
            if let Op::Submit { size, priority } = op {
                let (r, c) = SIZES[size % SIZES.len()];
                let spec = JobSpec::new(
                    "u",
                    TopologyPref::Grid { problem_size: 7200 },
                    ProcessorConfig::new(r, c),
                    10,
                )
                .with_priority(priority);
                core.submit(spec, now);
            }
        }
        let u = core.utilization(now + 1.0);
        prop_assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }
}
