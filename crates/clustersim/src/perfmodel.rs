//! Analytic per-application performance models, calibrated to the paper's
//! testbed (System X: 2.3 GHz PowerPC 970 nodes, MPICH2 over Gigabit
//! Ethernet).
//!
//! The cluster simulator runs the *real* ReSHAPE scheduler/profiler/policy
//! code; only the applications are replaced by these models, which map a
//! processor configuration to an iteration time. Redistribution costs are
//! *not* modeled here — they come from the actual communication schedules
//! built by `reshape-redist`, priced under the network model.
//!
//! Calibration targets (see EXPERIMENTS.md): LU iteration times of Figure
//! 3(a) scale, the ~19% improvement for LU-24000 going 16→20 processors
//! (Figure 2a), and the per-application static iteration times implied by
//! Tables 4 and 5.

use reshape_blockcyclic::Descriptor;
use reshape_core::ProcessorConfig;
use reshape_mpisim::NetModel;
use reshape_redist::{checkpoint_cost, evaluate_2d, plan_2d, CheckpointParams, PACK_BANDWIDTH};
use serde::{Deserialize, Serialize};

/// Machine constants for the modeled cluster.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineParams {
    /// Effective per-processor compute rate (flops/s).
    pub rate: f64,
    /// Per-panel pipeline/synchronization cost charged per grid dimension
    /// process per elimination step (absorbs ring-broadcast fill, sync skew
    /// and node sharing — the reason real LU curves flatten and turn).
    pub panel_latency: f64,
    /// Network latency (s) and bandwidth (bytes/s).
    pub latency: f64,
    pub bandwidth: f64,
    /// Checkpoint disk parameters for the baseline redistribution mode.
    pub disk_write_bw: f64,
    pub disk_read_bw: f64,
    /// Effective link efficiency during schedule-based redistribution,
    /// when many streams cross the switch concurrently (TCP/eager-protocol
    /// overhead; calibrated so LU-12000's measured per-expansion costs of
    /// Figure 3(a) — 8.0 s down to 4.4 s — reproduce). The single-stream
    /// checkpoint funnel runs at full wire speed.
    pub redist_efficiency: f64,
}

impl MachineParams {
    /// The paper's System X partition.
    pub fn system_x() -> Self {
        MachineParams {
            rate: 4.4e9,
            panel_latency: 10e-3,
            latency: 50e-6,
            bandwidth: 125e6,
            disk_write_bw: 100e6,
            disk_read_bw: 110e6,
            redist_efficiency: 0.35,
        }
    }

    pub fn net(&self) -> NetModel {
        NetModel {
            latency: self.latency,
            bandwidth: self.bandwidth,
            overhead: 5e-6,
            spawn_overhead: 0.25,
        }
    }

    /// Network model with bandwidth derated by [`Self::redist_efficiency`]
    /// — the effective speed of many-stream redistribution traffic.
    pub fn redist_net(&self) -> NetModel {
        NetModel {
            bandwidth: self.bandwidth * self.redist_efficiency,
            ..self.net()
        }
    }

    pub fn checkpoint_params(&self) -> CheckpointParams {
        CheckpointParams {
            disk_write_bw: self.disk_write_bw,
            disk_read_bw: self.disk_read_bw,
        }
    }
}

/// Block size used by the grid workloads' distributed matrices (the paper's
/// problem sizes are all multiples of 100... and of nothing smaller that
/// divides every grid dimension, so 100 keeps schedules small and exact).
pub const MODEL_BLOCK: usize = 100;

/// Phase-decomposed cost of one modeled redistribution (see
/// [`AppModel::redist_profile`]). `total_seconds` equals
/// [`AppModel::redist_cost`] for the same pair of configurations; the phase
/// fields decompose it minus the spawn overhead.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RedistProfile {
    /// Bytes that cross the network, over all redistributed arrays.
    pub bytes: u64,
    /// Communication steps over all redistributed arrays.
    pub plan_steps: u64,
    /// Individual block transfers over all redistributed arrays.
    pub transfers: u64,
    pub pack_seconds: f64,
    pub transfer_seconds: f64,
    pub unpack_seconds: f64,
    /// Modeled wall-clock total, including spawn overhead on expansion.
    pub total_seconds: f64,
}

/// Performance model of one workload application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AppModel {
    /// Blocked LU factorization of an `n × n` matrix per iteration.
    Lu { n: usize },
    /// SUMMA multiply of `n × n` matrices per iteration.
    Mm { n: usize },
    /// `sweeps` dense-Jacobi sweeps on an `n × n` system per iteration
    /// (1-D column distribution; allreduce-dominated communication).
    Jacobi { n: usize, sweeps: usize },
    /// A batch of `batch` 2-D FFTs of an `n × n` image per iteration
    /// (1-D distribution; transpose/all-to-all communication).
    Fft { n: usize, batch: usize },
    /// `units` fixed-time work units per iteration; rank 0 is the master.
    MasterWorker { units: usize, unit_time: f64 },
    /// Measured profile: iteration time looked up by processor count
    /// (linear interpolation between known points, clamped at the ends).
    /// Used to drive the scheduler with the paper's own measured LU data.
    Table { points: Vec<(usize, f64)> },
    /// A multi-phase application (paper intro: "applications that consist
    /// of multiple phases, some of which are more computationally intense
    /// than others"): each phase runs `iters` outer iterations under its
    /// own model. At a phase boundary the scheduler's profiler resets and
    /// the job re-probes for the new phase's sweet spot.
    Phased { phases: Vec<(usize, AppModel)> },
}

impl AppModel {
    /// The model governing iteration `iter` (identity for single-phase
    /// models), plus whether `iter` is the first iteration of a new phase.
    pub fn phase_at(&self, iter: usize) -> (&AppModel, bool) {
        match self {
            AppModel::Phased { phases } => {
                assert!(!phases.is_empty(), "phased model needs phases");
                let mut start = 0;
                for (i, (len, model)) in phases.iter().enumerate() {
                    if iter < start + len {
                        return (model, iter == start && i > 0);
                    }
                    start += len;
                }
                // Past the declared phases: stay in the last one.
                (&phases[phases.len() - 1].1, false)
            }
            other => (other, false),
        }
    }

    /// Modeled time of iteration `iter` on `cfg` (phase-aware).
    pub fn iter_time_at(&self, iter: usize, cfg: ProcessorConfig, m: &MachineParams) -> f64 {
        self.phase_at(iter).0.iter_time(cfg, m)
    }

    /// Modeled time of one outer iteration on `cfg`.
    pub fn iter_time(&self, cfg: ProcessorConfig, m: &MachineParams) -> f64 {
        let p = cfg.procs() as f64;
        match *self {
            AppModel::Lu { n } => {
                let nf = n as f64;
                let flops = 2.0 / 3.0 * nf.powi(3);
                let steps = (n / MODEL_BLOCK) as f64;
                let row_panel = nf / cfg.rows as f64 * MODEL_BLOCK as f64 * 8.0;
                let col_panel = nf / cfg.cols as f64 * MODEL_BLOCK as f64 * 8.0;
                flops / (p * m.rate)
                    + steps * (row_panel + col_panel) / m.bandwidth
                    + steps * (cfg.rows + cfg.cols) as f64 * m.panel_latency
            }
            AppModel::Mm { n } => {
                let nf = n as f64;
                let flops = 2.0 * nf.powi(3);
                let steps = (n / MODEL_BLOCK) as f64;
                let row_panel = nf / cfg.rows as f64 * MODEL_BLOCK as f64 * 8.0;
                let col_panel = nf / cfg.cols as f64 * MODEL_BLOCK as f64 * 8.0;
                flops / (p * m.rate)
                    + steps * (row_panel + col_panel) / m.bandwidth
                    + steps * (cfg.rows + cfg.cols) as f64 * m.panel_latency
            }
            AppModel::Jacobi { n, sweeps } => {
                let nf = n as f64;
                let per_sweep = 2.0 * nf * nf / (p * m.rate)
                    + 2.0 * (p.log2().ceil().max(1.0)) * (m.latency + nf * 8.0 / m.bandwidth);
                sweeps as f64 * per_sweep
            }
            AppModel::Fft { n, batch } => {
                let nf = n as f64;
                let compute = 10.0 * nf * nf * nf.log2() / (p * m.rate);
                // Two transposes of two planes: 4 · n²·8/p bytes per proc,
                // plus per-peer message latencies.
                let transpose = 4.0 * (nf * nf * 8.0 / p) / m.bandwidth
                    + 4.0 * (p - 1.0) * (m.latency + 5e-4);
                batch as f64 * (compute + transpose)
            }
            AppModel::MasterWorker { units, unit_time } => {
                let workers = (cfg.procs().saturating_sub(1)).max(1) as f64;
                units as f64 * unit_time / workers
                    + units as f64 / 50.0 * 2.0 * m.latency / workers
            }
            AppModel::Table { ref points } => {
                assert!(!points.is_empty(), "empty measured profile");
                let procs = cfg.procs();
                let mut pts = points.clone();
                pts.sort_by_key(|&(p, _)| p);
                if procs <= pts[0].0 {
                    return pts[0].1;
                }
                if procs >= pts[pts.len() - 1].0 {
                    return pts[pts.len() - 1].1;
                }
                for w in pts.windows(2) {
                    let ((p0, t0), (p1, t1)) = (w[0], w[1]);
                    if procs >= p0 && procs <= p1 {
                        let f = (procs - p0) as f64 / (p1 - p0) as f64;
                        return t0 + f * (t1 - t0);
                    }
                }
                unreachable!("interpolation covers the range")
            }
            // Callers that know the iteration use `iter_time_at`; a bare
            // query reports the first phase.
            AppModel::Phased { ref phases } => phases[0].1.iter_time(cfg, m),
        }
    }

    /// The global data the application must redistribute on a resize, as
    /// `(m, n, mb, nb)` descriptors — empty for master–worker.
    pub fn data_shapes(&self) -> Vec<(usize, usize, usize, usize)> {
        match *self {
            AppModel::Lu { n } | AppModel::Mm { n } => {
                let b = MODEL_BLOCK.min(n).max(1);
                // LU redistributes its matrix; MM its three (A, B, C) — but
                // the paper redistributes "the global data", and for cost
                // shape it is the dominant O(n²) volume that matters; MM
                // carries 3 arrays.
                let count = if matches!(self, AppModel::Mm { .. }) { 3 } else { 1 };
                vec![(n, n, b, b); count]
            }
            AppModel::Jacobi { n, .. } => {
                let b = MODEL_BLOCK.min(n).max(1);
                vec![(n, n, n, b), (1, n, 1, b), (1, n, 1, b)]
            }
            AppModel::Fft { n, .. } => {
                let b = MODEL_BLOCK.min(n).max(1);
                vec![(n, n, n, b), (n, n, n, b)]
            }
            AppModel::MasterWorker { .. } => Vec::new(),
            AppModel::Table { .. } => vec![(12000, 12000, MODEL_BLOCK, MODEL_BLOCK)],
            // The redistributed global data persists across phases, so its
            // shape is the first phase's; a workload whose phases carry
            // *different* global arrays should model them as separate jobs.
            AppModel::Phased { ref phases } => phases[0].1.data_shapes(),
        }
    }

    /// Redistribution cost between two configurations, from the *actual*
    /// contention-free schedules priced under the network model. Expansion
    /// additionally pays the process-spawn overhead.
    pub fn redist_cost(&self, from: ProcessorConfig, to: ProcessorConfig, m: &MachineParams) -> f64 {
        if from == to {
            return 0.0;
        }
        let net = m.redist_net();
        let mut total = 0.0;
        for (rows, cols, mb, nb) in self.data_shapes() {
            let src = Descriptor::new(rows, cols, mb, nb, from.rows, from.cols);
            let dst = Descriptor::new(rows, cols, mb, nb, to.rows, to.cols);
            let plan = plan_2d(src, dst);
            total += evaluate_2d(&plan, 8, &net).seconds;
        }
        if to.procs() > from.procs() {
            total += net.spawn_overhead;
        }
        total
    }

    /// Phase-decomposed redistribution profile between two configurations:
    /// the same schedules and pricing as [`AppModel::redist_cost`], but with
    /// the total split into the pack / transfer / unpack phases of the
    /// contention-free schedule, plus plan-shape counts. Feeds the
    /// redistribution audit records in the telemetry journal.
    pub fn redist_profile(
        &self,
        from: ProcessorConfig,
        to: ProcessorConfig,
        m: &MachineParams,
    ) -> RedistProfile {
        let mut prof = RedistProfile::default();
        if from == to {
            return prof;
        }
        let net = m.redist_net();
        for (rows, cols, mb, nb) in self.data_shapes() {
            let src = Descriptor::new(rows, cols, mb, nb, from.rows, from.cols);
            let dst = Descriptor::new(rows, cols, mb, nb, to.rows, to.cols);
            let plan = plan_2d(src, dst);
            let cost = evaluate_2d(&plan, 8, &net);
            prof.bytes += cost.network_bytes as u64;
            prof.plan_steps += cost.steps as u64;
            // Re-walk the steps to split the evaluator's total into phases.
            for step in &plan.steps {
                let mut max_wire = 0usize;
                let mut max_touch = 0usize;
                for t in step {
                    let bytes = plan.transfer_elems(t) * 8;
                    max_touch = max_touch.max(bytes);
                    if plan.src_rank(t.src) != plan.dst_rank(t.dst) {
                        max_wire = max_wire.max(bytes);
                    }
                }
                prof.transfers += step.len() as u64;
                if max_wire > 0 {
                    prof.transfer_seconds +=
                        net.latency + 2.0 * net.overhead + max_wire as f64 / net.bandwidth;
                }
                let touch = max_touch as f64 / PACK_BANDWIDTH;
                prof.pack_seconds += touch;
                prof.unpack_seconds += touch;
            }
            prof.total_seconds += cost.seconds;
        }
        if to.procs() > from.procs() {
            prof.total_seconds += net.spawn_overhead;
        }
        prof
    }

    /// Redistribution cost via the file-based checkpoint baseline.
    pub fn checkpoint_redist_cost(
        &self,
        from: ProcessorConfig,
        to: ProcessorConfig,
        m: &MachineParams,
    ) -> f64 {
        if from == to {
            return 0.0;
        }
        let net = m.net();
        let params = m.checkpoint_params();
        let mut total = 0.0;
        for (rows, cols, _, _) in self.data_shapes() {
            total += checkpoint_cost(rows, cols, 8, from.procs(), to.procs(), &net, &params);
        }
        if to.procs() > from.procs() {
            total += net.spawn_overhead;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(r: usize, c: usize) -> ProcessorConfig {
        ProcessorConfig::new(r, c)
    }

    #[test]
    fn lu_large_problems_benefit_more_from_processors() {
        // Figure 2(a): bigger matrices keep improving; small ones flatten.
        let m = MachineParams::system_x();
        let lu24 = AppModel::Lu { n: 24000 };
        let t16 = lu24.iter_time(cfg(4, 4), &m);
        let t20 = lu24.iter_time(cfg(4, 5), &m);
        let gain = (t16 - t20) / t16;
        assert!(
            gain > 0.10 && gain < 0.25,
            "24000: 16->20 should improve ~19% (paper), got {:.1}%",
            gain * 100.0
        );
    }

    #[test]
    fn lu_small_problem_turns_over() {
        // 8000 should stop improving somewhere below 40 processors, giving
        // the sweet-spot detector something to find.
        let m = MachineParams::system_x();
        let lu8 = AppModel::Lu { n: 8000 };
        let t20 = lu8.iter_time(cfg(4, 5), &m);
        let t25 = lu8.iter_time(cfg(5, 5), &m);
        let t40 = lu8.iter_time(cfg(5, 8), &m);
        assert!(t25 < t20, "still improving at 20->25: {t20} -> {t25}");
        assert!(
            t40 > t25 * 0.98,
            "by 40 procs the curve must have flattened/turned: {t25} -> {t40}"
        );
    }

    #[test]
    fn lu_iteration_times_are_in_paper_range() {
        // Figure 3(a): LU 12000 on 2 procs took ~130 s/iteration.
        let m = MachineParams::system_x();
        let t2 = AppModel::Lu { n: 12000 }.iter_time(cfg(1, 2), &m);
        assert!(
            t2 > 80.0 && t2 < 220.0,
            "LU-12000 on 2 procs should be O(100 s), got {t2}"
        );
    }

    #[test]
    fn jacobi_and_fft_scale_down_with_processors() {
        let m = MachineParams::system_x();
        let j = AppModel::Jacobi { n: 8000, sweeps: 30000 };
        assert!(j.iter_time(cfg(1, 8), &m) < j.iter_time(cfg(1, 4), &m));
        let f = AppModel::Fft { n: 8192, batch: 17 };
        assert!(f.iter_time(cfg(1, 16), &m) < f.iter_time(cfg(1, 2), &m));
    }

    #[test]
    fn master_worker_scales_with_workers() {
        let m = MachineParams::system_x();
        let mw = AppModel::MasterWorker { units: 20000, unit_time: 0.74e-3 };
        let t2 = mw.iter_time(cfg(1, 2), &m);
        assert!((t2 - 14.8).abs() < 1.0, "1 worker ~14.8 s/iter (Table 4), got {t2}");
        let t4 = mw.iter_time(cfg(1, 4), &m);
        assert!(t4 < t2 / 2.5, "3 workers should be ~3x faster");
    }

    #[test]
    fn table_model_interpolates_and_clamps() {
        let t = AppModel::Table {
            points: vec![(2, 129.63), (4, 112.52), (6, 82.31)],
        };
        let m = MachineParams::system_x();
        assert_eq!(t.iter_time(cfg(1, 2), &m), 129.63);
        assert_eq!(t.iter_time(cfg(1, 1), &m), 129.63); // clamp low
        assert_eq!(t.iter_time(cfg(1, 6), &m), 82.31);
        assert_eq!(t.iter_time(cfg(1, 8), &m), 82.31); // clamp high
        let mid = t.iter_time(cfg(1, 3), &m);
        assert!((mid - (129.63 + 112.52) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn redist_cost_decreases_with_processor_count() {
        // Figure 2(b): expanding from a larger set costs less.
        let m = MachineParams::system_x();
        let lu = AppModel::Lu { n: 8000 };
        let early = lu.redist_cost(cfg(1, 2), cfg(2, 2), &m);
        let late = lu.redist_cost(cfg(4, 5), cfg(5, 5), &m);
        assert!(
            early > late,
            "redistribution from 2 procs ({early}) should cost more than from 20 ({late})"
        );
    }

    #[test]
    fn redist_cost_increases_with_matrix_size() {
        let m = MachineParams::system_x();
        let small = AppModel::Lu { n: 8000 }.redist_cost(cfg(2, 2), cfg(2, 4), &m);
        let large = AppModel::Lu { n: 24000 }.redist_cost(cfg(2, 2), cfg(2, 4), &m);
        assert!(large > 4.0 * small);
    }

    #[test]
    fn redist_profile_phases_sum_to_redist_cost() {
        let m = MachineParams::system_x();
        let lu = AppModel::Lu { n: 8000 };
        let (from, to) = (cfg(2, 2), cfg(2, 3));
        let prof = lu.redist_profile(from, to, &m);
        assert!(prof.bytes > 0);
        assert!(prof.plan_steps > 0 && prof.transfers >= prof.plan_steps);
        let phase_sum = prof.pack_seconds + prof.transfer_seconds + prof.unpack_seconds
            + m.redist_net().spawn_overhead; // expansion pays the spawn
        assert!(
            (phase_sum - prof.total_seconds).abs() < 1e-9 * prof.total_seconds.max(1.0),
            "phases {phase_sum} != total {}",
            prof.total_seconds
        );
        assert!(
            (prof.total_seconds - lu.redist_cost(from, to, &m)).abs() < 1e-12,
            "profile total must match redist_cost"
        );
        // Identity resize is free.
        let idp = lu.redist_profile(from, from, &m);
        assert_eq!(idp.bytes, 0);
        assert_eq!(idp.total_seconds, 0.0);
    }

    #[test]
    fn checkpoint_redist_is_much_slower() {
        // Figure 3(b): checkpointing is 4.5-14.5x more expensive.
        let m = MachineParams::system_x();
        let lu = AppModel::Lu { n: 12000 };
        let rd = lu.redist_cost(cfg(2, 2), cfg(2, 3), &m);
        let ck = lu.checkpoint_redist_cost(cfg(2, 2), cfg(2, 3), &m);
        let ratio = ck / rd;
        assert!(
            ratio > 3.0 && ratio < 40.0,
            "checkpoint/redistribution ratio {ratio} out of the paper's band"
        );
    }

    #[test]
    fn master_worker_has_no_redist_cost() {
        let m = MachineParams::system_x();
        let mw = AppModel::MasterWorker { units: 20000, unit_time: 1e-3 };
        // No data: only the spawn overhead on expansion, nothing on shrink.
        assert_eq!(mw.redist_cost(cfg(1, 4), cfg(1, 2), &m), 0.0);
        assert!(mw.redist_cost(cfg(1, 2), cfg(1, 4), &m) <= 0.3);
    }
}
