//! The discrete-event simulation core (ROADMAP item 1, modeled on the
//! dslab idiom): a [`Simulation`] owns the global [`EventQueue`] and a set
//! of registered [`EventHandler`] components; each pop advances the
//! virtual clock and dispatches the payload to its target component, which
//! may schedule follow-up events through the [`SimCtx`] it is handed.
//!
//! # Determinism contract
//!
//! The queue's pop order is a total order on `(time, tie-key, seq)` (see
//! [`crate::event`]): two runs that push the same events in the same
//! program order pop them in the same order, execute the same component
//! code against the same [`SchedulerCore`] state, and therefore produce
//! byte-identical results — floating point included, because the sequence
//! of arithmetic is identical. `sim.rs` exploits this to keep the DES
//! engine bitwise-equal to the legacy step loop (proved over 256 seeds by
//! `tests/des_equivalence.rs`).
//!
//! # Clock-source rules
//!
//! Components must stamp everything — scheduler calls, telemetry, trace
//! spans — with [`SimCtx::now`], never wall time, and may only schedule at
//! `time >= now` (the queue would still order a stale event correctly, but
//! causality back-edges are always bugs; [`SimCtx::schedule`] asserts).
//! Wall time exists solely *outside* the event loop, to report how fast
//! the simulator itself ran ([`ScaleReport::wall_seconds`]).
//!
//! # Scale path
//!
//! [`run_scale`] sweeps clusters of up to tens of thousands of nodes and
//! millions of jobs in one process: a single self-scheduling component
//! drives the real [`SchedulerCore`] (no per-rank threads), with `O(log n)`
//! queue operations and periodic folding of terminal-job state
//! ([`SchedulerCore::prune_terminal`]) so memory stays bounded by the
//! *live* job count, not the trace length.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use reshape_core::{
    Directive, EventKind, JobId, JobSpec, JobState, ProcessorConfig, QueuePolicy, SchedulerCore,
    TopologyPref,
};
use serde::{Deserialize, Serialize};

use crate::event::{mix, EventQueue, TieBreak};
use crate::perfmodel::{AppModel, MachineParams, RedistProfile};
use crate::sim::RedistMode;

/// Index of a registered component; assigned sequentially by
/// [`Simulation::add_component`].
pub type ComponentId = usize;

/// A simulation component: receives the events addressed to it and may
/// schedule follow-ups via the context.
pub trait EventHandler<P> {
    fn handle(&mut self, payload: P, ctx: &mut SimCtx<'_, P>);
}

/// What a component sees while handling an event: the frozen virtual clock
/// and the scheduling surface of the global queue.
pub struct SimCtx<'q, P> {
    now: f64,
    queue: &'q mut EventQueue<(ComponentId, P)>,
}

impl<'q, P> SimCtx<'q, P> {
    /// The virtual time of the event being handled.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `payload` for `component` at absolute virtual time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the current event (causality back-edge)
    /// or is not finite.
    pub fn schedule(&mut self, time: f64, component: ComponentId, payload: P) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {now}",
            now = self.now
        );
        self.queue.push(time, (component, payload));
    }
}

/// The simulation facade: global event queue + registered components +
/// virtual clock.
pub struct Simulation<'a, P> {
    queue: EventQueue<(ComponentId, P)>,
    handlers: Vec<Rc<RefCell<dyn EventHandler<P> + 'a>>>,
    now: f64,
    processed: u64,
}

impl<'a, P> Default for Simulation<'a, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, P> Simulation<'a, P> {
    /// A simulation whose simultaneous events drain in scheduling order
    /// (FIFO tie-break — the legacy-compatible total order).
    pub fn new() -> Self {
        Self::with_tie_break(TieBreak::Fifo)
    }

    /// A simulation with an explicit tie-break policy;
    /// `TieBreak::Seeded(s)` gives a seeded total order among simultaneous
    /// events.
    pub fn with_tie_break(tie: TieBreak) -> Self {
        Simulation {
            queue: EventQueue::with_tie_break(tie),
            handlers: Vec::new(),
            now: 0.0,
            processed: 0,
        }
    }

    /// Register a component; events are addressed by the returned id.
    pub fn add_component(&mut self, handler: Rc<RefCell<dyn EventHandler<P> + 'a>>) -> ComponentId {
        self.handlers.push(handler);
        self.handlers.len() - 1
    }

    /// Schedule an event from outside any handler (seeding the run).
    pub fn schedule(&mut self, time: f64, component: ComponentId, payload: P) {
        assert!(time.is_finite(), "event time must be finite");
        self.queue.push(time, (component, payload));
    }

    /// The virtual clock: time of the last dispatched event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Dispatch the earliest event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, (component, payload))) = self.queue.pop() else {
            return false;
        };
        self.now = time;
        self.processed += 1;
        let handler = self.handlers[component].clone();
        let mut ctx = SimCtx {
            now: time,
            queue: &mut self.queue,
        };
        handler.borrow_mut().handle(payload, &mut ctx);
        true
    }

    /// Run until the queue drains; returns total events dispatched.
    pub fn run(&mut self) -> u64 {
        while self.step() {}
        self.processed
    }

    /// Run while the next event is stamped `<= until`; returns total
    /// events dispatched so far.
    pub fn run_until(&mut self, until: f64) -> u64 {
        while self.queue.peek_time().is_some_and(|t| t <= until) {
            self.step();
        }
        self.processed
    }
}

// ---------------------------------------------------------------------------
// Latency models
// ---------------------------------------------------------------------------

/// Pluggable pricing of resize side effects: how long a redistribution
/// takes (and its phase decomposition, when available) and how long
/// process spawning takes. The default model ([`MachineLatency`]) prices
/// redistribution from the real communication schedules under the
/// machine's network model and treats spawning as free — exactly the
/// legacy simulator's behavior, which keeps default runs bitwise-identical
/// to it.
pub trait LatencyModel {
    /// Seconds to redistribute `model`'s data between the two
    /// configurations, plus the pack/transfer/unpack decomposition when
    /// the pricing path has one.
    fn redistribution(
        &self,
        model: &AppModel,
        from: ProcessorConfig,
        to: ProcessorConfig,
    ) -> (f64, Option<RedistProfile>);

    /// Seconds to spawn the processes of an expansion (paid before the
    /// redistribution). Defaults to free, matching the legacy simulator.
    fn spawn_overhead(&self, _from: ProcessorConfig, _to: ProcessorConfig) -> f64 {
        0.0
    }
}

/// The default latency model: redistribution priced from the calibrated
/// machine parameters under the selected [`RedistMode`], spawn free.
#[derive(Clone, Copy, Debug)]
pub struct MachineLatency {
    pub machine: MachineParams,
    pub mode: RedistMode,
}

impl LatencyModel for MachineLatency {
    fn redistribution(
        &self,
        model: &AppModel,
        from: ProcessorConfig,
        to: ProcessorConfig,
    ) -> (f64, Option<RedistProfile>) {
        match self.mode {
            RedistMode::Reshape => {
                let prof = model.redist_profile(from, to, &self.machine);
                (prof.total_seconds, Some(prof))
            }
            RedistMode::Checkpoint => {
                (model.checkpoint_redist_cost(from, to, &self.machine), None)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scale path: 10,000-node / 1,000,000-job sweeps
// ---------------------------------------------------------------------------

/// Configuration of a [`run_scale`] sweep. The seed fully determines the
/// synthetic job stream (sizes, lengths, arrival gaps), so a report is
/// reproducible bit for bit.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Cluster processors.
    pub nodes: usize,
    /// Jobs in the arrival stream.
    pub jobs: u64,
    pub seed: u64,
    /// Percentage of jobs that are resizable master–worker style
    /// applications (the rest run statically).
    pub resizable_percent: u8,
    /// Iterations per job are drawn from `1..=max_iterations`.
    pub max_iterations: usize,
    /// Offered load: arrival gaps are paced so the stream demands about
    /// this fraction of the cluster's cpu-seconds.
    pub target_utilization: f64,
    /// Ordering among simultaneous events. [`TieBreak::Fifo`] is the
    /// recorded-baseline order; a seeded tie-break permutes same-timestamp
    /// events to flush order-dependent policy assumptions at scale.
    #[serde(default = "default_tie_break")]
    pub tie_break: TieBreak,
}

fn default_tie_break() -> TieBreak {
    TieBreak::Fifo
}

impl ScaleConfig {
    pub fn new(nodes: usize, jobs: u64) -> Self {
        ScaleConfig {
            nodes,
            jobs,
            seed: 1,
            resizable_percent: 10,
            max_iterations: 3,
            target_utilization: 0.7,
            tie_break: TieBreak::Fifo,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_tie_break(mut self, tie: TieBreak) -> Self {
        self.tie_break = tie;
        self
    }
}

/// Headline numbers of one [`run_scale`] sweep. Everything except
/// `wall_seconds`/`events_per_sec` is virtual and bit-deterministic for a
/// fixed config.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScaleReport {
    pub nodes: usize,
    pub jobs: u64,
    pub seed: u64,
    pub makespan: f64,
    pub utilization: f64,
    pub jobs_finished: u64,
    pub jobs_failed: u64,
    pub jobs_cancelled: u64,
    pub expansions: u64,
    pub shrinks: u64,
    pub peak_queue_depth: usize,
    /// Terminal-job records folded out of the scheduler mid-run to keep
    /// memory bounded.
    pub records_pruned: u64,
    pub events_processed: u64,
    pub wall_seconds: f64,
    pub events_per_sec: f64,
}

/// Flat spawn cost charged to every actuated resize in the scale sweep
/// (virtual seconds). The sweep's job mix carries no redistribution-priced
/// data (master–worker), so this stands in for process startup.
const SCALE_SPAWN_COST: f64 = 1.0;

/// Terminal records accumulated before the driver folds scheduler state
/// (drains the event trace into counters, prunes terminal jobs).
const FOLD_THRESHOLD: usize = 16_384;

#[derive(Debug)]
enum ScaleEv {
    Arrival(u64),
    IterationEnd(JobId),
}

fn u01(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-job knobs, a pure function of `(seed, index)`.
struct ScaleJobParams {
    procs: usize,
    iterations: usize,
    /// Sequential work per iteration; iteration time is `work / procs`.
    work: f64,
    resizable: bool,
}

fn job_params(cfg: &ScaleConfig, i: u64) -> ScaleJobParams {
    let h = mix(cfg.seed ^ mix(i.wrapping_add(1)));
    let resizable = h % 100 < cfg.resizable_percent as u64;
    let h2 = mix(h);
    let procs = if resizable { 2 } else { 1 + (h2 % 4) as usize };
    let iterations = 1 + (mix(h2) % cfg.max_iterations.max(1) as u64) as usize;
    // Initial iteration time 20–100 virtual seconds.
    let iter_time = 20.0 + u01(mix(h ^ 0xD1F3)) * 80.0;
    ScaleJobParams {
        procs,
        iterations,
        work: iter_time * procs as f64,
        resizable,
    }
}

/// Mean arrival gap that offers `target_utilization` of the cluster's
/// cpu-seconds, from the job mix's expected demand.
fn mean_gap(cfg: &ScaleConfig) -> f64 {
    let rp = cfg.resizable_percent as f64 / 100.0;
    let mean_procs = rp * 2.0 + (1.0 - rp) * 2.5;
    let mean_iters = (1.0 + cfg.max_iterations.max(1) as f64) / 2.0;
    let mean_iter_time = 60.0;
    let cpu_seconds_per_job = mean_procs * mean_iters * mean_iter_time;
    cpu_seconds_per_job / (cfg.target_utilization * cfg.nodes as f64)
}

struct LiveScaleJob {
    work: f64,
    remaining: usize,
    last_redist: f64,
}

/// The single self-scheduling component of the scale sweep: arrival
/// source and per-job driver in one, against the real scheduler.
struct ScaleDriver {
    cfg: ScaleConfig,
    me: ComponentId,
    core: SchedulerCore,
    live: HashMap<JobId, LiveScaleJob>,
    mean_gap: f64,
    last_now: f64,
    terminal_since_fold: usize,
    // Folded counters from the drained scheduler trace.
    finished: u64,
    failed: u64,
    cancelled: u64,
    expansions: u64,
    shrinks: u64,
    peak_queue_depth: usize,
    records_pruned: u64,
}

impl ScaleDriver {
    fn new(cfg: ScaleConfig) -> Self {
        ScaleDriver {
            mean_gap: mean_gap(&cfg),
            core: SchedulerCore::new(cfg.nodes, QueuePolicy::Fcfs),
            cfg,
            me: 0,
            live: HashMap::new(),
            last_now: 0.0,
            terminal_since_fold: 0,
            finished: 0,
            failed: 0,
            cancelled: 0,
            expansions: 0,
            shrinks: 0,
            peak_queue_depth: 0,
            records_pruned: 0,
        }
    }

    fn spec_for(&self, i: u64, p: &ScaleJobParams) -> JobSpec {
        let name = format!("j{i}");
        if p.resizable {
            JobSpec::new(
                name,
                TopologyPref::AnyCount {
                    min: 2,
                    max: 8,
                    step: 2,
                },
                ProcessorConfig::linear(p.procs),
                p.iterations,
            )
        } else {
            JobSpec::new(
                name,
                TopologyPref::AnyCount {
                    min: 1,
                    max: 8,
                    step: 1,
                },
                ProcessorConfig::linear(p.procs),
                p.iterations,
            )
            .static_job()
        }
    }

    /// Schedule the first iteration of newly started jobs.
    fn handle_starts(
        &mut self,
        starts: Vec<reshape_core::StartAction>,
        now: f64,
        ctx: &mut SimCtx<'_, ScaleEv>,
    ) {
        for s in starts {
            let j = self.live.get_mut(&s.job).expect("started job was submitted");
            j.last_redist = 0.0;
            ctx.schedule(
                now + j.work / s.config.procs() as f64,
                self.me,
                ScaleEv::IterationEnd(s.job),
            );
        }
    }

    /// Drain the scheduler trace into counters and drop terminal-job
    /// state so a million-job sweep runs in bounded memory.
    fn fold(&mut self) {
        for e in self.core.drain_events() {
            match e.kind {
                EventKind::Finished => self.finished += 1,
                EventKind::Failed { .. } => self.failed += 1,
                EventKind::Cancelled => self.cancelled += 1,
                EventKind::Expanded { .. } => self.expansions += 1,
                EventKind::Shrunk { .. } => self.shrinks += 1,
                _ => {}
            }
        }
        self.records_pruned += self.core.prune_terminal() as u64;
        self.terminal_since_fold = 0;
    }
}

impl EventHandler<ScaleEv> for ScaleDriver {
    fn handle(&mut self, ev: ScaleEv, ctx: &mut SimCtx<'_, ScaleEv>) {
        let now = ctx.now();
        self.last_now = now;
        match ev {
            ScaleEv::Arrival(i) => {
                let p = job_params(&self.cfg, i);
                let spec = self.spec_for(i, &p);
                let (id, starts) = self.core.submit(spec, now);
                self.live.insert(
                    id,
                    LiveScaleJob {
                        work: p.work,
                        remaining: p.iterations,
                        last_redist: 0.0,
                    },
                );
                self.handle_starts(starts, now, ctx);
                self.peak_queue_depth = self.peak_queue_depth.max(self.core.queue_len());
                if i + 1 < self.cfg.jobs {
                    let gap = -self.mean_gap * u01(mix(self.cfg.seed ^ mix(i) ^ 0xA5A5)).max(1e-12).ln();
                    ctx.schedule(now + gap, self.me, ScaleEv::Arrival(i + 1));
                }
                if self.terminal_since_fold >= FOLD_THRESHOLD {
                    self.fold();
                }
            }
            ScaleEv::IterationEnd(id) => {
                let (work, remaining) = {
                    let j = self.live.get_mut(&id).expect("iteration end for live job");
                    j.remaining -= 1;
                    (j.work, j.remaining)
                };
                if remaining == 0 {
                    let starts = self.core.on_finished(id, now);
                    self.live.remove(&id);
                    self.terminal_since_fold += 1;
                    self.handle_starts(starts, now, ctx);
                    return;
                }
                let config = match self.core.job(id).map(|r| &r.state) {
                    Some(JobState::Running { config }) => *config,
                    _ => {
                        // Nothing in the scale stream cancels or fails jobs;
                        // a non-running record here would be a driver bug.
                        unreachable!("live job {id:?} is not running");
                    }
                };
                let iter_time = work / config.procs() as f64;
                let last_redist = self.live[&id].last_redist;
                let (directive, starts) = self.core.resize_point(id, iter_time, last_redist, now);
                let (next_procs, redist) = match directive {
                    Directive::NoChange => (config.procs(), 0.0),
                    Directive::Terminate => {
                        self.live.remove(&id);
                        self.terminal_since_fold += 1;
                        self.handle_starts(starts, now, ctx);
                        return;
                    }
                    Directive::Expand { to, .. } | Directive::Shrink { to } => {
                        self.core
                            .note_redist_cost(id, config, to, SCALE_SPAWN_COST);
                        (to.procs(), SCALE_SPAWN_COST)
                    }
                };
                {
                    let j = self.live.get_mut(&id).expect("still live");
                    j.last_redist = redist;
                }
                ctx.schedule(
                    now + redist + work / next_procs as f64,
                    self.me,
                    ScaleEv::IterationEnd(id),
                );
                self.handle_starts(starts, now, ctx);
            }
        }
    }
}

/// Sweep a synthetic seeded job stream through the real scheduler on the
/// DES core: single process, single thread, `O(log n)` queue operations,
/// bounded memory. See [`ScaleConfig`] / [`ScaleReport`].
pub fn run_scale(cfg: &ScaleConfig) -> ScaleReport {
    assert!(cfg.nodes >= 8, "need at least 8 nodes");
    let wall_start = std::time::Instant::now();
    let mut sim: Simulation<'_, ScaleEv> = Simulation::with_tie_break(cfg.tie_break);
    let driver = Rc::new(RefCell::new(ScaleDriver::new(*cfg)));
    let me = sim.add_component(driver.clone());
    driver.borrow_mut().me = me;
    if cfg.jobs > 0 {
        sim.schedule(0.0, me, ScaleEv::Arrival(0));
    }
    let events_processed = sim.run();
    drop(sim);
    let mut d = Rc::try_unwrap(driver)
        .unwrap_or_else(|_| unreachable!("simulation dropped its handler references"))
        .into_inner();
    d.fold();
    assert!(d.live.is_empty(), "every job must terminate");
    let makespan = d.last_now;
    let utilization = d.core.utilization(makespan);
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    ScaleReport {
        nodes: cfg.nodes,
        jobs: cfg.jobs,
        seed: cfg.seed,
        makespan,
        utilization,
        jobs_finished: d.finished,
        jobs_failed: d.failed,
        jobs_cancelled: d.cancelled,
        expansions: d.expansions,
        shrinks: d.shrinks,
        peak_queue_depth: d.peak_queue_depth,
        records_pruned: d.records_pruned,
        events_processed,
        wall_seconds,
        events_per_sec: events_processed as f64 / wall_seconds.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal two-component ping/pong: events route to the right
    /// handlers, the clock advances, and the queue drains.
    #[test]
    fn components_exchange_events_on_the_virtual_clock() {
        struct Ping {
            peer: ComponentId,
            seen: Rc<RefCell<Vec<(f64, u32)>>>,
        }
        impl EventHandler<u32> for Ping {
            fn handle(&mut self, n: u32, ctx: &mut SimCtx<'_, u32>) {
                self.seen.borrow_mut().push((ctx.now(), n));
                if n > 0 {
                    ctx.schedule(ctx.now() + 1.0, self.peer, n - 1);
                }
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulation<'_, u32> = Simulation::new();
        let a = sim.add_component(Rc::new(RefCell::new(Ping {
            peer: 1,
            seen: seen.clone(),
        })));
        let b = sim.add_component(Rc::new(RefCell::new(Ping {
            peer: 0,
            seen: seen.clone(),
        })));
        assert_eq!((a, b), (0, 1));
        sim.schedule(0.0, a, 3);
        assert_eq!(sim.run(), 4);
        assert_eq!(sim.now(), 3.0);
        assert_eq!(
            *seen.borrow(),
            vec![(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]
        );
    }

    #[test]
    fn run_until_stops_at_the_horizon() {
        struct Tick;
        impl EventHandler<()> for Tick {
            fn handle(&mut self, _: (), ctx: &mut SimCtx<'_, ()>) {
                ctx.schedule(ctx.now() + 1.0, 0, ());
            }
        }
        let mut sim: Simulation<'_, ()> = Simulation::new();
        let c = sim.add_component(Rc::new(RefCell::new(Tick)));
        sim.schedule(0.0, c, ());
        let n = sim.run_until(5.0);
        assert_eq!(n, 6, "events at t=0..=5");
        assert_eq!(sim.now(), 5.0);
        assert_eq!(sim.queued(), 1, "the t=6 event stays queued");
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn causality_back_edges_are_rejected() {
        struct Bad;
        impl EventHandler<()> for Bad {
            fn handle(&mut self, _: (), ctx: &mut SimCtx<'_, ()>) {
                ctx.schedule(ctx.now() - 1.0, 0, ());
            }
        }
        let mut sim: Simulation<'_, ()> = Simulation::new();
        let c = sim.add_component(Rc::new(RefCell::new(Bad)));
        sim.schedule(5.0, c, ());
        sim.run();
    }

    #[test]
    fn scale_sweep_is_deterministic_and_complete() {
        let cfg = ScaleConfig::new(64, 400).with_seed(9);
        let a = run_scale(&cfg);
        let b = run_scale(&cfg);
        assert_eq!(a.jobs_finished + a.jobs_failed + a.jobs_cancelled, 400);
        assert_eq!(a.jobs_finished, b.jobs_finished);
        assert_eq!(a.makespan, b.makespan, "virtual results are bit-stable");
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.events_processed, b.events_processed);
        assert!(a.utilization > 0.0 && a.utilization <= 1.0);
        assert!(a.events_processed >= 400 * 2, "arrival + at least one iteration each");
    }

    #[test]
    fn scale_sweep_exercises_resizes_and_prunes_memory() {
        let cfg = ScaleConfig {
            resizable_percent: 50,
            ..ScaleConfig::new(128, 40_000).with_seed(3)
        };
        let r = run_scale(&cfg);
        assert_eq!(r.jobs_finished, 40_000, "{r:?}");
        assert!(r.expansions > 0, "resizable jobs on a paced cluster must expand: {r:?}");
        assert!(
            r.records_pruned > 0,
            "a 40k-job sweep must fold terminal records mid-run: {r:?}"
        );
        assert!(r.events_per_sec > 0.0 && r.wall_seconds > 0.0);
    }
}
