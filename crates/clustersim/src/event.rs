//! The global event queue of the discrete-event core.
//!
//! A min-heap over `(time, key, seq)`: `time` is the virtual clock stamp,
//! `key` is the tie-break rank among simultaneous events, and `seq` is the
//! insertion counter that makes the order total even when both collide.
//! The tie-break policy is pluggable:
//!
//! * [`TieBreak::Fifo`] (the default) drains simultaneous events in
//!   insertion order — exactly what the legacy step loop in `sim.rs` did
//!   with its `(time, seq)` heap, which is what keeps the DES engine
//!   bitwise-equal to it.
//! * [`TieBreak::Seeded`] applies a SplitMix64-style permutation of the
//!   insertion counter, giving a *seeded total order* among simultaneous
//!   events: still perfectly reproducible for a fixed seed, but no longer
//!   correlated with program push order — the tool for shaking out hidden
//!   ordering assumptions in components.
//! * [`EventQueue::push_keyed`] lets the caller rank simultaneous events
//!   explicitly (the testkit's `DesHarness` uses it to encode
//!   "submissions before check-ins, then lowest job id" as a key).
//!
//! Push and pop are `O(log n)`; the queue never allocates per event beyond
//! the heap slot. Times must be finite — a NaN would silently corrupt heap
//! order, so pushes assert.

use std::collections::BinaryHeap;

/// Ordering policy among events with equal timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TieBreak {
    /// Simultaneous events drain in insertion order (legacy-compatible).
    Fifo,
    /// Simultaneous events drain in a pseudo-random but fully seeded
    /// order: the tie key is a SplitMix64 permutation of the insertion
    /// counter, so a fixed seed always yields the same total order.
    Seeded(u64),
}

/// One queued event. Ordering ignores the payload entirely.
struct Entry<P> {
    time: f64,
    key: u64,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}
impl<P> Eq for Entry<P> {}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, key, seq) through BinaryHeap's max ordering.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then(other.key.cmp(&self.key))
            .then(other.seq.cmp(&self.seq))
    }
}

/// SplitMix64 finalizer: a bijective mix of the insertion counter used by
/// [`TieBreak::Seeded`] (and by the scale sweep's seeded job derivation).
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Priority queue of `(time, payload)` events with a deterministic total
/// order (see the module docs for the tie-break policies).
pub struct EventQueue<P> {
    heap: BinaryHeap<Entry<P>>,
    seq: u64,
    tie: TieBreak,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// An empty FIFO-tie-break queue.
    pub fn new() -> Self {
        Self::with_tie_break(TieBreak::Fifo)
    }

    pub fn with_tie_break(tie: TieBreak) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            tie,
        }
    }

    /// Queue `payload` at `time`, ranked among simultaneous events by the
    /// queue's tie-break policy.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn push(&mut self, time: f64, payload: P) {
        let key = match self.tie {
            TieBreak::Fifo => self.seq,
            TieBreak::Seeded(seed) => mix(seed ^ self.seq),
        };
        self.push_with(time, key, payload);
    }

    /// Queue `payload` at `time` with an explicit tie key: among
    /// simultaneous events, lower keys pop first, and equal keys fall back
    /// to insertion order. This bypasses the queue's tie-break policy.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn push_keyed(&mut self, time: f64, key: u64, payload: P) {
        self.push_with(time, key, payload);
    }

    fn push_with(&mut self, time: f64, key: u64, payload: P) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        self.seq += 1;
        self.heap.push(Entry {
            time,
            key,
            seq: self.seq,
            payload,
        });
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, P)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Timestamp of the earliest queued event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (the insertion counter).
    pub fn pushed(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_ties_drain_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_ties_are_a_reproducible_permutation() {
        let drain = |seed: u64| {
            let mut q = EventQueue::with_tie_break(TieBreak::Seeded(seed));
            for i in 0..64 {
                q.push(1.0, i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect::<Vec<i32>>()
        };
        let a = drain(7);
        // Same seed, same total order.
        assert_eq!(a, drain(7));
        // It is a permutation of the inserted events...
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // ...and (for these seeds) not the insertion order, and seeds differ.
        assert_ne!(a, (0..64).collect::<Vec<_>>());
        assert_ne!(a, drain(8));
    }

    #[test]
    fn explicit_keys_rank_simultaneous_events() {
        let mut q = EventQueue::new();
        q.push_keyed(2.0, 9, "checkin-j9");
        q.push_keyed(2.0, 0, "submit");
        q.push_keyed(2.0, 3, "checkin-j3");
        q.push_keyed(1.0, 99, "early");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["early", "submit", "checkin-j3", "checkin-j9"]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_times_are_rejected() {
        EventQueue::new().push(f64::NAN, ());
    }

    /// Reference model for the fuzz tests: a sorted vec popped from the
    /// front, ordered by the same (time, key, seq) triple.
    struct Model {
        items: Vec<(f64, u64, u64, u32)>,
        seq: u64,
    }

    impl Model {
        fn push(&mut self, time: f64, key: u64, payload: u32) {
            self.seq += 1;
            self.items.push((time, key, self.seq, payload));
        }
        fn pop(&mut self) -> Option<(f64, u32)> {
            if self.items.is_empty() {
                return None;
            }
            let best = self
                .items
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.0.partial_cmp(&b.0)
                        .unwrap()
                        .then(a.1.cmp(&b.1))
                        .then(a.2.cmp(&b.2))
                })
                .map(|(i, _)| i)
                .unwrap();
            let (t, _, _, p) = self.items.remove(best);
            Some((t, p))
        }
    }

    proptest! {
        /// Pop order is a total order on (time, seq): draining any pushed
        /// multiset yields non-decreasing times, and equal times preserve
        /// insertion order under FIFO ties.
        #[test]
        fn pop_order_is_total(times in proptest::collection::vec(0u32..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(*t as f64, i as u32);
            }
            let drained: Vec<(f64, u32)> =
                std::iter::from_fn(|| q.pop()).collect();
            prop_assert_eq!(drained.len(), times.len());
            for w in drained.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "times must be non-decreasing");
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "FIFO ties keep insertion order");
                }
            }
        }

        /// Interleaved push/pop fuzz against the reference model: the queue
        /// and the model agree on every pop, for FIFO and explicit keys.
        #[test]
        fn fuzz_matches_reference_model(
            ops in proptest::collection::vec(
                prop_oneof![
                    (0u32..100, 0u64..8, 0u32..u32::MAX).prop_map(|(t, k, p)| Some((t, k, p))),
                    Just(None),
                ],
                1..300,
            )
        ) {
            let mut q = EventQueue::new();
            let mut m = Model { items: Vec::new(), seq: 0 };
            for op in ops {
                match op {
                    Some((t, k, p)) => {
                        q.push_keyed(t as f64, k, p);
                        m.push(t as f64, k, p);
                    }
                    None => prop_assert_eq!(q.pop(), m.pop()),
                }
            }
            loop {
                let (a, b) = (q.pop(), m.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// Seeded ties: for any seed, draining N simultaneous events is a
        /// permutation of them, and replaying the seed reproduces it.
        #[test]
        fn seeded_order_is_a_stable_permutation(seed in 0u64..u64::MAX, n in 1usize..64) {
            let drain = |seed: u64| {
                let mut q = EventQueue::with_tie_break(TieBreak::Seeded(seed));
                for i in 0..n {
                    q.push(1.0, i);
                }
                std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect::<Vec<usize>>()
            };
            let a = drain(seed);
            prop_assert_eq!(&a, &drain(seed));
            let mut sorted = a;
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }
}
