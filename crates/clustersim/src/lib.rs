//! # reshape-clustersim — discrete-event simulation of ReSHAPE at paper scale
//!
//! The paper's evaluation ran on 36–50 processors of System X with matrices
//! up to 24000². This crate reproduces those experiments by driving the
//! *real* scheduler state machine (`reshape_core::SchedulerCore` — queue
//! policies, Performance Profiler, Remap Scheduler policy) with:
//!
//! * calibrated analytic iteration-time models per application
//!   ([`AppModel`]), and
//! * redistribution costs computed from the *actual* contention-free
//!   communication schedules (`reshape-redist`) priced under the Gigabit
//!   Ethernet network model.
//!
//! [`workloads`] encodes the paper's workloads W1 and W2 and the
//! single-application experiments of Figure 3; `reshape-bench` turns
//! simulation results into the paper's tables and figures.

pub mod dashboard;
pub mod des;
pub mod event;
pub mod perfmodel;
pub mod sim;
pub mod workloads;

pub use des::{
    run_scale, ComponentId, EventHandler, LatencyModel, MachineLatency, ScaleConfig, ScaleReport,
    SimCtx, Simulation,
};
pub use event::{EventQueue, TieBreak};
pub use perfmodel::{AppModel, MachineParams, RedistProfile, MODEL_BLOCK};
pub use sim::{ClusterSim, JobOutcome, RedistMode, SimJob, SimResult, SimTelemetry, WindowSample};
pub use workloads::{
    fig3a_job, fig3b_jobs, random_workload, random_workload_with_faults, workload1, workload2,
    Workload,
};
