//! The paper's experimental workloads (§4), expressed as simulator inputs.
//!
//! Calibration notes: per-application knobs (Jacobi sweeps per iteration,
//! FFT batch size, master–worker unit time) are set so the *static-schedule*
//! iteration times land near the paper's Tables 4 and 5 — the paper gives
//! per-workload totals that imply different synthetic-work settings between
//! workload 1 and workload 2, so the knobs differ per workload. See
//! EXPERIMENTS.md for the paper-vs-model comparison.

use reshape_core::{JobSpec, ProcessorConfig, TopologyPref};

use crate::perfmodel::AppModel;
use crate::sim::SimJob;

/// A named workload: jobs plus the processor budget of the experiment.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: &'static str,
    pub jobs: Vec<SimJob>,
    pub total_procs: usize,
}

impl Workload {
    /// The same workload with every job statically scheduled.
    pub fn as_static(&self) -> Workload {
        Workload {
            name: self.name,
            jobs: self
                .jobs
                .iter()
                .map(|j| {
                    let mut j = j.clone();
                    j.spec = j.spec.clone().static_job();
                    j
                })
                .collect(),
            total_procs: self.total_procs,
        }
    }
}

fn grid_job(
    name: &str,
    n: usize,
    initial: (usize, usize),
    model: AppModel,
    arrival: f64,
) -> SimJob {
    SimJob {
        spec: JobSpec::new(
            name,
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(initial.0, initial.1),
            10,
        ),
        model,
        arrival,
        cancel_at: None,
        fail_at: None,
        tenant: 0,
    }
}

fn linear_job(
    name: &str,
    n: usize,
    initial: usize,
    model: AppModel,
    arrival: f64,
) -> SimJob {
    SimJob {
        spec: JobSpec::new(
            name,
            TopologyPref::Linear {
                problem_size: n,
                even_only: true,
            },
            ProcessorConfig::linear(initial),
            10,
        ),
        model,
        arrival,
        cancel_at: None,
        fail_at: None,
        tenant: 0,
    }
}

fn mw_job(initial: usize, unit_time: f64, arrival: f64) -> SimJob {
    SimJob {
        spec: JobSpec::new(
            "Master-worker",
            TopologyPref::AnyCount {
                min: 2,
                max: 22,
                step: 2,
            },
            ProcessorConfig::linear(initial),
            10,
        ),
        model: AppModel::MasterWorker {
            units: 20000,
            unit_time,
        },
        arrival,
        cancel_at: None,
        fail_at: None,
        tenant: 0,
    }
}

/// Workload 1 (paper §4.2.1, Figure 4, Table 4): LU(21000) and MM(14000)
/// at t=0, Master-worker at t=450, Jacobi(8000) and FFT(8192) at t=465,
/// on 36 processors.
pub fn workload1() -> Workload {
    Workload {
        name: "W1",
        total_procs: 36,
        jobs: vec![
            grid_job("LU", 21000, (2, 3), AppModel::Lu { n: 21000 }, 0.0),
            grid_job("MM", 14000, (2, 4), AppModel::Mm { n: 14000 }, 0.0),
            mw_job(2, 0.7375e-3, 450.0),
            linear_job(
                "Jacobi",
                8000,
                4,
                AppModel::Jacobi {
                    n: 8000,
                    sweeps: 34300,
                },
                465.0,
            ),
            linear_job("2D FFT", 8192, 4, AppModel::Fft { n: 8192, batch: 17 }, 465.0),
        ],
    }
}

/// Workload 2 (paper §4.2.2, Figure 5, Table 5): LU(21000) at 16 procs and
/// Jacobi(8000) at 10 at t=0, Master-worker at t=560, a *statically
/// scheduled* 2-D FFT at t=650, on 30 processors.
pub fn workload2() -> Workload {
    let mut fft = linear_job("2D FFT", 8192, 4, AppModel::Fft { n: 8192, batch: 6 }, 650.0);
    fft.spec = fft.spec.static_job(); // the paper schedules W2's FFT statically
    Workload {
        name: "W2",
        total_procs: 30,
        jobs: vec![
            grid_job("LU", 21000, (4, 4), AppModel::Lu { n: 21000 }, 0.0),
            linear_job(
                "Jacobi",
                8000,
                10,
                AppModel::Jacobi {
                    n: 8000,
                    sweeps: 11700,
                },
                0.0,
            ),
            mw_job(6, 8.875e-3, 560.0),
            fft,
        ],
    }
}

/// The Figure 3(a) experiment: LU on a 12000² matrix, 10 iterations,
/// starting on 2 processors with the whole 36-processor cluster otherwise
/// idle, driven by the paper's *measured* iteration-time profile so the
/// resize trajectory (2 → 4 → 6 → 9 → 12 → 16 → back to 12) reproduces
/// exactly.
pub fn fig3a_job() -> SimJob {
    SimJob {
        spec: JobSpec::new(
            "LU",
            TopologyPref::Grid {
                problem_size: 12000,
            },
            ProcessorConfig::new(1, 2),
            10,
        ),
        model: AppModel::Table {
            points: vec![
                (2, 129.63),
                (4, 112.52),
                (6, 82.31),
                (9, 79.61),
                (12, 69.85),
                (16, 74.91),
            ],
        },
        arrival: 0.0,
        cancel_at: None,
        fail_at: None,
        tenant: 0,
    }
}

/// The five single-application jobs of Figure 3(b): LU(12000), MM(14000),
/// Master-worker, Jacobi(8000) and FFT(8192); LU, MM, Jacobi and
/// Master-worker start with 4 processors, FFT with 2.
pub fn fig3b_jobs() -> Vec<SimJob> {
    vec![
        grid_job("LU", 12000, (2, 2), AppModel::Lu { n: 12000 }, 0.0),
        grid_job("MM", 14000, (2, 2), AppModel::Mm { n: 14000 }, 0.0),
        mw_job(4, 0.7375e-3, 0.0),
        linear_job(
            "Jacobi",
            8000,
            4,
            AppModel::Jacobi {
                n: 8000,
                sweeps: 34300,
            },
            0.0,
        ),
        linear_job("2D FFT", 8192, 2, AppModel::Fft { n: 8192, batch: 17 }, 0.0),
    ]
}

/// Deterministic xorshift64* generator for reproducible random workloads
/// (kept dependency-free; the seed fully determines the workload).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() as usize) % items.len()]
    }
}

/// Generate a reproducible random job mix in the style of the paper's
/// workloads: a stream of LU / MM / Jacobi / FFT / master–worker jobs with
/// varied sizes, initial allocations and staggered arrivals. The same seed
/// always yields the same workload.
pub fn random_workload(seed: u64, n_jobs: usize, total_procs: usize) -> Workload {
    let mut rng = Rng::new(seed);
    let mut jobs = Vec::with_capacity(n_jobs);
    let mut arrival = 0.0;
    for _ in 0..n_jobs {
        let job = match rng.next() % 5 {
            0 => {
                let n = *rng.pick(&[8000usize, 12000, 16000, 20000]);
                grid_job("LU", n, (2, 2), AppModel::Lu { n }, arrival)
            }
            1 => {
                let n = *rng.pick(&[8000usize, 12000, 16000]);
                grid_job("MM", n, (2, 2), AppModel::Mm { n }, arrival)
            }
            2 => {
                let sweeps = 5000 + (rng.next() % 20000) as usize;
                linear_job(
                    "Jacobi",
                    8000,
                    4,
                    AppModel::Jacobi { n: 8000, sweeps },
                    arrival,
                )
            }
            3 => {
                let batch = 4 + (rng.next() % 16) as usize;
                linear_job("FFT", 8192, *rng.pick(&[2usize, 4]), AppModel::Fft { n: 8192, batch }, arrival)
            }
            _ => {
                let unit = 0.5e-3 + rng.uniform() * 4e-3;
                mw_job(*rng.pick(&[2usize, 4, 6]), unit, arrival)
            }
        };
        jobs.push(job);
        // Staggered arrivals, exponential-ish gaps up to ~10 minutes.
        arrival += 30.0 + rng.uniform() * 600.0;
    }
    Workload {
        name: "random",
        jobs,
        total_procs,
    }
}

/// [`random_workload`] plus a seeded fault schedule: roughly one job in
/// five gets a scripted cancellation and one in six an injected failure,
/// timed to land while the job is likely still active. This is the input
/// of the DES-vs-legacy differential suite, which needs the cancellation
/// and failure event paths exercised; `random_workload` itself is left
/// untouched because the committed `BENCH_clustersim.json` baseline
/// depends on its exact output.
pub fn random_workload_with_faults(seed: u64, n_jobs: usize, total_procs: usize) -> Workload {
    let mut w = random_workload(seed, n_jobs, total_procs);
    // A separate stream so fault draws cannot perturb the job mix.
    let mut rng = Rng::new(seed ^ 0xFA17_5EED);
    for job in &mut w.jobs {
        match rng.next() % 30 {
            0..=5 => job.cancel_at = Some(job.arrival + 1.0 + rng.uniform() * 900.0),
            6..=10 => job.fail_at = Some(job.arrival + 1.0 + rng.uniform() * 900.0),
            _ => {}
        }
    }
    // Tenant ids for the federation router come from their own third
    // stream: consuming neither the job-mix nor the fault stream keeps
    // every existing seed's workload bitwise-stable (the recorded DES
    // snapshots predate multi-tenancy and still pass). 1–4 tenants,
    // ids 1..=k — tenant 0 stays the "untenanted" convention.
    let mut trng = Rng::new(seed ^ 0x7E4A_A247);
    let n_tenants = 1 + (trng.next() % 4) as u32;
    for job in &mut w.jobs {
        job.tenant = 1 + (trng.next() % n_tenants as u64) as u32;
    }
    w.name = "random+faults";
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfmodel::MachineParams;
    use crate::sim::ClusterSim;

    #[test]
    fn workload1_shape() {
        let w = workload1();
        assert_eq!(w.jobs.len(), 5);
        assert_eq!(w.total_procs, 36);
        let initial: usize = w.jobs.iter().map(|j| j.spec.initial.procs()).sum();
        assert_eq!(initial, 6 + 8 + 2 + 4 + 4, "Table 4 initial allocations");
        assert!(w.jobs.iter().all(|j| j.spec.resizable));
    }

    #[test]
    fn workload2_fft_is_static() {
        let w = workload2();
        let fft = w.jobs.iter().find(|j| j.spec.name == "2D FFT").unwrap();
        assert!(!fft.spec.resizable);
        let lu = w.jobs.iter().find(|j| j.spec.name == "LU").unwrap();
        assert_eq!(lu.spec.initial.procs(), 16);
    }

    #[test]
    fn as_static_marks_everything() {
        let w = workload1().as_static();
        assert!(w.jobs.iter().all(|j| !j.spec.resizable));
    }

    /// Tenant ids ride their own SplitMix64 stream: assigning them must
    /// not perturb the job-mix or fault streams (the recorded DES
    /// snapshots, blessed before tenancy existed, enforce the bitwise
    /// half), must be deterministic per seed, and must spread jobs over
    /// more than one tenant across the sweep so federated admission has
    /// something to route.
    #[test]
    fn tenant_ids_come_from_their_own_stream() {
        let a = random_workload_with_faults(42, 8, 36);
        let b = random_workload_with_faults(42, 8, 36);
        let tenants = |w: &Workload| w.jobs.iter().map(|j| j.tenant).collect::<Vec<_>>();
        assert_eq!(tenants(&a), tenants(&b), "tenant draw must be seeded");
        assert!(a.jobs.iter().all(|j| j.tenant >= 1), "0 is reserved for untenanted");

        // Everything *except* the tenant field matches the tenant-free
        // generator plus the fault stream it has always used.
        let plain = random_workload(42, 8, 36);
        assert_eq!(a.jobs.len(), plain.jobs.len());
        for (f, p) in a.jobs.iter().zip(&plain.jobs) {
            assert_eq!(f.spec.name, p.spec.name);
            assert_eq!(f.arrival.to_bits(), p.arrival.to_bits());
            assert_eq!(format!("{:?}", f.model), format!("{:?}", p.model));
        }

        let distinct: std::collections::BTreeSet<u32> = (0..16u64)
            .flat_map(|s| random_workload_with_faults(s, 6, 36).jobs)
            .map(|j| j.tenant)
            .collect();
        assert!(distinct.len() > 1, "sweep must produce multiple tenants");
    }

    #[test]
    fn fig3a_reproduces_paper_trajectory() {
        // The headline behavioural test: driven by the paper's measured LU
        // profile, the real Remap Scheduler policy must walk
        // 2 -> 4 -> 6 -> 9 -> 12 -> 16 -> 12 and hold at 12.
        let sim = ClusterSim::new(36, MachineParams::system_x());
        let result = sim.run(&[fig3a_job()]);
        let procs: Vec<usize> = result.jobs[0]
            .alloc_history
            .iter()
            .map(|&(_, p)| p)
            .collect();
        assert_eq!(
            procs,
            vec![2, 4, 6, 9, 12, 16, 12, 0],
            "allocation trajectory (paper Figure 3(a))"
        );
    }

    #[test]
    fn random_workloads_are_reproducible_and_complete() {
        let machine = MachineParams::system_x();
        for seed in [1u64, 7, 42] {
            let w = random_workload(seed, 8, 36);
            assert_eq!(w.jobs.len(), 8);
            // Reproducibility: same seed, same workload, same outcome.
            let a = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
            let w2 = random_workload(seed, 8, 36);
            let b = ClusterSim::new(w2.total_procs, machine).run(&w2.jobs);
            assert_eq!(a.makespan, b.makespan, "seed {seed}");
            // Every job completes and utilization is a fraction.
            assert!(a.jobs.iter().all(|j| j.finished.is_finite()));
            assert!((0.0..=1.0).contains(&a.utilization));
        }
        // Different seeds differ.
        let w1 = random_workload(1, 8, 36);
        let w2 = random_workload(2, 8, 36);
        let names1: Vec<&str> = w1.jobs.iter().map(|j| j.spec.name.as_str()).collect();
        let names2: Vec<&str> = w2.jobs.iter().map(|j| j.spec.name.as_str()).collect();
        let arr1: Vec<u64> = w1.jobs.iter().map(|j| j.arrival as u64).collect();
        let arr2: Vec<u64> = w2.jobs.iter().map(|j| j.arrival as u64).collect();
        assert!(names1 != names2 || arr1 != arr2);
    }

    #[test]
    fn dynamic_beats_static_on_average_over_random_mixes() {
        // The paper's headline claim, checked statistically over ten random
        // job mixes rather than one hand-picked workload.
        let machine = MachineParams::system_x();
        let mut dyn_total = 0.0;
        let mut stat_total = 0.0;
        for seed in 0..10u64 {
            let w = random_workload(seed, 6, 36);
            let d = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
            let s = ClusterSim::new(w.total_procs, machine).run(&w.as_static().jobs);
            dyn_total += d.jobs.iter().map(|j| j.turnaround).sum::<f64>();
            stat_total += s.jobs.iter().map(|j| j.turnaround).sum::<f64>();
        }
        assert!(
            dyn_total < stat_total * 0.95,
            "dynamic {dyn_total:.0} should beat static {stat_total:.0} by >5% on average"
        );
    }

    #[test]
    fn workload1_checkpoint_mode_is_worse_than_reshape() {
        // Figure 3(b)'s point at workload scale: the same dynamic policy
        // with file-based checkpoint redistribution loses time on every
        // resize relative to ReSHAPE's message-based redistribution.
        let machine = MachineParams::system_x();
        let w = workload1();
        let reshape_run = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
        let ckpt_run = ClusterSim::new(w.total_procs, machine)
            .with_redist_mode(crate::sim::RedistMode::Checkpoint)
            .run(&w.jobs);
        let total_redist = |r: &crate::sim::SimResult| {
            r.jobs.iter().map(|j| j.redist_total).sum::<f64>()
        };
        assert!(
            total_redist(&ckpt_run) > 3.0 * total_redist(&reshape_run),
            "checkpoint {} vs reshape {}",
            total_redist(&ckpt_run),
            total_redist(&reshape_run)
        );
        // And the mean turnaround suffers accordingly.
        let mean = |r: &crate::sim::SimResult| {
            r.jobs.iter().map(|j| j.turnaround).sum::<f64>() / r.jobs.len() as f64
        };
        assert!(mean(&ckpt_run) >= mean(&reshape_run));
    }

    #[test]
    fn workload1_dynamic_beats_static() {
        let machine = MachineParams::system_x();
        let w = workload1();
        let dynamic = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
        let stat = ClusterSim::new(w.total_procs, machine).run(&w.as_static().jobs);
        // Table 4's headline: overall utilization improves substantially...
        assert!(
            dynamic.utilization > stat.utilization + 0.1,
            "dynamic {:.3} vs static {:.3}",
            dynamic.utilization,
            stat.utilization
        );
        // ...and the resizable grid jobs finish sooner.
        for name in ["LU", "MM", "Jacobi", "2D FFT"] {
            let d = dynamic.jobs.iter().find(|j| j.name == name).unwrap();
            let s = stat.jobs.iter().find(|j| j.name == name).unwrap();
            assert!(
                d.turnaround < s.turnaround * 1.02,
                "{name}: dynamic {} should not lose to static {}",
                d.turnaround,
                s.turnaround
            );
        }
    }

    #[test]
    fn workload2_shows_modest_gains() {
        // Paper: "dynamic scheduling has only a small advantage over static
        // in workload 2" — jobs start near their sweet spots.
        let machine = MachineParams::system_x();
        let w = workload2();
        let dynamic = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
        let stat = ClusterSim::new(w.total_procs, machine).run(&w.as_static().jobs);
        let d_lu = dynamic.jobs.iter().find(|j| j.name == "LU").unwrap();
        let s_lu = stat.jobs.iter().find(|j| j.name == "LU").unwrap();
        let gain = (s_lu.turnaround - d_lu.turnaround) / s_lu.turnaround;
        assert!(
            gain > -0.05 && gain < 0.5,
            "W2 LU gain should be modest, got {:.1}%",
            gain * 100.0
        );
    }
}
