//! The discrete-event cluster simulator.
//!
//! Runs the *actual* [`SchedulerCore`] (queue, FCFS/backfill, Performance
//! Profiler, Remap Scheduler policy) against jobs whose iteration times come
//! from calibrated [`AppModel`]s and whose redistribution costs come from
//! real communication schedules. This is how the paper-scale experiments
//! (Figures 3–5, Tables 4–5: 36 processors, matrices up to 24000²) run in
//! milliseconds while exercising exactly the scheduling code a real cluster
//! would.


use reshape_core::{
    Directive, EventKind, JobId, JobSpec, QueuePolicy, SchedEvent, SchedulerCore, StartAction,
};
use serde::{Deserialize, Serialize};

use crate::des::{LatencyModel, MachineLatency};
use crate::perfmodel::{AppModel, MachineParams, RedistProfile};

/// How resizing redistributions are priced (the three bars of Figure 3(b)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RedistMode {
    /// ReSHAPE's message-based contention-free redistribution.
    Reshape,
    /// File-based checkpoint/restart through a single node.
    Checkpoint,
}

/// A job to simulate: scheduler-visible spec + performance model + arrival.
#[derive(Clone, Debug)]
pub struct SimJob {
    pub spec: JobSpec,
    pub model: AppModel,
    pub arrival: f64,
    /// Optional user cancellation time (absolute); queued jobs leave the
    /// queue then, running jobs terminate at their next resize point.
    pub cancel_at: Option<f64>,
    /// Optional failure-injection time: the job dies with an application
    /// error (the System Monitor path — resources reclaimed immediately).
    pub fail_at: Option<f64>,
    /// Owning tenant, consumed by the federation router when a workload is
    /// fed through multi-tenant admission. The single-cluster simulator
    /// ignores it entirely; `0` is the conventional "untenanted" id.
    pub tenant: u32,
}

/// Per-job outcome of a simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobOutcome {
    pub name: String,
    pub job: JobId,
    pub initial_procs: usize,
    pub submitted: f64,
    pub started: f64,
    pub finished: f64,
    /// Completion time minus submission time (the paper's Tables 4/5
    /// metric).
    pub turnaround: f64,
    /// Total seconds spent redistributing data.
    pub redist_total: f64,
    /// Total seconds spent computing iterations.
    pub compute_total: f64,
    /// `(time, procs)` allocation history.
    pub alloc_history: Vec<(f64, usize)>,
    /// Per-iteration records as seen by the Performance Profiler (one per
    /// resize point: configuration, iteration time, redistribution time
    /// paid just before it). The final iteration has no resize point and
    /// is therefore not recorded — exactly as in the real framework.
    pub iter_log: Vec<reshape_core::PerfRecord>,
}

/// End-of-run telemetry snapshot: the aggregate quantities the paper reports
/// (utilization, turnaround statistics, resize activity), computed from the
/// simulation itself — always populated, independent of the
/// `RESHAPE_TELEMETRY` mode.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimTelemetry {
    pub jobs_finished: usize,
    pub jobs_failed: usize,
    pub jobs_cancelled: usize,
    pub expansions: usize,
    pub shrinks: usize,
    pub utilization: f64,
    /// Turnaround statistics over jobs that ran to completion.
    pub mean_turnaround: f64,
    pub p95_turnaround: f64,
    pub max_turnaround: f64,
    pub compute_seconds_total: f64,
    pub redist_seconds_total: f64,
    /// Network bytes moved by resizing redistributions (ReSHAPE mode only —
    /// the checkpoint baseline funnels through disk instead).
    pub bytes_redistributed: u64,
}

/// One fixed-width slice of simulated time in [`SimResult::window_series`]:
/// the cluster-level trends (utilization, queue pressure, resize activity)
/// that end-of-run scalars average away.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowSample {
    /// 0-based window index; the window spans `[start, end)`.
    pub index: usize,
    pub start: f64,
    pub end: f64,
    /// Mean fraction of cluster processors assigned to jobs in the window.
    pub utilization: f64,
    /// Queued-job-seconds accrued inside the window (sum over jobs of the
    /// overlap between their `[submitted, started)` interval and the
    /// window).
    pub queue_wait_s: f64,
    /// Mean number of queued jobs over the window (`queue_wait_s / width`).
    pub queue_depth: f64,
    /// Expansions + shrinks actuated inside the window.
    pub resizes: usize,
}

/// Complete result of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimResult {
    pub jobs: Vec<JobOutcome>,
    pub events: Vec<SchedEvent>,
    pub makespan: f64,
    /// Mean fraction of cluster cpu-seconds assigned to jobs over the
    /// makespan (the paper's utilization metric).
    pub utilization: f64,
    pub total_procs: usize,
    /// Aggregate observability snapshot (see [`SimTelemetry`]).
    #[serde(default)]
    pub telemetry: SimTelemetry,
}

impl SimResult {
    /// Busy-processor step series `(time, busy)` (Figures 4(b)/5(b)).
    pub fn busy_series(&self) -> Vec<(f64, usize)> {
        let mut busy = 0usize;
        let mut per_job: std::collections::HashMap<JobId, usize> = Default::default();
        let mut out = vec![(0.0, 0)];
        for e in &self.events {
            match &e.kind {
                EventKind::Started { config } => {
                    busy += config.procs();
                    per_job.insert(e.job, config.procs());
                }
                EventKind::Expanded { to, .. }
                | EventKind::Shrunk { to, .. }
                | EventKind::NodeFailed { to, .. } => {
                    let prev = per_job.insert(e.job, to.procs()).unwrap_or(0);
                    busy = busy + to.procs() - prev;
                }
                EventKind::ExpandFailed { from, .. } => {
                    // Failed expansion reverts the allocation to `from`.
                    let prev = per_job.insert(e.job, from.procs()).unwrap_or(0);
                    busy = busy + from.procs() - prev;
                }
                EventKind::Finished | EventKind::Failed { .. } | EventKind::Cancelled => {
                    busy -= per_job.remove(&e.job).unwrap_or(0);
                }
                EventKind::Submitted => continue,
            }
            out.push((e.time, busy));
        }
        out
    }

    /// Cluster-level time series: split the makespan into `nwindows` equal
    /// windows and report, per window, mean utilization, queue pressure,
    /// and resize activity. This is the feed for the OpenMetrics exporter
    /// ([`SimResult::publish_metrics`]) and for trend dashboards — scalar
    /// end-of-run aggregates hide exactly the transients (arrival bursts,
    /// backfill gaps) that resizing policies exist to absorb.
    ///
    /// # Panics
    ///
    /// Panics if `nwindows == 0`.
    pub fn window_series(&self, nwindows: usize) -> Vec<WindowSample> {
        assert!(nwindows > 0, "need at least one window");
        let span = self.makespan.max(f64::MIN_POSITIVE);
        let len = span / nwindows as f64;
        let busy = self.busy_series();

        // Integral of the busy step function over [a, b).
        let busy_integral = |a: f64, b: f64| -> f64 {
            let mut acc = 0.0;
            let mut cur = 0usize;
            let mut t = a;
            for &(st, p) in &busy {
                if st <= a {
                    cur = p;
                    continue;
                }
                if st >= b {
                    break;
                }
                acc += cur as f64 * (st - t);
                t = st;
                cur = p;
            }
            acc + cur as f64 * (b - t)
        };

        (0..nwindows)
            .map(|i| {
                let (start, end) = (i as f64 * len, (i + 1) as f64 * len);
                let queue_wait_s: f64 = self
                    .jobs
                    .iter()
                    .map(|j| (j.started.min(end) - j.submitted.max(start)).max(0.0))
                    .sum();
                // Half-open windows; the final one is closed so an event at
                // exactly `makespan` is not dropped.
                let in_window = |t: f64| {
                    t >= start && (t < end || (i + 1 == nwindows && t <= end))
                };
                let resizes = self
                    .events
                    .iter()
                    .filter(|e| {
                        matches!(
                            e.kind,
                            EventKind::Expanded { .. } | EventKind::Shrunk { .. }
                        ) && in_window(e.time)
                    })
                    .count();
                WindowSample {
                    index: i,
                    start,
                    end,
                    utilization: busy_integral(start, end) / (self.total_procs as f64 * len),
                    queue_wait_s,
                    queue_depth: queue_wait_s / len,
                    resizes,
                }
            })
            .collect()
    }

    /// Publish the run into the global telemetry registry: overall gauges
    /// plus per-window labeled series (`reshape_sim_utilization{window="k"}`
    /// and friends) that `RESHAPE_METRICS` exports in OpenMetrics format.
    /// No-op when telemetry is off.
    pub fn publish_metrics(&self, nwindows: usize) {
        if !reshape_telemetry::enabled() {
            return;
        }
        reshape_telemetry::gauge_set("reshape_sim_makespan_seconds", self.makespan);
        reshape_telemetry::gauge_set("reshape_sim_utilization_overall", self.utilization);
        reshape_telemetry::gauge_set("reshape_sim_total_procs", self.total_procs as f64);
        reshape_telemetry::gauge_set(
            "reshape_sim_jobs_finished",
            self.telemetry.jobs_finished as f64,
        );
        reshape_telemetry::gauge_set(
            "reshape_sim_mean_turnaround_seconds",
            self.telemetry.mean_turnaround,
        );
        reshape_telemetry::gauge_set(
            "reshape_sim_bytes_redistributed",
            self.telemetry.bytes_redistributed as f64,
        );
        for w in self.window_series(nwindows) {
            let window = w.index.to_string();
            let labels = [("window", window.as_str())];
            reshape_telemetry::gauge_labeled("reshape_sim_utilization", &labels, w.utilization);
            reshape_telemetry::gauge_labeled(
                "reshape_sim_queue_wait_seconds",
                &labels,
                w.queue_wait_s,
            );
            reshape_telemetry::gauge_labeled("reshape_sim_queue_depth", &labels, w.queue_depth);
            reshape_telemetry::gauge_labeled("reshape_sim_resizes", &labels, w.resizes as f64);
        }
    }

    /// Per-job allocation step series (Figures 4(a)/5(a)).
    pub fn allocation_series(&self, job: JobId) -> Vec<(f64, usize)> {
        self.jobs
            .iter()
            .find(|j| j.job == job)
            .map(|j| j.alloc_history.clone())
            .unwrap_or_default()
    }

    /// Render the run as an ASCII chart: one row per job showing its
    /// processor allocation over time (digit buckets 1-9, `#` for ≥ 10×
    /// scale overflow), plus a cluster-occupancy row — a terminal rendition
    /// of the paper's Figures 4/5.
    pub fn gantt(&self, width: usize) -> String {
        assert!(width >= 10, "need a few columns to draw anything");
        let span = self.makespan.max(1e-9);
        let name_w = self
            .jobs
            .iter()
            .map(|j| j.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let sample = |series: &[(f64, usize)], t: f64| -> usize {
            let mut cur = 0;
            for &(st, p) in series {
                if st > t {
                    break;
                }
                cur = p;
            }
            cur
        };
        let glyph = |p: usize| -> char {
            match p {
                0 => '.',
                1..=9 => (b'0' + p as u8) as char,
                10..=35 => (b'a' + (p - 10) as u8) as char,
                _ => '#',
            }
        };
        let mut out = String::new();
        for j in &self.jobs {
            out.push_str(&format!("{:>name_w$} |", j.name));
            for c in 0..width {
                let t = span * (c as f64 + 0.5) / width as f64;
                out.push(glyph(sample(&j.alloc_history, t)));
            }
            out.push('\n');
        }
        let busy = self.busy_series();
        out.push_str(&format!("{:>name_w$} |", "busy"));
        for c in 0..width {
            let t = span * (c as f64 + 0.5) / width as f64;
            out.push(glyph(sample(&busy, t)));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:>name_w$} |0{:>pad$}",
            "t(s)",
            format!("{span:.0}"),
            pad = width - 1
        ));
        out.push('\n');
        out
    }
}

/// Simulator event payloads for the DES engine, which routes
/// arrivals/cancels/failures to the arrival-source component and
/// iteration ends to the job-driver component. The DES queue's FIFO
/// tie-break preserves the `(time, seq)` order the deleted legacy step
/// loop established, which is what keeps runs bitwise-stable against the
/// recorded snapshots.
#[derive(Debug)]
enum Ev {
    Arrival(usize),
    IterationEnd(JobId),
    Cancel(usize),
    Fail(usize),
}

struct JobSim {
    model: AppModel,
    iterations: usize,
    done: usize,
    last_iter_time: f64,
    last_redist: f64,
    redist_total: f64,
    compute_total: f64,
}

/// The simulator.
///
/// ```
/// use reshape_clustersim::{AppModel, ClusterSim, MachineParams, SimJob};
/// use reshape_core::{JobSpec, ProcessorConfig, TopologyPref};
///
/// let job = SimJob {
///     spec: JobSpec::new(
///         "LU",
///         TopologyPref::Grid { problem_size: 12000 },
///         ProcessorConfig::new(1, 2),
///         10,
///     ),
///     model: AppModel::Lu { n: 12000 },
///     arrival: 0.0,
///     cancel_at: None,
///     fail_at: None,
///     tenant: 0,
/// };
/// let result = ClusterSim::new(36, MachineParams::system_x()).run(&[job]);
/// assert_eq!(result.jobs.len(), 1);
/// // The idle cluster lets the job grow beyond its 2 initial processors.
/// assert!(result.jobs[0].alloc_history.iter().any(|&(_, p)| p > 2));
/// ```
pub struct ClusterSim {
    machine: MachineParams,
    total_procs: usize,
    policy: QueuePolicy,
    remap_policy: reshape_core::RemapPolicy,
    redist_mode: RedistMode,
    /// Advance reservations `(start, end, procs)` installed before the run.
    reservations: Vec<(f64, f64, usize)>,
    /// Per-slot speed factors (heterogeneous clusters); empty = homogeneous.
    slot_speeds: Vec<f64>,
    /// Ignore speeds when allocating (placement ablation).
    naive_placement: bool,
    /// Pluggable spawn/redistribution pricing; `None` = the default
    /// [`MachineLatency`] model (bitwise-identical to the pre-DES engine).
    latency: Option<Box<dyn LatencyModel>>,
    /// Ordering of simultaneous events in the DES queue. [`TieBreak::Fifo`]
    /// (the default) reproduces the recorded-snapshot order; seeded
    /// tie-breaks permute simultaneous events to flush order-dependent
    /// policy assumptions.
    tie_break: crate::event::TieBreak,
}

impl ClusterSim {
    pub fn new(total_procs: usize, machine: MachineParams) -> Self {
        ClusterSim {
            machine,
            total_procs,
            policy: QueuePolicy::Fcfs,
            remap_policy: reshape_core::RemapPolicy::Paper,
            redist_mode: RedistMode::Reshape,
            reservations: Vec::new(),
            slot_speeds: Vec::new(),
            naive_placement: false,
            latency: None,
            tie_break: crate::event::TieBreak::Fifo,
        }
    }

    /// Override the DES queue's tie-break among simultaneous events.
    /// `TieBreak::Seeded(s)` runs the same workload under a seeded
    /// permutation of same-timestamp events — the tool for proving a
    /// policy result doesn't lean on incidental push order. Results under
    /// different tie-breaks are *not* expected to be bitwise-identical
    /// (event interleavings legitimately differ), but every job must still
    /// reach the same terminal disposition and the run stays
    /// deterministic for a fixed seed.
    pub fn with_des_tie_break(mut self, tie: crate::event::TieBreak) -> Self {
        self.tie_break = tie;
        self
    }

    pub fn with_policy(mut self, policy: QueuePolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_remap_policy(mut self, policy: reshape_core::RemapPolicy) -> Self {
        self.remap_policy = policy;
        self
    }

    pub fn with_redist_mode(mut self, mode: RedistMode) -> Self {
        self.redist_mode = mode;
        self
    }

    /// Install an advance reservation of `procs` processors over
    /// `[start, end)` before the run.
    pub fn with_reservation(mut self, start: f64, end: f64, procs: usize) -> Self {
        self.reservations.push((start, end, procs));
        self
    }

    /// Model a heterogeneous cluster: one speed factor per slot (must match
    /// `total_procs`). Synchronous applications run at the pace of their
    /// slowest assigned slot; allocation hands out fast slots first.
    pub fn with_slot_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.total_procs, "one speed per slot");
        self.slot_speeds = speeds;
        self
    }

    /// Placement ablation: allocate slots by id, ignoring speed factors.
    pub fn with_naive_placement(mut self) -> Self {
        self.naive_placement = true;
        self
    }

    /// Replace the default spawn/redistribution pricing with a custom
    /// [`LatencyModel`] (see `crate::des`). The default — redistribution
    /// priced from the machine's communication schedules, spawn free — is
    /// what every paper experiment uses.
    pub fn with_latency_model(mut self, latency: Box<dyn LatencyModel>) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Price a resize, with the phase decomposition when the message-based
    /// path is in use (the checkpoint baseline has no pack/transfer/unpack
    /// schedule to decompose).
    fn redist_cost(
        &self,
        model: &AppModel,
        from: reshape_core::ProcessorConfig,
        to: reshape_core::ProcessorConfig,
    ) -> (f64, Option<RedistProfile>) {
        match &self.latency {
            Some(l) => l.redistribution(model, from, to),
            None => MachineLatency {
                machine: self.machine,
                mode: self.redist_mode,
            }
            .redistribution(model, from, to),
        }
    }

    /// Process-startup overhead charged before an expansion's
    /// redistribution. Zero under the default model, which keeps default
    /// runs bitwise-identical to the pre-DES engine.
    fn spawn_cost(
        &self,
        from: reshape_core::ProcessorConfig,
        to: reshape_core::ProcessorConfig,
    ) -> f64 {
        match &self.latency {
            Some(l) => l.spawn_overhead(from, to),
            None => 0.0,
        }
    }

    /// Run the workload to completion and report outcomes.
    ///
    /// Since the DES rewrite this drives the event-queue engine in
    /// [`crate::des`]. The original inline step loop (`run_legacy`) was
    /// deleted after the 256-seed bitwise differential suite soaked in
    /// CI; its behaviour is pinned as recorded result digests in
    /// `tests/snapshots/des_results.txt`, re-checked by
    /// `tests/des_equivalence.rs` on every run.
    pub fn run(&self, workload: &[SimJob]) -> SimResult {
        self.run_des(workload)
    }

    /// Run the workload on the DES engine: an arrival-source component
    /// (submissions, cancellations, failure injections) and a job-driver
    /// component (iteration ends / resize points) exchange events through
    /// the global queue, both mutating the shared `ClusterEngine`. The
    /// queue's FIFO tie-break reproduces the legacy loop's `(time, seq)`
    /// order exactly, because events are scheduled in the same program
    /// order the legacy loop pushed them.
    fn run_des(&self, workload: &[SimJob]) -> SimResult {
        use crate::des::{ComponentId, EventHandler, SimCtx, Simulation};
        use std::cell::RefCell;
        use std::rc::Rc;

        const ARRIVALS: ComponentId = 0;
        const DRIVER: ComponentId = 1;

        fn route(ev: &Ev) -> ComponentId {
            match ev {
                Ev::IterationEnd(_) => DRIVER,
                _ => ARRIVALS,
            }
        }

        struct ArrivalSource<'w> {
            engine: Rc<RefCell<ClusterEngine<'w>>>,
        }
        impl<'w> EventHandler<Ev> for ArrivalSource<'w> {
            fn handle(&mut self, ev: Ev, ctx: &mut SimCtx<'_, Ev>) {
                let mut eng = self.engine.borrow_mut();
                let now = ctx.now();
                eng.note_now(now);
                let mut push = |t: f64, e: Ev| {
                    let c = route(&e);
                    ctx.schedule(t, c, e);
                };
                match ev {
                    Ev::Arrival(i) => eng.on_arrival(i, now, &mut push),
                    Ev::Cancel(i) => eng.on_cancel(i, now, &mut push),
                    Ev::Fail(i) => eng.on_fail(i, now, &mut push),
                    Ev::IterationEnd(_) => unreachable!("routed to the job driver"),
                }
            }
        }

        struct JobDriver<'w> {
            engine: Rc<RefCell<ClusterEngine<'w>>>,
        }
        impl<'w> EventHandler<Ev> for JobDriver<'w> {
            fn handle(&mut self, ev: Ev, ctx: &mut SimCtx<'_, Ev>) {
                let mut eng = self.engine.borrow_mut();
                let now = ctx.now();
                eng.note_now(now);
                let mut push = |t: f64, e: Ev| {
                    let c = route(&e);
                    ctx.schedule(t, c, e);
                };
                match ev {
                    Ev::IterationEnd(id) => eng.on_iteration_end(id, now, &mut push),
                    other => unreachable!("{other:?} routed to the arrival source"),
                }
            }
        }

        let engine = Rc::new(RefCell::new(ClusterEngine::new(self, workload)));
        let mut sim: Simulation<'_, Ev> = Simulation::with_tie_break(self.tie_break);
        let arrivals = sim.add_component(Rc::new(RefCell::new(ArrivalSource {
            engine: engine.clone(),
        })));
        let driver = sim.add_component(Rc::new(RefCell::new(JobDriver {
            engine: engine.clone(),
        })));
        assert_eq!((arrivals, driver), (ARRIVALS, DRIVER));
        // Seed the initial events in the same program order as the legacy
        // loop; the FIFO tie-break then reproduces its (time, seq) order.
        for (i, j) in workload.iter().enumerate() {
            sim.schedule(j.arrival, ARRIVALS, Ev::Arrival(i));
            if let Some(t) = j.cancel_at {
                assert!(t >= j.arrival, "cannot cancel before arrival");
                sim.schedule(t, ARRIVALS, Ev::Cancel(i));
            }
            if let Some(t) = j.fail_at {
                assert!(t >= j.arrival, "cannot fail before arrival");
                sim.schedule(t, ARRIVALS, Ev::Fail(i));
            }
        }
        sim.run();
        drop(sim);
        Rc::try_unwrap(engine)
            .unwrap_or_else(|_| unreachable!("simulation dropped its handler references"))
            .into_inner()
            .finish()
    }

}

/// The shared transition logic of the cluster simulator: scheduler calls,
/// cost-model pricing, telemetry and trace emission, and end-of-run result
/// assembly. The DES component engine behind [`ClusterSim::run`] executes
/// exactly this code and emits follow-up events through the `push` sink in
/// program order, so identical pop orders yield byte-identical results,
/// floating point included — which is what lets the recorded snapshot
/// suite pin every field of every run to the bit.
struct ClusterEngine<'w> {
    cfg: &'w ClusterSim,
    workload: &'w [SimJob],
    core: SchedulerCore,
    sims: std::collections::HashMap<JobId, JobSim>,
    /// Map workload index -> JobId once submitted.
    submitted: Vec<Option<JobId>>,
    makespan: f64,
    bytes_redistributed: u64,
}

impl<'w> ClusterEngine<'w> {
    fn new(cfg: &'w ClusterSim, workload: &'w [SimJob]) -> Self {
        let mut core =
            SchedulerCore::new(cfg.total_procs, cfg.policy).with_remap_policy(cfg.remap_policy);
        if !cfg.slot_speeds.is_empty() {
            core = core.with_slot_speeds(cfg.slot_speeds.clone());
        }
        if cfg.naive_placement {
            core = core.with_alloc_order(reshape_core::AllocOrder::LowestId);
        }
        for &(start, end, procs) in &cfg.reservations {
            core.reserve(start, end, procs);
        }
        ClusterEngine {
            cfg,
            workload,
            core,
            sims: Default::default(),
            submitted: vec![None; workload.len()],
            makespan: 0.0,
            bytes_redistributed: 0,
        }
    }

    /// Every dispatched event advances the observed makespan.
    fn note_now(&mut self, now: f64) {
        self.makespan = self.makespan.max(now);
    }

    /// Schedule the first iteration of every newly started job. On a
    /// heterogeneous cluster, iteration time stretches by the slowest
    /// assigned slot (synchronous SPMD pace).
    fn handle_starts(
        &mut self,
        starts: Vec<StartAction>,
        now: f64,
        push: &mut dyn FnMut(f64, Ev),
    ) {
        for s in starts {
            let js = self.sims.get_mut(&s.job).expect("started job was submitted");
            let t_iter =
                js.model.iter_time_at(0, s.config, &self.cfg.machine) / self.core.job_speed(s.job);
            js.last_iter_time = t_iter;
            js.compute_total += t_iter;
            if reshape_telemetry::trace::enabled() {
                use reshape_telemetry::trace;
                let c = trace::complete(
                    s.job.0,
                    trace::head(s.job.0),
                    "iter 0",
                    "compute",
                    "sim",
                    now,
                    now + t_iter,
                );
                trace::set_head(s.job.0, c);
            }
            push(now + t_iter, Ev::IterationEnd(s.job));
        }
    }

    fn on_arrival(&mut self, i: usize, now: f64, push: &mut dyn FnMut(f64, Ev)) {
        let j = &self.workload[i];
        let (id, starts) = self.core.submit(j.spec.clone(), now);
        self.submitted[i] = Some(id);
        self.sims.insert(
            id,
            JobSim {
                model: j.model.clone(),
                iterations: j.spec.iterations,
                done: 0,
                last_iter_time: 0.0,
                last_redist: 0.0,
                redist_total: 0.0,
                compute_total: 0.0,
            },
        );
        self.handle_starts(starts, now, push);
    }

    fn on_cancel(&mut self, i: usize, now: f64, push: &mut dyn FnMut(f64, Ev)) {
        if let Some(id) = self.submitted[i] {
            let starts = self.core.cancel(id, now);
            self.handle_starts(starts, now, push);
        }
    }

    fn on_fail(&mut self, i: usize, now: f64, push: &mut dyn FnMut(f64, Ev)) {
        if let Some(id) = self.submitted[i] {
            let starts = self.core.on_failed(id, "injected failure".into(), now);
            self.handle_starts(starts, now, push);
        }
    }

    fn on_iteration_end(&mut self, id: JobId, now: f64, push: &mut dyn FnMut(f64, Ev)) {
        let (iter_time, redist, done, iterations) = {
            let js = self.sims.get_mut(&id).expect("job exists");
            js.done += 1;
            (js.last_iter_time, js.last_redist, js.done, js.iterations)
        };
        if done >= iterations {
            let starts = self.core.on_finished(id, now);
            self.handle_starts(starts, now, push);
            return;
        }
        // Resize point: report the last iteration + the redistribution paid
        // before it. Capture the configuration *before* the directive is
        // applied — the redistribution runs between it and the new one.
        let pre = match self.core.job(id).map(|r| &r.state) {
            Some(reshape_core::JobState::Running { config }) => *config,
            // Cancelled mid-iteration: the check-in consumes the pending
            // Terminate and the job simply stops.
            _ => {
                let (d, starts) = self.core.resize_point(id, iter_time, redist, now);
                debug_assert!(matches!(d, Directive::Terminate | Directive::NoChange));
                self.handle_starts(starts, now, push);
                return;
            }
        };
        let (directive, starts) = self.core.resize_point(id, iter_time, redist, now);
        if directive == Directive::Terminate {
            self.handle_starts(starts, now, push);
            return;
        }
        let js = self.sims.get_mut(&id).expect("job exists");
        let expanded = matches!(directive, Directive::Expand { .. });
        let (next_cfg, redist_cost, profile) = match directive {
            Directive::NoChange => (pre, 0.0, None),
            Directive::Terminate => unreachable!("handled above"),
            Directive::Expand { to, .. } | Directive::Shrink { to } => {
                let (cost, prof) = self.cfg.redist_cost(&js.model, pre, to);
                (to, cost, prof)
            }
        };
        if redist_cost > 0.0 {
            self.core.note_redist_cost(id, pre, next_cfg, redist_cost);
        }
        if let Some(prof) = &profile {
            self.bytes_redistributed += prof.bytes;
            if reshape_telemetry::enabled() {
                reshape_telemetry::record(reshape_telemetry::Event::Redistribution {
                    time: now,
                    job: id.0,
                    from: pre.to_string(),
                    to: next_cfg.to_string(),
                    bytes: prof.bytes,
                    plan_steps: prof.plan_steps as usize,
                    transfers: prof.transfers as usize,
                    pack_seconds: prof.pack_seconds,
                    transfer_seconds: prof.transfer_seconds,
                    unpack_seconds: prof.unpack_seconds,
                    total_seconds: prof.total_seconds,
                });
            }
        }
        // Phase boundary: the next iteration belongs to a new computational
        // phase, so the profiler's timing history resets and the job
        // re-probes its sweet spot.
        if js.model.phase_at(done).1 {
            self.core.phase_change(id, now);
        }
        let speed = {
            // js borrows sims mutably; job_speed only reads core.
            let s = self.core.job_speed(id);
            if s > 0.0 {
                s
            } else {
                1.0
            }
        };
        // Spawn overhead is zero under the default latency model, keeping
        // the pause (and every timestamp derived from it) bitwise-equal to
        // the pre-DES engine; a custom model pays it before redistributing.
        let spawn_cost = if expanded {
            self.cfg.spawn_cost(pre, next_cfg)
        } else {
            0.0
        };
        let pause = spawn_cost + redist_cost;
        let t_iter = js.model.iter_time_at(done, next_cfg, &self.cfg.machine) / speed;
        js.last_iter_time = t_iter;
        js.last_redist = pause;
        js.redist_total += pause;
        js.compute_total += t_iter;
        if reshape_telemetry::trace::enabled() {
            // Resize span chain under the decision the core just emitted
            // (and set as the job's trace head): decision → spawn →
            // redist(+phases) → next compute, all stamped with the
            // deterministic sim clock.
            use reshape_telemetry::trace;
            let jid = id.0;
            if expanded {
                let sp = trace::complete(
                    jid,
                    trace::head(jid),
                    format!("spawn {pre}->{next_cfg}"),
                    "spawn",
                    "sim",
                    now,
                    now + spawn_cost,
                );
                trace::set_head(jid, sp);
            }
            let redist_start = now + spawn_cost;
            if redist_cost > 0.0 {
                let r = trace::complete(
                    jid,
                    trace::head(jid),
                    format!("redist {pre}->{next_cfg}"),
                    "redist",
                    "sim",
                    redist_start,
                    redist_start + redist_cost,
                );
                if let Some(prof) = &profile {
                    let t1 = redist_start + prof.pack_seconds;
                    let t2 = t1 + prof.transfer_seconds;
                    let t3 = (t2 + prof.unpack_seconds).min(redist_start + redist_cost);
                    trace::complete(jid, r, "pack", "redist_pack", "sim", redist_start, t1);
                    trace::complete(jid, r, "transfer", "redist_transfer", "sim", t1, t2);
                    trace::complete(jid, r, "unpack", "redist_unpack", "sim", t2, t3);
                }
                trace::set_head(jid, r);
            }
            let c = trace::complete(
                jid,
                trace::head(jid),
                format!("iter {done}"),
                "compute",
                "sim",
                now + pause,
                now + pause + t_iter,
            );
            trace::set_head(jid, c);
        }
        push(now + pause + t_iter, Ev::IterationEnd(id));
        self.handle_starts(starts, now, push);
    }

    /// Assemble the [`SimResult`]. Draining keeps the core's bounded trace
    /// empty for any further use of the scheduler state.
    fn finish(mut self) -> SimResult {
        let events = self.core.drain_events();
        let mut jobs = Vec::new();
        for (i, j) in self.workload.iter().enumerate() {
            let id = self.submitted[i].expect("all workload jobs were submitted");
            let rec = self.core.job(id).expect("job exists");
            let js = &self.sims[&id];
            let started = rec.started_at.unwrap_or(f64::NAN);
            let finished = rec.finished_at.unwrap_or(f64::NAN);
            let mut alloc: Vec<(f64, usize)> = Vec::new();
            for e in &events {
                if e.job != id {
                    continue;
                }
                match &e.kind {
                    EventKind::Started { config } => alloc.push((e.time, config.procs())),
                    EventKind::Expanded { to, .. }
                    | EventKind::Shrunk { to, .. }
                    | EventKind::NodeFailed { to, .. } => alloc.push((e.time, to.procs())),
                    EventKind::ExpandFailed { from, .. } => alloc.push((e.time, from.procs())),
                    EventKind::Finished | EventKind::Failed { .. } | EventKind::Cancelled => {
                        alloc.push((e.time, 0))
                    }
                    EventKind::Submitted => {}
                }
            }
            if reshape_telemetry::enabled() {
                let expansions = events
                    .iter()
                    .filter(|e| e.job == id && matches!(e.kind, EventKind::Expanded { .. }))
                    .count();
                let shrinks = events
                    .iter()
                    .filter(|e| e.job == id && matches!(e.kind, EventKind::Shrunk { .. }))
                    .count();
                let final_procs = alloc
                    .iter()
                    .rev()
                    .map(|&(_, p)| p)
                    .find(|&p| p > 0)
                    .unwrap_or(0);
                reshape_telemetry::record(reshape_telemetry::Event::JobTurnaround {
                    job: id.0,
                    name: j.spec.name.clone(),
                    submitted: j.arrival,
                    started,
                    finished,
                    turnaround: finished - j.arrival,
                    compute_seconds: js.compute_total,
                    redist_seconds: js.redist_total,
                    expansions,
                    shrinks,
                    final_procs,
                });
            }
            jobs.push(JobOutcome {
                name: j.spec.name.clone(),
                job: id,
                initial_procs: j.spec.initial.procs(),
                submitted: j.arrival,
                started,
                finished,
                turnaround: finished - j.arrival,
                redist_total: js.redist_total,
                compute_total: js.compute_total,
                alloc_history: alloc,
                iter_log: self
                    .core
                    .profiler()
                    .profile(id)
                    .map(|p| p.history().to_vec())
                    .unwrap_or_default(),
            });
        }
        let utilization = self.core.utilization(self.makespan);
        let telemetry = {
            let mut t = SimTelemetry {
                utilization,
                bytes_redistributed: self.bytes_redistributed,
                ..Default::default()
            };
            for e in &events {
                match e.kind {
                    EventKind::Finished => t.jobs_finished += 1,
                    EventKind::Failed { .. } => t.jobs_failed += 1,
                    EventKind::Cancelled => t.jobs_cancelled += 1,
                    EventKind::Expanded { .. } => t.expansions += 1,
                    EventKind::Shrunk { .. } => t.shrinks += 1,
                    _ => {}
                }
            }
            let mut turnarounds: Vec<f64> = jobs
                .iter()
                .filter(|j| j.turnaround.is_finite())
                .map(|j| j.turnaround)
                .collect();
            turnarounds.sort_by(|a, b| a.partial_cmp(b).expect("finite turnarounds"));
            if !turnarounds.is_empty() {
                let n = turnarounds.len();
                t.mean_turnaround = turnarounds.iter().sum::<f64>() / n as f64;
                t.p95_turnaround = turnarounds[((n as f64 * 0.95).ceil() as usize).max(1) - 1];
                t.max_turnaround = turnarounds[n - 1];
            }
            t.compute_seconds_total = jobs.iter().map(|j| j.compute_total).sum();
            t.redist_seconds_total = jobs.iter().map(|j| j.redist_total).sum();
            t
        };
        SimResult {
            jobs,
            events,
            makespan: self.makespan,
            utilization,
            total_procs: self.cfg.total_procs,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_core::{ProcessorConfig, TopologyPref};

    fn lu_job(n: usize, initial: (usize, usize), iters: usize, arrival: f64) -> SimJob {
        SimJob {
            spec: JobSpec::new(
                format!("LU{n}"),
                TopologyPref::Grid { problem_size: n },
                ProcessorConfig::new(initial.0, initial.1),
                iters,
            ),
            model: AppModel::Lu { n },
            arrival,
            cancel_at: None,
        fail_at: None,
        tenant: 0,
        }
    }

    #[test]
    fn single_job_expands_and_finishes_sooner_than_static() {
        let machine = MachineParams::system_x();
        let sim = ClusterSim::new(36, machine);
        let dynamic = sim.run(&[lu_job(12000, (1, 2), 10, 0.0)]);
        let mut static_job = lu_job(12000, (1, 2), 10, 0.0);
        static_job.spec = static_job.spec.static_job();
        let stat = sim.run(&[static_job]);
        assert!(
            dynamic.jobs[0].turnaround < stat.jobs[0].turnaround * 0.8,
            "dynamic {} should beat static {}",
            dynamic.jobs[0].turnaround,
            stat.jobs[0].turnaround
        );
        // The dynamic job actually grew.
        let max_procs = dynamic.jobs[0]
            .alloc_history
            .iter()
            .map(|&(_, p)| p)
            .max()
            .unwrap();
        assert!(max_procs > 2, "allocation history {:?}", dynamic.jobs[0].alloc_history);
    }

    #[test]
    fn simulation_is_deterministic() {
        let machine = MachineParams::system_x();
        let sim = ClusterSim::new(36, machine);
        let workload = vec![
            lu_job(12000, (1, 2), 10, 0.0),
            lu_job(8000, (2, 2), 10, 100.0),
        ];
        let a = sim.run(&workload);
        let b = sim.run(&workload);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.utilization, b.utilization);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.turnaround, y.turnaround);
            assert_eq!(x.alloc_history, y.alloc_history);
        }
    }

    #[test]
    fn telemetry_snapshot_summarizes_the_run() {
        let machine = MachineParams::system_x();
        let result = ClusterSim::new(36, machine).run(&[
            lu_job(12000, (1, 2), 10, 0.0),
            lu_job(8000, (2, 2), 10, 100.0),
        ]);
        let t = &result.telemetry;
        assert_eq!(t.jobs_finished, 2);
        assert_eq!(t.jobs_failed + t.jobs_cancelled, 0);
        assert!(t.expansions > 0, "idle cluster must trigger expansions");
        assert!(t.bytes_redistributed > 0, "expansions move data");
        assert_eq!(t.utilization, result.utilization);
        let turnarounds: Vec<f64> = result.jobs.iter().map(|j| j.turnaround).collect();
        let mean = turnarounds.iter().sum::<f64>() / turnarounds.len() as f64;
        assert!((t.mean_turnaround - mean).abs() < 1e-9);
        assert_eq!(
            t.max_turnaround,
            turnarounds.iter().cloned().fold(f64::MIN, f64::max)
        );
        assert!(t.p95_turnaround <= t.max_turnaround && t.p95_turnaround >= t.mean_turnaround);
        assert!(t.compute_seconds_total > 0.0 && t.redist_seconds_total > 0.0);
        // The snapshot round-trips with the rest of the result.
        let json = serde_json::to_string(&result).unwrap();
        let back: SimResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.telemetry, result.telemetry);
    }

    #[test]
    fn queued_job_waits_for_processors() {
        let machine = MachineParams::system_x();
        let sim = ClusterSim::new(4, machine);
        let result = sim.run(&[
            lu_job(8000, (2, 2), 3, 0.0),
            lu_job(8000, (2, 2), 3, 1.0), // must queue: cluster full
        ]);
        let a = &result.jobs[0];
        let b = &result.jobs[1];
        assert!(b.started >= a.finished - 1e-9, "B started {} before A finished {}", b.started, a.finished);
    }

    #[test]
    fn checkpoint_mode_costs_more_total_time() {
        let machine = MachineParams::system_x();
        let base = ClusterSim::new(36, machine);
        let fast = base.run(&[lu_job(12000, (1, 2), 10, 0.0)]);
        let slow = ClusterSim::new(36, machine)
            .with_redist_mode(RedistMode::Checkpoint)
            .run(&[lu_job(12000, (1, 2), 10, 0.0)]);
        assert!(
            slow.jobs[0].redist_total > 2.0 * fast.jobs[0].redist_total,
            "checkpoint redistribution {} should dwarf reshape {}",
            slow.jobs[0].redist_total,
            fast.jobs[0].redist_total
        );
    }

    #[test]
    fn utilization_improves_with_dynamic_scheduling() {
        let machine = MachineParams::system_x();
        let workload = || {
            vec![
                lu_job(12000, (2, 2), 10, 0.0),
                SimJob {
                    spec: JobSpec::new(
                        "MW",
                        TopologyPref::AnyCount { min: 2, max: 22, step: 2 },
                        ProcessorConfig::linear(2),
                        10,
                    ),
                    model: AppModel::MasterWorker { units: 20000, unit_time: 0.74e-3 },
                    arrival: 50.0,
                    cancel_at: None,
        fail_at: None,
        tenant: 0,
                },
            ]
        };
        let dynamic = ClusterSim::new(36, machine).run(&workload());
        let static_run = {
            let jobs: Vec<SimJob> = workload()
                .into_iter()
                .map(|mut j| {
                    j.spec = j.spec.static_job();
                    j
                })
                .collect();
            ClusterSim::new(36, machine).run(&jobs)
        };
        assert!(
            dynamic.utilization > static_run.utilization,
            "dynamic {} <= static {}",
            dynamic.utilization,
            static_run.utilization
        );
    }

    #[test]
    fn reservation_carves_out_capacity_at_paper_scale() {
        // A 30-processor reservation window opens at t=600, when the LU
        // job has grown to ~12 processors: at its next resize point it must
        // shrink to within the 6 unreserved processors and stay there for
        // the whole window.
        let machine = MachineParams::system_x();
        let result = ClusterSim::new(36, machine)
            .with_reservation(600.0, 1e6, 30)
            .run(&[lu_job(21000, (2, 3), 10, 0.0)]);
        let lu = &result.jobs[0];
        // Find the first resize point after the window opens; from shortly
        // after it, the allocation must fit the unreserved capacity.
        let after_adjust: Vec<(f64, usize)> = lu
            .alloc_history
            .iter()
            .copied()
            .filter(|&(t, p)| t > 600.0 && p > 0)
            .collect();
        assert!(
            !after_adjust.is_empty() && after_adjust.iter().all(|&(_, p)| p <= 6),
            "LU must vacate reserved capacity: {:?}",
            lu.alloc_history
        );
        let shrank = lu
            .alloc_history
            .windows(2)
            .any(|w| w[1].1 < w[0].1 && w[1].1 > 0);
        assert!(shrank, "{:?}", lu.alloc_history);
    }

    #[test]
    fn high_priority_arrival_preempts_capacity_sooner() {
        // Two identical late arrivals, one submitted with priority: the
        // prioritized run must start it no later than the plain run.
        let machine = MachineParams::system_x();
        let mk = |priority: u8| {
            let mut jobs = vec![
                lu_job(21000, (2, 3), 10, 0.0),
                lu_job(12000, (2, 2), 10, 0.0),
            ];
            let mut late = lu_job(8000, (4, 4), 5, 300.0);
            late.spec = late.spec.with_priority(priority);
            jobs.push(late);
            jobs
        };
        let plain = ClusterSim::new(24, machine).run(&mk(0));
        let prio = ClusterSim::new(24, machine).run(&mk(9));
        let started = |r: &SimResult| r.jobs[2].started;
        assert!(
            started(&prio) <= started(&plain) + 1e-9,
            "prioritized start {} vs plain {}",
            started(&prio),
            started(&plain)
        );
    }

    #[test]
    fn phased_application_reprobes_after_phase_change() {
        // Phase 1: light work (sweet spot small). Phase 2: heavy work.
        // After the boundary the profiler resets and the job grows again —
        // without the reset, the phase-1 sweet-spot verdict would pin it.
        let machine = MachineParams::system_x();
        let job = SimJob {
            spec: JobSpec::new(
                "phased",
                TopologyPref::Grid { problem_size: 8000 },
                ProcessorConfig::new(1, 2),
                16,
            ),
            model: AppModel::Phased {
                phases: vec![
                    (8, AppModel::Lu { n: 8000 }),
                    (8, AppModel::Lu { n: 24000 }),
                ],
            },
            arrival: 0.0,
            cancel_at: None,
        fail_at: None,
        tenant: 0,
        };
        let result = ClusterSim::new(40, machine).run(&[job]);
        let lu = &result.jobs[0];
        // 16 iterations yield 15 resize-point records; the boundary reset
        // wiped the 8 phase-1 records, leaving only phase 2's.
        assert_eq!(
            lu.iter_log.len(),
            7,
            "phase change must clear phase-1 records: {:?}",
            lu.iter_log
        );
        // Phase-2 (LU-24000) iteration times are an order of magnitude
        // heavier than phase 1's — the log must contain only those.
        assert!(
            lu.iter_log.iter().all(|r| r.iter_time > 50.0),
            "only heavy-phase records expected: {:?}",
            lu.iter_log
        );
        // And the job kept growing in phase 2 (re-probe after reset): the
        // last recorded configuration is at least as large as the first
        // phase-2 one.
        let first = lu.iter_log.first().unwrap().config.procs();
        let last = lu.iter_log.last().unwrap().config.procs();
        assert!(
            last >= first,
            "phase 2 should re-expand from {first} (got {last}): {:?}",
            lu.iter_log
        );
    }

    #[test]
    fn phase_at_maps_iterations_to_phases() {
        let m = AppModel::Phased {
            phases: vec![
                (3, AppModel::Lu { n: 8000 }),
                (2, AppModel::Mm { n: 8000 }),
            ],
        };
        assert!(matches!(m.phase_at(0), (AppModel::Lu { .. }, false)));
        assert!(matches!(m.phase_at(2), (AppModel::Lu { .. }, false)));
        assert!(matches!(m.phase_at(3), (AppModel::Mm { .. }, true)));
        assert!(matches!(m.phase_at(4), (AppModel::Mm { .. }, false)));
        // Past the end: clamps to the last phase, no new boundary.
        assert!(matches!(m.phase_at(99), (AppModel::Mm { .. }, false)));
        // Single-phase models never report a boundary.
        assert!(!AppModel::Lu { n: 8000 }.phase_at(5).1);
    }

    #[test]
    fn gantt_renders_all_jobs_and_axis() {
        let machine = MachineParams::system_x();
        let result = ClusterSim::new(36, machine).run(&[
            lu_job(12000, (1, 2), 5, 0.0),
            lu_job(8000, (2, 2), 5, 100.0),
        ]);
        let chart = result.gantt(60);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2 + 2, "jobs + busy + axis");
        assert!(lines.iter().all(|l| l.contains('|')));
        // Busy row starts with the first job's 2 processors occupied (the
        // final sampled column lands mid-way through the last iteration, so
        // it is legitimately non-idle).
        let busy_row = lines[2].split('|').nth(1).unwrap();
        assert!(busy_row.starts_with('2'), "{busy_row}");
        // Every job row has at least one non-idle glyph.
        for l in &lines[..2] {
            let body = l.split('|').nth(1).unwrap();
            assert!(body.chars().any(|c| c != '.'), "{l}");
        }
        assert!(lines[3].contains("t(s)"));
    }

    #[test]
    fn heterogeneous_slots_slow_jobs_down() {
        let machine = MachineParams::system_x();
        // 4-slot cluster where two slots run at half speed. A 4-proc static
        // job must straddle the slow slots and pay for it.
        let uniform = ClusterSim::new(4, machine).run(&[{
            let mut j = lu_job(8000, (2, 2), 5, 0.0);
            j.spec = j.spec.static_job();
            j
        }]);
        let hetero = ClusterSim::new(4, machine)
            .with_slot_speeds(vec![1.0, 1.0, 0.5, 0.5])
            .run(&[{
                let mut j = lu_job(8000, (2, 2), 5, 0.0);
                j.spec = j.spec.static_job();
                j
            }]);
        assert!(
            (hetero.jobs[0].turnaround - 2.0 * uniform.jobs[0].turnaround).abs()
                < 1e-6 * uniform.jobs[0].turnaround,
            "slowest-slot pace: {} vs uniform {}",
            hetero.jobs[0].turnaround,
            uniform.jobs[0].turnaround
        );
    }

    #[test]
    fn speed_aware_placement_beats_naive() {
        let machine = MachineParams::system_x();
        // 8 slots: 4 fast, 4 half-speed (interleaved so id-order placement
        // inevitably grabs slow slots). One 4-proc job: speed-aware
        // allocation keeps it on the fast slots.
        let speeds = vec![1.0, 0.5, 1.0, 0.5, 1.0, 0.5, 1.0, 0.5];
        let job = || {
            let mut j = lu_job(8000, (2, 2), 5, 0.0);
            j.spec = j.spec.static_job();
            j
        };
        let aware = ClusterSim::new(8, machine)
            .with_slot_speeds(speeds.clone())
            .run(&[job()]);
        let naive = ClusterSim::new(8, machine)
            .with_slot_speeds(speeds)
            .with_naive_placement()
            .run(&[job()]);
        assert!(
            naive.jobs[0].turnaround > 1.5 * aware.jobs[0].turnaround,
            "naive {} should be ~2x aware {}",
            naive.jobs[0].turnaround,
            aware.jobs[0].turnaround
        );
    }

    #[test]
    fn scripted_cancellation_frees_the_cluster() {
        let machine = MachineParams::system_x();
        let mut hog = lu_job(21000, (2, 3), 10, 0.0);
        hog.cancel_at = Some(500.0);
        let late = lu_job(12000, (2, 2), 5, 600.0);
        let result = ClusterSim::new(8, machine).run(&[hog, late]);
        let hog_out = &result.jobs[0];
        // The hog never ran to its natural completion (~2700s at 6-8 procs).
        assert!(
            hog_out.finished < 1500.0,
            "cancelled job should end early: {}",
            hog_out.finished
        );
        // The late arrival ran unobstructed.
        let late_out = &result.jobs[1];
        assert!(late_out.finished.is_finite());
        assert!(late_out.started < hog_out.finished + 2000.0);
        // Trace records the cancellation.
        assert!(result
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Cancelled)));
    }

    #[test]
    fn injected_failure_reclaims_resources_for_queued_work() {
        let machine = MachineParams::system_x();
        let mut flaky = lu_job(21000, (2, 3), 10, 0.0);
        flaky.fail_at = Some(300.0);
        let queued = lu_job(12000, (2, 3), 5, 10.0); // blocked on an 8-proc cluster
        let result = ClusterSim::new(8, machine).run(&[flaky, queued]);
        let f = &result.jobs[0];
        assert!(f.finished <= 300.0 + 1e-9, "failed at 300, got {}", f.finished);
        let q = &result.jobs[1];
        assert!(
            (q.started - 300.0).abs() < 1e-6,
            "queued job starts when the failure frees the cluster: {}",
            q.started
        );
        assert!(result
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Failed { .. })));
    }

    #[test]
    fn busy_series_is_consistent_with_events() {
        let machine = MachineParams::system_x();
        let result = ClusterSim::new(36, machine).run(&[
            lu_job(12000, (1, 2), 5, 0.0),
            lu_job(8000, (2, 2), 5, 10.0),
        ]);
        let series = result.busy_series();
        assert_eq!(series.first(), Some(&(0.0, 0)));
        assert_eq!(series.last().map(|&(_, b)| b), Some(0), "cluster drains at the end");
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0, "series must be time-ordered");
        }
        let max_busy = series.iter().map(|&(_, b)| b).max().unwrap();
        assert!(max_busy <= 36);
    }

    #[test]
    fn window_series_tiles_the_makespan_consistently() {
        let machine = MachineParams::system_x();
        let result = ClusterSim::new(36, machine).run(&[
            lu_job(12000, (1, 2), 5, 0.0),
            lu_job(8000, (2, 2), 5, 10.0),
            lu_job(8000, (2, 2), 5, 11.0),
        ]);
        let windows = result.window_series(8);
        assert_eq!(windows.len(), 8);
        assert_eq!(windows[0].start, 0.0);
        assert!((windows[7].end - result.makespan).abs() < 1e-9);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert!(w.utilization >= 0.0 && w.utilization <= 1.0 + 1e-9, "window {i}");
            assert!(w.queue_wait_s >= 0.0);
            assert!((w.queue_depth - w.queue_wait_s / (w.end - w.start)).abs() < 1e-9);
        }
        // Windowed utilization must average back to the overall number.
        let mean: f64 = windows.iter().map(|w| w.utilization).sum::<f64>() / 8.0;
        assert!(
            (mean - result.utilization).abs() < 1e-6,
            "window mean {mean} vs overall {}",
            result.utilization
        );
        // Windowed resize counts must total the run's resize count.
        let resizes: usize = windows.iter().map(|w| w.resizes).sum();
        assert_eq!(
            resizes,
            result.telemetry.expansions + result.telemetry.shrinks
        );
        // Queue wait totals the per-job submit→start gaps.
        let waited: f64 = windows.iter().map(|w| w.queue_wait_s).sum();
        let expect: f64 = result.jobs.iter().map(|j| j.started - j.submitted).sum();
        assert!((waited - expect).abs() < 1e-6, "{waited} vs {expect}");
    }

    #[test]
    fn publish_metrics_feeds_the_openmetrics_exporter() {
        let machine = MachineParams::system_x();
        let result = ClusterSim::new(36, machine).run(&[
            lu_job(12000, (1, 2), 5, 0.0),
            lu_job(8000, (2, 2), 5, 10.0),
        ]);
        let before = reshape_telemetry::mode();
        reshape_telemetry::set_mode(reshape_telemetry::Mode::Metrics);
        result.publish_metrics(4);
        let text =
            reshape_telemetry::render_openmetrics(&reshape_telemetry::Registry::global().snapshot());
        reshape_telemetry::set_mode(before);
        assert!(text.contains("# TYPE reshape_sim_utilization gauge"), "{text}");
        for w in 0..4 {
            assert!(text.contains(&format!("reshape_sim_utilization{{window=\"{w}\"}}")));
            assert!(text.contains(&format!("reshape_sim_queue_wait_seconds{{window=\"{w}\"}}")));
            assert!(text.contains(&format!("reshape_sim_resizes{{window=\"{w}\"}}")));
        }
        assert!(text.contains("reshape_sim_makespan_seconds "));
    }
}
