//! Live terminal dashboard for `simulate --top`.
//!
//! Renders one frame of cluster state at a virtual time `t`: pool
//! occupancy, per-job state/allocation/iteration-time sparkline, and the
//! most recent §3.1 remap decisions. The renderer is a pure function of
//! `(SimResult, decisions, t)` — the simulation runs to completion first
//! and the dashboard replays it on a sim-time cadence, which keeps the
//! display deterministic and testable.

use reshape_core::EventKind;
use reshape_telemetry::Event;

use crate::sim::{JobOutcome, SimResult};

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Map a value series onto spark glyphs, scaled to the series' own range.
fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    let shown = &values[values.len().saturating_sub(width)..];
    let lo = shown.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = shown.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);
    shown
        .iter()
        .map(|&v| {
            let idx = (((v - lo) / range) * (SPARK.len() - 1) as f64).round() as usize;
            SPARK[idx.min(SPARK.len() - 1)]
        })
        .collect()
}

/// Step-sample a `(time, value)` series at `t`.
fn sample(series: &[(f64, usize)], t: f64) -> usize {
    let mut cur = 0;
    for &(st, v) in series {
        if st > t {
            break;
        }
        cur = v;
    }
    cur
}

/// Job lifecycle state at virtual time `t`, reconstructed from the
/// scheduler event trace.
fn state_at(result: &SimResult, j: &JobOutcome, t: f64) -> &'static str {
    if t < j.submitted {
        return "-";
    }
    for e in &result.events {
        if e.job != j.job || e.time > t {
            continue;
        }
        match e.kind {
            EventKind::Finished => return "done",
            EventKind::Failed { .. } => return "failed",
            EventKind::Cancelled => return "cancelled",
            _ => {}
        }
    }
    if j.started.is_finite() && t >= j.started {
        "running"
    } else {
        "queued"
    }
}

/// How far through its iteration log a job is at `t` (progress proxy: the
/// profiler records carry no timestamps, so the window interpolates over
/// the job's running interval).
fn iters_known_by(j: &JobOutcome, t: f64) -> usize {
    if !j.started.is_finite() || t < j.started || j.iter_log.is_empty() {
        return 0;
    }
    let end = if j.finished.is_finite() { j.finished } else { j.started + 1.0 };
    let frac = ((t - j.started) / (end - j.started).max(1e-12)).clamp(0.0, 1.0);
    ((frac * j.iter_log.len() as f64).ceil() as usize).min(j.iter_log.len())
}

/// Render one dashboard frame at virtual time `t`, `width` columns wide.
pub fn frame(result: &SimResult, decisions: &[Event], t: f64, width: usize) -> String {
    use std::fmt::Write as _;
    let width = width.max(60);
    let mut out = String::new();
    let busy = sample(&result.busy_series(), t);
    let total = result.total_procs.max(1);
    let bar_w = 20usize;
    let filled = (busy * bar_w + total / 2) / total;
    let bar: String = (0..bar_w).map(|i| if i < filled { '#' } else { '.' }).collect();
    let _ = writeln!(
        out,
        "reshape --top   t={t:9.1}s / {:.1}s   pool {busy:>3}/{total} [{bar}]   util {:.2}",
        result.makespan, result.utilization
    );
    let name_w = result
        .jobs
        .iter()
        .map(|j| j.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let spark_w = width.saturating_sub(name_w + 40).clamp(8, 32);
    let _ = writeln!(
        out,
        "{:>4}  {:<name_w$}  {:<9}  {:>5}  {:>9}  trend",
        "job", "name", "state", "procs", "iter(s)"
    );
    for j in &result.jobs {
        let known = iters_known_by(j, t);
        let times: Vec<f64> = j.iter_log[..known].iter().map(|r| r.iter_time).collect();
        let last = times.last().copied();
        let _ = writeln!(
            out,
            "{:>4}  {:<name_w$}  {:<9}  {:>5}  {:>9}  {}",
            j.job.0,
            j.name,
            state_at(result, j, t),
            sample(&j.alloc_history, t),
            last.map_or_else(|| "-".into(), |v| format!("{v:.2}")),
            sparkline(&times, spark_w),
        );
    }
    let _ = writeln!(out, "-- decisions (\u{a7}3.1) --");
    let mut feed: Vec<&Event> = decisions
        .iter()
        .filter(|e| matches!(e, Event::ResizeDecision { time, .. } if *time <= t))
        .collect();
    let keep = feed.len().saturating_sub(5);
    feed.drain(..keep);
    if feed.is_empty() {
        let _ = writeln!(out, "  (none yet)");
    }
    for e in feed {
        if let Event::ResizeDecision {
            time,
            job,
            from,
            decision,
            to,
            iter_time,
            redist_time,
            ..
        } = e
        {
            let target = to.as_deref().unwrap_or("-");
            let _ = writeln!(
                out,
                "  t={time:9.1}  job {job:<3}  {from:>5} {decision:<9} {target:<5}  iter={iter_time:.2}  redist={redist_time:.2}"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfmodel::{AppModel, MachineParams};
    use crate::sim::{ClusterSim, SimJob};
    use reshape_core::{JobSpec, ProcessorConfig, TopologyPref};

    fn run() -> SimResult {
        let job = SimJob {
            spec: JobSpec::new(
                "LU12000",
                TopologyPref::Grid { problem_size: 12000 },
                ProcessorConfig::new(1, 2),
                10,
            ),
            model: AppModel::Lu { n: 12000 },
            arrival: 0.0,
            cancel_at: None,
            fail_at: None,
            tenant: 0,
        };
        ClusterSim::new(16, MachineParams::system_x()).run(&[job])
    }

    #[test]
    fn frame_shows_running_then_done() {
        let r = run();
        let mid = frame(&r, &[], r.makespan * 0.5, 100);
        assert!(mid.contains("LU12000"), "{mid}");
        assert!(mid.contains("running"), "{mid}");
        let end = frame(&r, &[], r.makespan + 1.0, 100);
        assert!(end.contains("done"), "{end}");
        // Before arrival, the pool is empty and the job not yet queued.
        let pre = frame(&r, &[], -1.0, 100);
        assert!(pre.contains("pool   0/16"), "{pre}");
    }

    #[test]
    fn decision_feed_is_time_filtered() {
        let r = run();
        let d = vec![Event::ResizeDecision {
            time: r.makespan * 0.9,
            job: 1,
            from: "1x2".into(),
            decision: "expand".into(),
            to: Some("2x2".into()),
            idle_procs: 12,
            queue_len: 0,
            queue_head_need: None,
            last_expansion_improved: None,
            iter_time: 4.2,
            redist_time: 0.5,
            remaining_iters: 7,
        }];
        let early = frame(&r, &d, r.makespan * 0.1, 100);
        assert!(early.contains("(none yet)"), "{early}");
        let late = frame(&r, &d, r.makespan, 100);
        assert!(late.contains("expand"), "{late}");
        assert!(late.contains("2x2"), "{late}");
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[], 8), "");
        let s = sparkline(&[1.0, 2.0, 3.0], 8);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
    }
}
