//! End-to-end causal-trace acceptance for the simulator: a fixed workload
//! run with tracing on must produce, for every resize, the span chain
//! scheduler-decision → spawn/handshake → redistribution (with phase
//! children) → resumed compute, with correct parent edges; the
//! critical-path attribution must account for each job's full makespan;
//! and the Chrome-trace export must survive a parse round trip.

use reshape_clustersim::{AppModel, ClusterSim, MachineParams, SimJob};
use reshape_core::{EventKind, JobSpec, ProcessorConfig, TopologyPref};
use reshape_telemetry::trace;
use reshape_telemetry::{critpath, SpanRecord};

/// Trace state is process-global; every test takes this lock and resets.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn lu_job(n: usize, iters: usize, arrival: f64) -> SimJob {
    SimJob {
        spec: JobSpec::new(
            format!("LU{n}"),
            TopologyPref::Grid { problem_size: n },
            ProcessorConfig::new(1, 2),
            iters,
        ),
        model: AppModel::Lu { n },
        arrival,
        cancel_at: None,
        fail_at: None,
        tenant: 0,
    }
}

fn traced_run(workload: &[SimJob]) -> (reshape_clustersim::SimResult, Vec<SpanRecord>) {
    let _g = lock();
    trace::reset();
    trace::set_enabled(true);
    let result = ClusterSim::new(16, MachineParams::system_x()).run(workload);
    let spans = trace::drain_spans();
    trace::set_enabled(false);
    (result, spans)
}

fn find(spans: &[SpanRecord], pred: impl Fn(&SpanRecord) -> bool) -> Option<&SpanRecord> {
    spans.iter().find(|s| pred(s))
}

#[test]
fn every_expansion_produces_the_full_causal_chain() {
    let (result, spans) = traced_run(&[lu_job(12000, 12, 0.0)]);
    assert!(trace::validate(&spans).is_empty(), "{:?}", trace::validate(&spans));

    let expansions: Vec<_> = result
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Expanded { .. }))
        .collect();
    assert!(!expansions.is_empty(), "idle 16-slot cluster must expand the job");

    for e in &expansions {
        let jid = e.job.0;
        // Scheduler decision span at the resize point's virtual time...
        let decision = find(&spans, |s| {
            s.trace == jid
                && s.cat == "decision"
                && s.name.starts_with("decision:expand")
                && (s.start - e.time).abs() < 1e-9
        })
        .unwrap_or_else(|| panic!("no decision span for expansion at t={}", e.time));
        // ...causing a spawn/handshake span...
        let spawn = find(&spans, |s| s.parent == decision.id && s.cat == "spawn")
            .expect("spawn span parented to the decision");
        // ...causing the redistribution, which decomposes into phases...
        let redist = find(&spans, |s| s.parent == spawn.id && s.cat == "redist")
            .expect("redist span parented to the spawn");
        for phase in ["redist_pack", "redist_transfer", "redist_unpack"] {
            let p = find(&spans, |s| s.parent == redist.id && s.cat == phase)
                .unwrap_or_else(|| panic!("missing {phase} child"));
            assert!(p.start >= redist.start - 1e-9 && p.end <= redist.end + 1e-9);
        }
        // ...and compute resumes under the redistribution.
        let compute = find(&spans, |s| s.parent == redist.id && s.cat == "compute")
            .expect("resumed compute span parented to the redist");
        assert!(compute.start >= redist.end - 1e-9, "compute resumes after redist");
    }

    // Lifecycle spans: one root and one queue-wait per job, and the root
    // closes at the job's finish time.
    let job = result.jobs[0].job.0;
    let root = find(&spans, |s| s.trace == job && s.cat == "job").expect("job root span");
    assert!(find(&spans, |s| s.trace == job && s.cat == "queue_wait").is_some());
    assert!((root.end - result.jobs[0].finished).abs() < 1e-9);
}

#[test]
fn critical_path_accounts_for_the_whole_makespan() {
    let (result, spans) = traced_run(&[lu_job(12000, 12, 0.0), lu_job(8000, 8, 5.0)]);
    let paths = critpath::analyze(&spans);
    assert_eq!(paths.len(), 2, "one attribution per job trace");
    for p in &paths {
        let outcome = result
            .jobs
            .iter()
            .find(|j| j.job.0 == p.trace)
            .expect("attribution matches a job");
        let expected = outcome.finished - outcome.submitted;
        assert!(
            (p.makespan - expected).abs() < 1e-6,
            "{}: root span covers submit..finish ({} vs {expected})",
            p.name,
            p.makespan
        );
        // Acceptance: per-job category sums equal the makespan within one
        // sim-time unit (the sweep makes them exact up to float error).
        assert!(
            (p.total() - p.makespan).abs() <= 1.0,
            "{}: buckets sum to {} but makespan is {}",
            p.name,
            p.total(),
            p.makespan
        );
        assert!(p.compute > 0.0, "compute must dominate an LU run");
    }
    // The second job arrives while the first holds the cluster's fast
    // slots; some queue wait or redistribution must be attributed overall.
    let total_redist: f64 = paths.iter().map(|p| p.redistribution).sum();
    assert!(total_redist > 0.0, "expansions must charge redistribution time");
}

#[test]
fn chrome_export_round_trips_and_validates() {
    let (_result, spans) = traced_run(&[lu_job(8000, 8, 0.0)]);
    let json = trace::chrome_trace_json(&spans);
    let back = trace::parse_chrome_trace(&json).expect("export parses");
    assert_eq!(back.len(), spans.len());
    assert!(trace::validate(&back).is_empty());
    // Timestamps survive the µs round trip to within a microsecond.
    for (a, b) in spans.iter().zip(&back) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.parent, b.parent);
        assert!((a.start - b.start).abs() < 2e-6, "{} vs {}", a.start, b.start);
        assert!(b.end >= b.start);
    }
}

/// Normalize span identity so two runs can be compared structurally:
/// span ids come from a process-global counter that `trace::reset` leaves
/// untouched, so raw ids differ between runs even when the traces are
/// identical. Remap each id to its position in the drain order and rewrite
/// parent edges through the same map (0 stays "root").
fn normalize(spans: &[SpanRecord]) -> Vec<SpanRecord> {
    let pos: std::collections::HashMap<u64, u64> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id, i as u64 + 1))
        .collect();
    spans
        .iter()
        .map(|s| {
            let mut n = s.clone();
            n.id = pos[&s.id];
            n.parent = if s.parent == 0 { 0 } else { pos[&s.parent] };
            n
        })
        .collect()
}

/// The DES engine must emit a *deterministic causal trace*: two runs of
/// the same workload drain the same spans in the same order with the same
/// bitwise timestamps, names, categories, tracks, and (structurally
/// resolved) parent edges — on plain runs and on fault-heavy random
/// workloads. (This was originally a DES-vs-legacy differential; the
/// legacy loop is deleted and overall run behaviour is pinned by the
/// recorded snapshots in `des_equivalence.rs`.)
#[test]
fn des_traces_replay_identically_structurally() {
    let _g = lock();
    let machine = MachineParams::system_x();
    let mut workloads: Vec<(String, Vec<SimJob>, usize)> = vec![
        ("lu-pair".into(), vec![lu_job(12000, 12, 0.0), lu_job(8000, 8, 5.0)], 16),
    ];
    for seed in [5u64, 23, 77] {
        let w = reshape_clustersim::random_workload_with_faults(seed, 5, 36);
        workloads.push((format!("random+faults seed {seed}"), w.jobs, w.total_procs));
    }
    for (label, jobs, procs) in workloads {
        let drain = || -> Vec<SpanRecord> {
            trace::reset();
            trace::set_enabled(true);
            let sim = ClusterSim::new(procs, machine);
            let _ = sim.run(&jobs);
            let spans = trace::drain_spans();
            trace::set_enabled(false);
            spans
        };
        let first = drain();
        let second = drain();
        assert!(!first.is_empty(), "{label}: traced run must record spans");
        assert_eq!(first.len(), second.len(), "{label}: span counts diverged");
        let (a, b) = (normalize(&first), normalize(&second));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y, "{label}: span diverged");
        }
    }
}

/// Acceptance on DES-emitted traces of a fault-heavy workload: every
/// parent edge resolves inside its own trace (closure), and the per-job
/// critical-path buckets sum exactly to the job's root makespan.
#[test]
fn des_trace_edges_close_and_critpath_buckets_sum_to_makespan() {
    let _g = lock();
    trace::reset();
    trace::set_enabled(true);
    let w = reshape_clustersim::random_workload_with_faults(11, 6, 36);
    let result = ClusterSim::new(w.total_procs, MachineParams::system_x()).run(&w.jobs);
    let spans = trace::drain_spans();
    trace::set_enabled(false);

    // Parent-edge closure: the validator demands every non-zero parent
    // resolve to a recorded span and child intervals nest in their parent.
    let violations = trace::validate(&spans);
    assert!(violations.is_empty(), "DES trace violations: {violations:?}");
    // ...and closure within the owning trace specifically: a cross-job
    // parent edge would pass a pure id lookup but corrupts attribution.
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    for s in &spans {
        if s.parent != 0 {
            let p = by_id[&s.parent];
            assert_eq!(p.trace, s.trace, "span {} parented across traces", s.id);
        }
    }

    let paths = critpath::analyze(&spans);
    assert_eq!(paths.len(), result.jobs.len(), "one attribution per job");
    for p in &paths {
        let outcome = result
            .jobs
            .iter()
            .find(|j| j.job.0 == p.trace)
            .expect("attribution matches a job");
        let expected = outcome.finished - outcome.submitted;
        assert!(
            (p.makespan - expected).abs() < 1e-6,
            "{}: root span covers submit..finish ({} vs {expected})",
            p.name,
            p.makespan
        );
        // Exact accounting: the attribution buckets partition the root
        // span, so their sum equals the makespan to float round-off even
        // for cancelled and failed jobs.
        assert!(
            (p.total() - p.makespan).abs() < 1e-6,
            "{}: buckets sum to {} but makespan is {}",
            p.name,
            p.total(),
            p.makespan
        );
    }
}
