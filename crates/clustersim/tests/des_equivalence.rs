//! Differential snapshot suite for the DES engine behind
//! [`ClusterSim::run`].
//!
//! Historically this suite ran every workload through both the DES engine
//! and the original inline step loop (`run_legacy`) and demanded bitwise
//! equality. That suite soaked in CI across the full 256-seed sweep, so
//! the legacy loop has been deleted; its behaviour lives on as **recorded
//! snapshots**: an FNV-1a digest of each run's serialized `SimResult`
//! (decision outcomes, event feed, makespan, utilization, telemetry
//! snapshot — every `f64` to the last bit), committed at
//! `tests/snapshots/des_results.txt` and re-checked here. Any engine
//! change that perturbs a single bit of any of the 260 pinned runs fails
//! the sweep.
//!
//! To re-record after an *intentional* behaviour change:
//!
//! ```text
//! RESHAPE_BLESS=1 cargo test -p reshape-clustersim --test des_equivalence
//! ```
//!
//! and commit the rewritten snapshot file (the bless run fails the suite
//! on purpose so a stale green is impossible).

use std::collections::BTreeMap;
use std::sync::Mutex;

use reshape_clustersim::{
    random_workload_with_faults, workload1, workload2, ClusterSim, MachineParams, RedistMode,
    SimResult, Workload,
};

/// The telemetry journal is process-global; serialize tests that drain it.
static JOURNAL_LOCK: Mutex<()> = Mutex::new(());

const SNAPSHOT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/snapshots/des_results.txt"
);

/// FNV-1a over the serialized result: cheap, stable, and any bit flip in
/// any field (floating point included) changes the digest.
fn digest(result: &SimResult) -> String {
    let json = serde_json::to_string(result).expect("serialize SimResult");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn recorded() -> BTreeMap<String, String> {
    let text = std::fs::read_to_string(SNAPSHOT_PATH)
        .unwrap_or_else(|e| panic!("cannot read {SNAPSHOT_PATH}: {e}"));
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (label, hash) = l.rsplit_once(' ').expect("snapshot line: <label> <digest>");
            (label.to_string(), hash.to_string())
        })
        .collect()
}

/// Every pinned run, in snapshot-file order: the 256-seed random
/// workload+fault sweep plus the paper workloads under both
/// redistribution pricings and the static ablation.
fn pinned_runs() -> Vec<(String, SimResult)> {
    let machine = MachineParams::system_x();
    let mut runs = Vec::new();
    for seed in 0..256u64 {
        let n_jobs = 2 + (seed % 7) as usize;
        let procs = 8 + (seed % 5) as usize * 8;
        let w = random_workload_with_faults(seed, n_jobs, procs);
        let r = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
        assert_eq!(
            r.telemetry.jobs_finished + r.telemetry.jobs_failed + r.telemetry.jobs_cancelled,
            n_jobs,
            "seed {seed}: every job must reach a terminal state"
        );
        runs.push((format!("seed-{seed}"), r));
    }
    let paper: Vec<(&str, Workload, RedistMode)> = vec![
        ("W1/reshape", workload1(), RedistMode::Reshape),
        ("W1/checkpoint", workload1(), RedistMode::Checkpoint),
        ("W2/reshape", workload2(), RedistMode::Reshape),
        ("W1-static", workload1().as_static(), RedistMode::Reshape),
    ];
    for (label, w, mode) in paper {
        let sim = ClusterSim::new(w.total_procs, machine).with_redist_mode(mode);
        runs.push((label.to_string(), sim.run(&w.jobs)));
    }
    runs
}

/// The 256-seed sweep plus the paper workloads must reproduce the
/// recorded (legacy-equivalent) results bitwise.
#[test]
fn des_matches_recorded_snapshots() {
    let runs = pinned_runs();
    if std::env::var("RESHAPE_BLESS").is_ok() {
        let mut out = String::from(
            "# FNV-1a digests of serialized SimResults; re-record with\n\
             # RESHAPE_BLESS=1 cargo test -p reshape-clustersim --test des_equivalence\n",
        );
        for (label, r) in &runs {
            out.push_str(&format!("{label} {}\n", digest(r)));
        }
        std::fs::write(SNAPSHOT_PATH, out).expect("write snapshot file");
        panic!("snapshots re-recorded at {SNAPSHOT_PATH}; inspect the diff and commit");
    }
    let want = recorded();
    assert_eq!(want.len(), runs.len(), "snapshot count mismatch");
    let mut diverged = Vec::new();
    for (label, r) in &runs {
        let got = digest(r);
        match want.get(label) {
            Some(w) if *w == got => {}
            Some(w) => diverged.push(format!("{label}: recorded {w}, got {got}")),
            None => diverged.push(format!("{label}: missing from snapshot file")),
        }
    }
    assert!(
        diverged.is_empty(),
        "{} runs diverged from recorded snapshots:\n{}",
        diverged.len(),
        diverged.join("\n")
    );
}

/// The sweep is only a proof if it covers the interesting transitions:
/// cancellations, failures, expansions, and shrinks must all occur
/// somewhere in the 256 seeds.
#[test]
fn sweep_exercises_fault_and_resize_paths() {
    let machine = MachineParams::system_x();
    let mut cancelled = 0usize;
    let mut failed = 0usize;
    let mut expanded = 0usize;
    let mut shrunk = 0usize;
    for seed in 0..256u64 {
        let w = random_workload_with_faults(
            seed,
            2 + (seed % 7) as usize,
            8 + (seed % 5) as usize * 8,
        );
        let r = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
        cancelled += r.telemetry.jobs_cancelled;
        failed += r.telemetry.jobs_failed;
        expanded += r.telemetry.expansions;
        shrunk += r.telemetry.shrinks;
    }
    assert!(cancelled > 10, "sweep must cancel jobs, got {cancelled}");
    assert!(failed > 10, "sweep must fail jobs, got {failed}");
    assert!(expanded > 100, "sweep must expand jobs, got {expanded}");
    assert!(shrunk > 10, "sweep must shrink jobs, got {shrunk}");
}

/// Determinism differential on a fresh seed: CI passes
/// `TESTKIT_SEED=$GITHUB_RUN_ID`, and two runs of the same workload must
/// be bitwise-identical (the property the recorded snapshots pin for the
/// fixed seeds).
#[test]
fn env_seed_replays_deterministically() {
    let seed: u64 = match std::env::var("TESTKIT_SEED") {
        Ok(s) => s.trim().parse().expect("TESTKIT_SEED must be an integer"),
        Err(_) => return, // fixed-seed snapshots cover the default case
    };
    let machine = MachineParams::system_x();
    let w = random_workload_with_faults(seed, 2 + (seed % 7) as usize, 8 + (seed % 5) as usize * 8);
    let sim = ClusterSim::new(w.total_procs, machine);
    let a = digest(&sim.run(&w.jobs));
    let b = digest(&sim.run(&w.jobs));
    assert_eq!(a, b, "seed {seed}: two runs of the same workload diverged");
}

/// The telemetry journal — resize decisions, redistribution records, job
/// turnarounds — must drain identically across two runs of the same
/// workload: same record kinds in the same order with the same payloads.
#[test]
fn telemetry_journal_is_identical_between_runs() {
    let _guard = JOURNAL_LOCK.lock().unwrap();
    let machine = MachineParams::system_x();
    let before = reshape_telemetry::mode();
    reshape_telemetry::set_mode(reshape_telemetry::Mode::Text);
    let drain_for = |jobs: &[reshape_clustersim::SimJob]| -> Vec<String> {
        let _ = reshape_telemetry::drain_journal(); // discard stale records
        let sim = ClusterSim::new(36, machine);
        let _ = sim.run(jobs);
        reshape_telemetry::drain_journal()
            .into_iter()
            .map(|e| serde_json::to_string(&e).expect("serialize journal record"))
            .collect()
    };
    for seed in [3u64, 17, 99] {
        let w = random_workload_with_faults(seed, 5, 36);
        let first = drain_for(&w.jobs);
        let second = drain_for(&w.jobs);
        assert!(!first.is_empty(), "telemetry must record something");
        assert_eq!(first, second, "seed {seed}: journal records diverged");
    }
    reshape_telemetry::set_mode(before);
}
