//! Differential equivalence suite: the DES engine behind
//! [`ClusterSim::run`] must reproduce the legacy inline step loop
//! ([`ClusterSim::run_legacy`]) **bitwise** — `SimResult` (decision
//! outcomes, event feed, makespan, utilization, telemetry snapshot), the
//! telemetry journal, and the §3.1 decision records — across a 256-seed
//! sweep of random workloads with scripted cancellations and failures.
//!
//! Deleting the legacy loop is gated on this suite passing. Comparison is
//! by serialized JSON, so every `f64` must match to the last bit: the two
//! engines share the `ClusterEngine` transition code and differ only in
//! how the event queue is driven, and the DES queue's FIFO tie-break
//! reproduces the legacy `(time, seq)` order exactly.

use std::sync::Mutex;

use reshape_clustersim::{
    random_workload_with_faults, workload1, workload2, ClusterSim, MachineParams, RedistMode,
    SimResult, Workload,
};

/// The telemetry journal is process-global; serialize tests that drain it.
static JOURNAL_LOCK: Mutex<()> = Mutex::new(());

fn assert_bitwise_equal(des: &SimResult, legacy: &SimResult, label: &str) {
    let a = serde_json::to_string(des).expect("serialize DES result");
    let b = serde_json::to_string(legacy).expect("serialize legacy result");
    if a != b {
        // Narrow the diff before dumping the full JSON.
        assert_eq!(
            des.makespan, legacy.makespan,
            "{label}: makespan diverged"
        );
        assert_eq!(
            des.utilization, legacy.utilization,
            "{label}: utilization diverged"
        );
        assert_eq!(
            des.events.len(),
            legacy.events.len(),
            "{label}: event feed length diverged"
        );
        for (x, y) in des.jobs.iter().zip(&legacy.jobs) {
            assert_eq!(
                serde_json::to_string(x).unwrap(),
                serde_json::to_string(y).unwrap(),
                "{label}: job {} diverged",
                x.name
            );
        }
        panic!("{label}: results diverged (serialized forms differ)");
    }
}

/// The full 256-seed workload+fault sweep (plus `TESTKIT_SEED`, so CI's
/// fixed and per-run seeds also replay through both engines).
#[test]
fn des_matches_legacy_across_256_seed_sweep() {
    let machine = MachineParams::system_x();
    let mut seeds: Vec<u64> = (0..256).collect();
    if let Ok(s) = std::env::var("TESTKIT_SEED") {
        if let Ok(s) = s.parse::<u64>() {
            seeds.push(s);
        }
    }
    for seed in seeds {
        // Size and cluster vary with the seed; faults (cancel/fail) ride on
        // roughly a third of the workloads' jobs.
        let n_jobs = 2 + (seed % 7) as usize;
        let procs = 8 + (seed % 5) as usize * 8;
        let w = random_workload_with_faults(seed, n_jobs, procs);
        let sim = ClusterSim::new(w.total_procs, machine);
        let des = sim.run(&w.jobs);
        let legacy = sim.run_legacy(&w.jobs);
        assert_bitwise_equal(&des, &legacy, &format!("seed {seed}"));
        // The sweep must actually exercise the fault paths overall; checked
        // per-seed cheaply here, aggregated below.
        assert_eq!(
            des.telemetry.jobs_finished
                + des.telemetry.jobs_failed
                + des.telemetry.jobs_cancelled,
            n_jobs,
            "seed {seed}: every job must reach a terminal state"
        );
    }
}

/// The sweep is only a proof if it covers the interesting transitions:
/// cancellations, failures, expansions, and shrinks must all occur
/// somewhere in the 256 seeds.
#[test]
fn sweep_exercises_fault_and_resize_paths() {
    let machine = MachineParams::system_x();
    let mut cancelled = 0usize;
    let mut failed = 0usize;
    let mut expanded = 0usize;
    let mut shrunk = 0usize;
    for seed in 0..256u64 {
        let w = random_workload_with_faults(seed, 2 + (seed % 7) as usize, 8 + (seed % 5) as usize * 8);
        let r = ClusterSim::new(w.total_procs, machine).run(&w.jobs);
        cancelled += r.telemetry.jobs_cancelled;
        failed += r.telemetry.jobs_failed;
        expanded += r.telemetry.expansions;
        shrunk += r.telemetry.shrinks;
    }
    assert!(cancelled > 10, "sweep must cancel jobs, got {cancelled}");
    assert!(failed > 10, "sweep must fail jobs, got {failed}");
    assert!(expanded > 100, "sweep must expand jobs, got {expanded}");
    assert!(shrunk > 10, "sweep must shrink jobs, got {shrunk}");
}

/// The paper workloads, both redistribution pricings, and both queue
/// policies — the configurations every experiment binary uses.
#[test]
fn des_matches_legacy_on_paper_workloads() {
    let machine = MachineParams::system_x();
    let runs: Vec<(&str, Workload, RedistMode)> = vec![
        ("W1/reshape", workload1(), RedistMode::Reshape),
        ("W1/checkpoint", workload1(), RedistMode::Checkpoint),
        ("W2/reshape", workload2(), RedistMode::Reshape),
        ("W1-static", workload1().as_static(), RedistMode::Reshape),
    ];
    for (label, w, mode) in runs {
        let sim = ClusterSim::new(w.total_procs, machine).with_redist_mode(mode);
        assert_bitwise_equal(&sim.run(&w.jobs), &sim.run_legacy(&w.jobs), label);
    }
}

/// The telemetry journal — resize decisions, redistribution records, job
/// turnarounds — must drain identically from both engines: same record
/// kinds in the same order with the same payloads.
#[test]
fn telemetry_journal_is_identical_between_engines() {
    let _guard = JOURNAL_LOCK.lock().unwrap();
    let machine = MachineParams::system_x();
    let before = reshape_telemetry::mode();
    reshape_telemetry::set_mode(reshape_telemetry::Mode::Text);
    let drain_for = |run: &dyn Fn(&ClusterSim) -> SimResult| -> Vec<String> {
        let _ = reshape_telemetry::drain_journal(); // discard stale records
        let sim = ClusterSim::new(36, machine);
        let _ = run(&sim);
        reshape_telemetry::drain_journal()
            .into_iter()
            .map(|e| serde_json::to_string(&e).expect("serialize journal record"))
            .collect()
    };
    for seed in [3u64, 17, 99] {
        let w = random_workload_with_faults(seed, 5, 36);
        let jobs = w.jobs.clone();
        let des = drain_for(&|sim| sim.run(&jobs));
        let legacy = drain_for(&|sim| sim.run_legacy(&jobs));
        assert!(!des.is_empty(), "telemetry must record something");
        assert_eq!(des, legacy, "seed {seed}: journal records diverged");
    }
    reshape_telemetry::set_mode(before);
}
