//! Seeded tie-break sweep: run the same workloads under FIFO and several
//! seeded orderings of simultaneous DES events and demand that nothing a
//! policy *promises* depends on incidental push order.
//!
//! What must hold across tie-breaks: every job reaches the same terminal
//! disposition (finished / failed / cancelled), all jobs terminate, and
//! each seeded ordering is itself bit-deterministic (two runs under the
//! same tie seed are identical). What may legitimately differ: event
//! interleavings, and therefore makespans and turnarounds, because
//! simultaneous events drain in a different (but still seeded) order.
//!
//! This is the PR-7 follow-up sweep: the DES queue grew
//! `TieBreak::Seeded` precisely so hidden ordering assumptions could be
//! flushed; `simulate --tie-break seeded:N` exposes the same knob on the
//! command line.

use reshape_clustersim::{
    random_workload_with_faults, run_scale, workload1, workload2, ClusterSim, MachineParams,
    ScaleConfig, SimJob, SimResult, TieBreak,
};
use reshape_core::EventKind;

fn digest(result: &SimResult) -> String {
    let json = serde_json::to_string(result).expect("serialize SimResult");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Terminal dispositions as a sorted multiset keyed by `(arrival, name)`
/// — stable run-to-run identity even when internal job ids were assigned
/// in a different order or names repeat within a workload.
fn dispositions(result: &SimResult) -> Vec<(u64, String, &'static str)> {
    let mut out: Vec<(u64, String, &'static str)> = result
        .jobs
        .iter()
        .map(|j| {
            let term = result
                .events
                .iter()
                .filter(|e| e.job == j.job)
                .find_map(|e| match e.kind {
                    EventKind::Finished => Some("finished"),
                    EventKind::Failed { .. } => Some("failed"),
                    EventKind::Cancelled => Some("cancelled"),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("job {} has no terminal event", j.name));
            (j.submitted.to_bits(), j.name.clone(), term)
        })
        .collect();
    out.sort();
    out
}

fn run_with(jobs: &[SimJob], procs: usize, tie: TieBreak) -> SimResult {
    ClusterSim::new(procs, MachineParams::system_x())
        .with_des_tie_break(tie)
        .run(jobs)
}

/// Fault-heavy random workloads plus both paper workloads, each under
/// FIFO and three seeded permutations: dispositions must be invariant
/// and every seeded ordering must replay bitwise.
#[test]
fn tie_break_sweep_leaves_job_dispositions_invariant() {
    let mut workloads: Vec<(String, Vec<SimJob>, usize)> = Vec::new();
    for seed in [1u64, 7, 42, 101] {
        let w = random_workload_with_faults(seed, 6, 36);
        workloads.push((format!("random+faults seed {seed}"), w.jobs, w.total_procs));
    }
    let w1 = workload1();
    workloads.push(("W1".into(), w1.jobs, w1.total_procs));
    let w2 = workload2();
    workloads.push(("W2".into(), w2.jobs, w2.total_procs));

    for (label, jobs, procs) in &workloads {
        let baseline = run_with(jobs, *procs, TieBreak::Fifo);
        let want = dispositions(&baseline);
        let terminal = baseline.telemetry.jobs_finished
            + baseline.telemetry.jobs_failed
            + baseline.telemetry.jobs_cancelled;
        assert_eq!(terminal, jobs.len(), "{label}: FIFO run left jobs non-terminal");
        for tie_seed in [1u64, 0xDEAD_BEEF, 0x5EED_0001] {
            let tie = TieBreak::Seeded(tie_seed);
            let a = run_with(jobs, *procs, tie);
            let b = run_with(jobs, *procs, tie);
            assert_eq!(
                digest(&a),
                digest(&b),
                "{label}: tie seed {tie_seed:#x} must replay bitwise"
            );
            assert_eq!(
                dispositions(&a),
                want,
                "{label}: tie seed {tie_seed:#x} changed a job's terminal disposition — \
                 a policy is leaning on incidental event push order"
            );
            let t = a.telemetry.jobs_finished + a.telemetry.jobs_failed + a.telemetry.jobs_cancelled;
            assert_eq!(t, jobs.len(), "{label}: tie seed {tie_seed:#x} left jobs non-terminal");
        }
    }
}

/// The scale path honours the same knob: a seeded ordering still
/// terminates every job and replays bit-identically (virtual fields only
/// — wall-clock fields are excluded by comparing the virtual metrics).
#[test]
fn scale_sweep_honours_seeded_tie_break() {
    let fifo = run_scale(&ScaleConfig::new(64, 400).with_seed(9));
    for tie_seed in [2u64, 77] {
        let cfg = ScaleConfig::new(64, 400)
            .with_seed(9)
            .with_tie_break(TieBreak::Seeded(tie_seed));
        let a = run_scale(&cfg);
        let b = run_scale(&cfg);
        for r in [&a, &b] {
            assert_eq!(
                r.jobs_finished + r.jobs_failed + r.jobs_cancelled,
                400,
                "tie seed {tie_seed}: every job must terminate"
            );
        }
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "tie seed {tie_seed}");
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits(), "tie seed {tie_seed}");
        assert_eq!(
            (a.jobs_finished, a.jobs_failed, a.jobs_cancelled, a.expansions, a.shrinks),
            (b.jobs_finished, b.jobs_failed, b.jobs_cancelled, b.expansions, b.shrinks),
            "tie seed {tie_seed}: seeded scale run must replay identically"
        );
        // The job stream is seed-derived, not order-derived: totals match
        // the FIFO baseline even though interleavings differ.
        assert_eq!(
            a.jobs_finished + a.jobs_failed + a.jobs_cancelled,
            fifo.jobs_finished + fifo.jobs_failed + fifo.jobs_cancelled,
        );
    }
}
