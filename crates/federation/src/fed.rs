//! The federation: N scheduler shards behind a multi-tenant router, glued
//! by the lease bus and a shared virtual-time timer wheel.
//!
//! Every public mutator first pumps due timers (so bus deliveries, lease
//! expiries and reclaims happen in timestamp order no matter how the
//! caller interleaves its calls), applies the transition, then runs the
//! reactive pipeline: brownout hysteresis → router drain → lending. All
//! externally visible effects come back as [`Notice`]s.

use std::collections::BTreeMap;

use reshape_clustersim::EventQueue;
use reshape_core::{
    Directive, HealAction, JobId, JobSpec, ProcessorConfig, QueuePolicy, SchedulerCore,
    StartAction, Wal,
};
use reshape_telemetry as telemetry;
use reshape_telemetry::trace;
use reshape_telemetry::TraceCtx;

use crate::bus::{Bus, BusConfig, BusEvent, PartitionSchedule};
use crate::flightrec::{FlightRecorder, DEFAULT_CAP};
use crate::lease::{digest_hash, DigestEntry, Lease, LeaseConfig, LeaseMsg, TracedMsg};
use crate::shard::{Deferred, RecoverReport, Shard, ShardState};
use crate::tenant::{QueuedJob, TenantConfig, TenantState};

/// Overload-control thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BrownoutConfig {
    /// A shard whose scheduler queue reaches this depth enters brownout:
    /// its core stops granting expansions (shrinks and completions
    /// proceed).
    pub queue_high: usize,
    /// Brownout releases only once the queue drains back to this depth
    /// (hysteresis; must be `< queue_high`).
    pub queue_low: usize,
    /// A shard recovering from an outage longer than this re-enters
    /// service in brownout (it works through its backlog before grabbing
    /// processors for expansions).
    pub heartbeat_lag: f64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            queue_high: 8,
            queue_low: 2,
            heartbeat_lag: 30.0,
        }
    }
}

/// Why a shard entered brownout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BrownoutReason {
    QueueDepth,
    HeartbeatLag,
}

/// Federation construction parameters.
#[derive(Clone, Debug)]
pub struct FederationConfig {
    /// Native pool size per shard; shard `i` owns global processors
    /// `[sum(prev), sum(prev) + shard_procs[i])`.
    pub shard_procs: Vec<usize>,
    pub queue_policy: QueuePolicy,
    /// Tenant id → admission policy.
    pub tenants: BTreeMap<u32, TenantConfig>,
    pub lease: LeaseConfig,
    pub brownout: BrownoutConfig,
    pub bus: BusConfig,
    /// Flight-recorder ring capacity (newest-N retention); see
    /// [`crate::flightrec`].
    pub flightrec_cap: usize,
}

impl FederationConfig {
    /// Tenants get ids `0..n` in order.
    pub fn new(shard_procs: Vec<usize>, tenants: Vec<TenantConfig>) -> Self {
        FederationConfig {
            shard_procs,
            queue_policy: QueuePolicy::Fcfs,
            tenants: tenants
                .into_iter()
                .enumerate()
                .map(|(i, t)| (i as u32, t))
                .collect(),
            lease: LeaseConfig::default(),
            brownout: BrownoutConfig::default(),
            bus: BusConfig::default(),
            flightrec_cap: DEFAULT_CAP,
        }
    }
}

/// Which reconciliation path journaled a heal repair. The chaos sweeps
/// assert exact per-kind counts, so every call site must stay labeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealRepairKind {
    /// Recovery fixup: a fenced, unexpired borrow evicted when its
    /// borrower restarted.
    RecoveryFixup = 0,
    /// Anti-entropy digest, borrower side: a stale (fenced) attachment
    /// evicted.
    EvictStaleBorrow = 1,
    /// Anti-entropy digest, lender side: escrow of a never-attached fenced
    /// lease returned early.
    ReturnEscrow = 2,
}

impl HealRepairKind {
    /// Stable label used in `fed.heal_repairs{kind=...}` and trace spans.
    pub fn label(self) -> &'static str {
        match self {
            HealRepairKind::RecoveryFixup => "recovery_fixup",
            HealRepairKind::EvictStaleBorrow => "evict_stale_borrow",
            HealRepairKind::ReturnEscrow => "return_escrow",
        }
    }
}

/// Short span label for a bus delivery of `msg`.
fn msg_name(msg: &LeaseMsg) -> &'static str {
    match msg {
        LeaseMsg::Grant { .. } => "grant",
        LeaseMsg::Ack { .. } => "ack",
        LeaseMsg::Release { .. } => "release",
        LeaseMsg::Digest { .. } => "digest",
    }
}

/// Externally visible effect of a federation transition.
#[derive(Clone, Debug, PartialEq)]
pub enum Notice {
    /// A submission was assigned to a shard.
    Admitted {
        shard: usize,
        job: JobId,
        tenant: u32,
        tag: u64,
    },
    /// A submission is waiting at the router (quota exhausted or no live
    /// shard).
    RouterQueued { tenant: u32, tag: u64 },
    /// A submission was dropped: the tenant's router queue is full.
    Shed { tenant: u32, tag: u64 },
    /// A job began (or re-began) executing on a shard.
    Started {
        shard: usize,
        job: JobId,
        tenant: u32,
        tag: u64,
        procs: usize,
    },
    /// A resize-point answer for a live job.
    Directive {
        shard: usize,
        job: JobId,
        directive: Directive,
    },
    /// A job was force-shrunk off a lease's processors at eviction.
    Evicted {
        shard: usize,
        job: JobId,
        from: ProcessorConfig,
        to: ProcessorConfig,
    },
    /// A job failed at lease eviction because every one of its processors
    /// was borrowed.
    EvictFailed { shard: usize, job: JobId, tag: u64 },
    LeaseGranted {
        lease: u64,
        lender: usize,
        borrower: usize,
        procs: usize,
        expires: f64,
    },
    /// The borrower acked (attached) the lease.
    LeaseActivated { lease: u64 },
    /// The borrower is done with the lease (evicted, refused, or idle).
    LeaseReleased { lease: u64 },
    /// The lender reattached the lease's processors.
    LeaseReclaimed { lease: u64 },
    BrownoutEngaged {
        shard: usize,
        queue_depth: usize,
        reason: BrownoutReason,
    },
    BrownoutReleased { shard: usize },
    ShardKilled { shard: usize },
    ShardRecovered {
        shard: usize,
        snapshot_match: bool,
        wal_records: usize,
    },
    /// A scripted partition began severing cross-group traffic.
    PartitionStarted { id: usize },
    /// A scripted partition healed; formerly-severed live pairs exchange
    /// anti-entropy digests.
    PartitionHealed { id: usize },
    /// The lender's suspicion timeout fired: it bumped its epoch to
    /// `epoch` and fenced this lease (never honored or extended again).
    LeaseFenced {
        lease: u64,
        lender: usize,
        epoch: u64,
    },
    /// An anti-entropy reconciliation journaled a repair on `shard`.
    HealRepaired {
        shard: usize,
        lease: u64,
        action: HealAction,
        kind: HealRepairKind,
    },
}

#[derive(Clone, Copy, Debug)]
struct JobMeta {
    tenant: u32,
    tag: u64,
    procs: usize,
}

#[derive(Clone, Debug)]
enum Timer {
    Bus(BusEvent),
    LeaseExpire(u64),
    LeaseReclaim(u64),
    /// A scripted partition crosses `t_start`.
    PartitionStart(usize),
    /// A scripted partition crosses `t_heal`.
    PartitionHeal(usize),
    /// Suspicion deadline for one lease: if the lender still cannot reach
    /// the borrower, it bumps its epoch and fences.
    Suspect(u64),
}

/// Span ids of one lease trace's landmarks. Inert metadata: span ids are
/// 0 when tracing is off and never feed control flow, so the table has no
/// effect on scheduling.
#[derive(Clone, Copy, Debug, Default)]
struct LeaseTraceState {
    /// The open root span `lease N` (grant → reclaim).
    root: u64,
    /// The instantaneous `grant` span — the head of the causal chain.
    grant: u64,
    /// The `partition:severed` marker, when a cut severed this lease.
    severed: u64,
    /// The `fenced` span, once the suspicion timeout fired.
    fence: u64,
}

/// Span ids of one shard's control-plane trace landmarks.
#[derive(Clone, Copy, Debug, Default)]
struct ShardTraceState {
    /// The open root span `shard N` covering the whole run.
    root: u64,
    /// The open `down` span while the shard is crashed (0 while live).
    down: u64,
    /// The open `brownout` span while the latch is engaged (0 otherwise).
    brownout: u64,
}

pub struct Federation {
    lease_cfg: LeaseConfig,
    brownout_cfg: BrownoutConfig,
    shards: Vec<Shard>,
    tenants: BTreeMap<u32, TenantState>,
    bus: Bus,
    timers: EventQueue<Timer>,
    leases: BTreeMap<u64, Lease>,
    next_lease: u64,
    /// `(shard, job id) → admission metadata`; an entry exists exactly
    /// while the job is in flight.
    job_meta: BTreeMap<(usize, u64), JobMeta>,
    /// Last lend attempt per `(lender, borrower)` pair, for backoff.
    lend_attempts: BTreeMap<(usize, usize), f64>,
    now_hwm: f64,
    transitions: u64,
    /// Leases fenced by suspicion timeouts.
    fences: u64,
    /// Anti-entropy repairs journaled at heal or recovery.
    heal_repairs: u64,
    /// Per-kind split of `heal_repairs`, indexed by [`HealRepairKind`]
    /// discriminant; the components always sum to `heal_repairs`.
    heal_repair_kinds: [u64; 3],
    /// Bounded ring of structured control-plane events; dumped as JSONL
    /// when the testkit ledger oracle fails.
    flightrec: FlightRecorder,
    /// Span bookkeeping for per-lease traces (inert; see
    /// [`LeaseTraceState`]).
    lease_traces: BTreeMap<u64, LeaseTraceState>,
    /// Span bookkeeping for per-shard control-plane traces.
    shard_traces: Vec<ShardTraceState>,
    /// Testing backdoor: the next lend also wires a *rogue* duplicate
    /// grant of the same processors to a second borrower, without the
    /// lender journaling it — a planted double-ownership the ledger
    /// oracle must catch. Never enabled outside tests.
    plant_double_grant: bool,
    /// Testing backdoor: the next Grant delivery for a *fenced* lease
    /// skips the fence refusal and attaches anyway — a planted stale-epoch
    /// attach (split-brain) the partition oracle must catch. Never enabled
    /// outside tests.
    plant_stale_attach: bool,
}

impl Federation {
    pub fn new(cfg: FederationConfig) -> Self {
        assert!(!cfg.shard_procs.is_empty(), "need at least one shard");
        assert!(
            cfg.brownout.queue_low < cfg.brownout.queue_high,
            "brownout hysteresis requires queue_low < queue_high"
        );
        let mut shards = Vec::new();
        let mut base = 0;
        for (i, &n) in cfg.shard_procs.iter().enumerate() {
            assert!(n > 0, "shard {i} has no processors");
            let core = SchedulerCore::new(n, cfg.queue_policy).with_wal(Wal::in_memory());
            shards.push(Shard::new(i, base, core));
            base += n;
        }
        // Each shard's control-plane trace opens with a root span covering
        // the whole run (closed by `drain_spans` at export time), so every
        // lease span recorded on a shard track nests inside the shard's
        // lifetime by construction.
        let shard_traces: Vec<ShardTraceState> = (0..shards.len())
            .map(|i| ShardTraceState {
                root: trace::begin(
                    trace::shard_trace(i),
                    0,
                    format!("shard {i}"),
                    "shard",
                    "control",
                    0.0,
                ),
                ..Default::default()
            })
            .collect();
        Federation {
            lease_cfg: cfg.lease,
            brownout_cfg: cfg.brownout,
            shards,
            tenants: cfg
                .tenants
                .into_iter()
                .map(|(id, t)| (id, TenantState::new(t)))
                .collect(),
            bus: Bus::new(cfg.bus),
            timers: EventQueue::new(),
            leases: BTreeMap::new(),
            next_lease: 1,
            job_meta: BTreeMap::new(),
            lend_attempts: BTreeMap::new(),
            now_hwm: 0.0,
            transitions: 0,
            fences: 0,
            heal_repairs: 0,
            heal_repair_kinds: [0; 3],
            flightrec: FlightRecorder::new(cfg.flightrec_cap),
            lease_traces: BTreeMap::new(),
            shard_traces,
            plant_double_grant: false,
            plant_stale_attach: false,
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    pub fn total_procs(&self) -> usize {
        self.shards.iter().map(|s| s.native).sum()
    }

    pub fn leases(&self) -> impl Iterator<Item = &Lease> {
        self.leases.values()
    }

    pub fn lease(&self, id: u64) -> Option<&Lease> {
        self.leases.get(&id)
    }

    /// Leases not yet fully resolved (either side still holds something).
    pub fn live_leases(&self) -> usize {
        self.leases.values().filter(|l| !l.resolved()).count()
    }

    /// Unacked frames on the lease bus.
    pub fn bus_pending(&self) -> usize {
        self.bus.pending()
    }

    /// Public mutator calls so far (the fault injectors key shard kills
    /// off this counter).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Latest virtual time observed.
    pub fn now(&self) -> f64 {
        self.now_hwm
    }

    /// Earliest pending timer (bus traffic, lease expiry/reclaim).
    pub fn next_timer(&self) -> Option<f64> {
        self.timers.peek_time()
    }

    pub fn tenant_in_flight(&self, tenant: u32) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.in_flight_procs)
    }

    pub fn tenant_queue_len(&self, tenant: u32) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.queued.len())
    }

    pub fn tenant_shed(&self, tenant: u32) -> u64 {
        self.tenants.get(&tenant).map_or(0, |t| t.shed)
    }

    pub fn tenant_admitted(&self, tenant: u32) -> u64 {
        self.tenants.get(&tenant).map_or(0, |t| t.admitted)
    }

    /// The tenant that owns an in-flight job.
    pub fn job_tenant(&self, shard: usize, job: JobId) -> Option<u32> {
        self.job_meta.get(&(shard, job.0)).map(|m| m.tenant)
    }

    /// Fully drained: every lease resolved, bus quiet, no router queue,
    /// every shard live.
    pub fn quiesced(&self) -> bool {
        self.live_leases() == 0
            && self.bus.pending() == 0
            && self.tenants.values().all(|t| t.queued.is_empty())
            && self.shards.iter().all(|s| s.is_live())
    }

    pub fn brownout_config(&self) -> &BrownoutConfig {
        &self.brownout_cfg
    }

    pub fn lease_config(&self) -> &LeaseConfig {
        &self.lease_cfg
    }

    /// Leases fenced by suspicion timeouts so far.
    pub fn fences(&self) -> u64 {
        self.fences
    }

    /// Anti-entropy repairs journaled so far (heal digests + recovery
    /// fixups of fenced leases).
    pub fn heal_repairs(&self) -> u64 {
        self.heal_repairs
    }

    /// Heal repairs journaled by one reconciliation path; the three kinds
    /// always sum to [`Self::heal_repairs`].
    pub fn heal_repairs_of(&self, kind: HealRepairKind) -> u64 {
        self.heal_repair_kinds[kind as usize]
    }

    /// The control-plane flight recorder (bounded ring of structured
    /// events; dump with [`crate::flightrec::FlightRecorder::dump_jsonl`]).
    pub fn flightrec(&self) -> &FlightRecorder {
        &self.flightrec
    }

    /// Tenant ids known to the router, ascending.
    pub fn tenant_ids(&self) -> Vec<u32> {
        self.tenants.keys().copied().collect()
    }

    /// A tenant's processor quota (0 for unknown tenants).
    pub fn tenant_quota(&self, tenant: u32) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.cfg.quota_procs)
    }

    /// Frames and acks the bus dropped at partition boundaries.
    pub fn partition_drops(&self) -> u64 {
        self.bus.partition_drops()
    }

    /// Whether a live partition currently severs the (lender, borrower)
    /// pair of `a` and `b`.
    pub fn severed(&self, now: f64, a: usize, b: usize) -> bool {
        self.bus.severed(now, a, b)
    }

    #[doc(hidden)]
    pub fn chaos_plant_double_grant(&mut self) {
        self.plant_double_grant = true;
    }

    /// Plant a stale-epoch attach: the next Grant delivery for a fenced
    /// lease bypasses the fence refusal and attaches anyway — split-brain
    /// by construction, which the partition ledger oracle must catch.
    /// Never enabled outside tests.
    #[doc(hidden)]
    pub fn chaos_plant_stale_epoch_attach(&mut self) {
        self.plant_stale_attach = true;
    }

    /// Flip one byte in a down shard's WAL text (interior corruption), so
    /// recovery exercises the salvage/quarantine path. Returns false if
    /// the shard is live or `pos` is out of range. Never used outside
    /// tests.
    #[doc(hidden)]
    pub fn chaos_corrupt_down_wal(&mut self, shard: usize, pos: usize) -> bool {
        match &mut self.shards[shard].state {
            ShardState::Down { wal_text, .. } => {
                let mut bytes = wal_text.clone().into_bytes();
                if pos >= bytes.len() {
                    return false;
                }
                bytes[pos] ^= 0x20;
                *wal_text = String::from_utf8_lossy(&bytes).into_owned();
                true
            }
            ShardState::Live(_) => false,
        }
    }

    /// Script a partition: between `t_start` and `t_heal` the bus silently
    /// drops every frame and ack crossing the group boundaries (shards not
    /// listed form one implicit group). Returns the partition id. The
    /// federation arms suspicion timers at `t_start` and anti-entropy
    /// digests at `t_heal`.
    pub fn inject_partition(
        &mut self,
        groups: Vec<Vec<usize>>,
        t_start: f64,
        t_heal: f64,
    ) -> usize {
        let id = self.bus.inject_partition(PartitionSchedule {
            groups,
            t_start,
            t_heal,
        });
        self.timers.push(t_start, Timer::PartitionStart(id));
        self.timers.push(t_heal, Timer::PartitionHeal(id));
        telemetry::incr("fed.partitions_injected", 1);
        id
    }

    // ------------------------------------------------------------------
    // Public transitions
    // ------------------------------------------------------------------

    /// Submit a job for `tenant`. `tag` is an opaque caller token echoed
    /// in every notice about this submission.
    pub fn submit(&mut self, tenant: u32, tag: u64, spec: JobSpec, now: f64) -> Vec<Notice> {
        let mut out = self.begin(now);
        let need = spec.initial.procs();
        {
            let ts = self.tenants.get_mut(&tenant).expect("unknown tenant");
            ts.submitted += 1;
        }
        let under_quota = {
            let ts = &self.tenants[&tenant];
            ts.in_flight_procs + need <= ts.cfg.quota_procs
        };
        if under_quota {
            if let Some(shard) = self.route(need) {
                self.assign(shard, tenant, tag, spec, now, &mut out);
                // Immediate admission: zero queueing latency.
                telemetry::observe_labeled(
                    "fed.tenant_admit_latency",
                    &[("tenant", &tenant.to_string())],
                    0.0,
                );
                self.maybe_lend(now, &mut out);
                return out;
            }
        }
        let ts = self.tenants.get_mut(&tenant).expect("unknown tenant");
        if ts.queued.len() < ts.cfg.max_queue {
            ts.queued.push_back(QueuedJob {
                tag,
                spec,
                queued_at: now,
            });
            telemetry::incr("fed.router_queued", 1);
            out.push(Notice::RouterQueued { tenant, tag });
        } else {
            ts.shed += 1;
            telemetry::incr("fed.shed", 1);
            telemetry::incr_labeled("fed.tenant_shed", &[("tenant", &tenant.to_string())], 1);
            out.push(Notice::Shed { tenant, tag });
        }
        self.tenant_gauges(tenant);
        out
    }

    /// A job hit its resize point. Down shards defer the checkin; it
    /// replays (and re-answers) at recovery.
    pub fn checkin(
        &mut self,
        shard: usize,
        job: JobId,
        iter_time: f64,
        redist_time: f64,
        now: f64,
    ) -> Vec<Notice> {
        let mut out = self.begin(now);
        if !self.shards[shard].is_live() {
            self.shards[shard].deferred.push_back(Deferred::Checkin {
                job,
                iter_time,
                redist_time,
            });
            return out;
        }
        self.apply_checkin(shard, job, iter_time, redist_time, now, &mut out);
        self.maybe_lend(now, &mut out);
        out
    }

    pub fn finished(&mut self, shard: usize, job: JobId, now: f64) -> Vec<Notice> {
        let mut out = self.begin(now);
        if !self.shards[shard].is_live() {
            self.shards[shard]
                .deferred
                .push_back(Deferred::Finished { job });
            return out;
        }
        self.apply_finished(shard, job, now, &mut out);
        self.maybe_lend(now, &mut out);
        out
    }

    pub fn failed(&mut self, shard: usize, job: JobId, reason: String, now: f64) -> Vec<Notice> {
        let mut out = self.begin(now);
        if !self.shards[shard].is_live() {
            self.shards[shard]
                .deferred
                .push_back(Deferred::Failed { job, reason });
            return out;
        }
        self.apply_failed(shard, job, reason, now, &mut out);
        self.maybe_lend(now, &mut out);
        out
    }

    pub fn cancel(&mut self, shard: usize, job: JobId, now: f64) -> Vec<Notice> {
        let mut out = self.begin(now);
        if !self.shards[shard].is_live() {
            self.shards[shard]
                .deferred
                .push_back(Deferred::Cancel { job });
            return out;
        }
        self.apply_cancel(shard, job, now, &mut out);
        self.maybe_lend(now, &mut out);
        out
    }

    /// Crash a shard. Its core dies on the spot; only the WAL text and
    /// the crash-instant snapshot survive. Leases it holds keep running
    /// on federation timers; traffic addressed to it is buffered.
    pub fn kill_shard(&mut self, shard: usize, now: f64) -> (bool, Vec<Notice>) {
        let mut out = self.begin(now);
        let sh = &mut self.shards[shard];
        let ShardState::Live(core) = &mut sh.state else {
            return (false, out);
        };
        let snap = core.snapshot();
        let wal = core
            .take_wal()
            .expect("federation shards always journal to a WAL");
        sh.state = ShardState::Down {
            wal_text: wal.encode(),
            crash: Box::new(snap),
        };
        sh.kills += 1;
        telemetry::incr("fed.shard_kills", 1);
        self.shard_traces[shard].down = trace::begin(
            trace::shard_trace(shard),
            self.shard_traces[shard].root,
            "down",
            "outage",
            "control",
            now,
        );
        self.flightrec.record(now, "shard_kill", Some(shard), None, "");
        out.push(Notice::ShardKilled { shard });
        (true, out)
    }

    /// Restart a down shard: decode its WAL, replay it, verify the replay
    /// reproduces the crash snapshot, fix up expired leases, then replay
    /// everything that was addressed to the shard while it was down.
    pub fn recover_shard(&mut self, shard: usize, now: f64) -> (Option<RecoverReport>, Vec<Notice>) {
        let mut out = self.begin(now);
        let sh = &mut self.shards[shard];
        let ShardState::Down { wal_text, crash } = &sh.state else {
            return (None, out);
        };
        let wal_text = wal_text.clone();
        let crash = crash.clone();
        let outage = now - sh.last_seen;

        // Interior WAL corruption recovers to the last-good prefix; the
        // damaged remainder is quarantined into the report instead of
        // poisoning the replay. A salvaged replay cannot match the crash
        // snapshot (records are missing) — the mismatch is the signal.
        let (wal, salvage) = Wal::decode_salvage(&wal_text);
        let quarantined = salvage.map(|s| s.quarantined);
        if quarantined.is_some() {
            telemetry::incr("fed.wal_quarantines", 1);
            self.flightrec.record(
                now,
                "wal_quarantine",
                Some(shard),
                None,
                format!(
                    "quarantined={}B",
                    quarantined.as_ref().map_or(0, |q| q.len())
                ),
            );
        }
        let wal_records = wal.records().len();
        let core = SchedulerCore::recover(wal).expect("shard WAL replay failed");
        let snapshot_match = core.snapshot() == *crash;
        sh.state = ShardState::Live(core);
        sh.last_seen = now;
        telemetry::incr("fed.shard_recoveries", 1);
        let down = self.shard_traces[shard].down;
        trace::end(down, now);
        self.shard_traces[shard].down = 0;
        trace::complete(
            trace::shard_trace(shard),
            if down != 0 {
                down
            } else {
                self.shard_traces[shard].root
            },
            format!("wal:recover {wal_records} records"),
            "recovery",
            "control",
            now,
            now,
        );
        self.flightrec.record(
            now,
            "shard_recover",
            Some(shard),
            None,
            format!(
                "records={wal_records} snapshot_match={snapshot_match} quarantined={}",
                quarantined.is_some()
            ),
        );

        // Fixup 1: borrowed leases that expired — or were fenced by their
        // lender — during the outage are evicted before the shard
        // schedules anything on them. The fenced case is a heal repair and
        // is journaled as one.
        let borrowed: Vec<u64> = self.shards[shard]
            .core()
            .unwrap()
            .borrowed_leases()
            .keys()
            .copied()
            .collect();
        for id in borrowed {
            let (due, fenced) = {
                let l = &self.leases[&id];
                (
                    !l.borrower_done && (now >= l.expires || l.fenced()),
                    !l.borrower_done && l.fenced() && now < l.expires,
                )
            };
            if due {
                let mut cause = 0;
                if fenced {
                    cause = self.note_heal_repair(
                        shard,
                        id,
                        HealAction::EvictStaleBorrow,
                        HealRepairKind::RecoveryFixup,
                        now,
                        &mut out,
                    );
                }
                self.evict_lease(shard, id, now, cause, &mut out);
            }
        }
        // Fixup 2: lent leases whose grace ran out during the outage are
        // reclaimed (the borrower is long gone from them).
        let lent: Vec<u64> = self.shards[shard]
            .core()
            .unwrap()
            .lent_leases()
            .keys()
            .copied()
            .collect();
        for id in lent {
            let due = {
                let l = &self.leases[&id];
                !l.reclaimed && now >= l.expires + self.lease_cfg.grace
            };
            if due {
                self.reclaim_lease(shard, id, now, 0, &mut out);
            }
        }
        // Replay buffered traffic in arrival order.
        while let Some(d) = self.shards[shard].deferred.pop_front() {
            match d {
                Deferred::Checkin {
                    job,
                    iter_time,
                    redist_time,
                } => self.apply_checkin(shard, job, iter_time, redist_time, now, &mut out),
                Deferred::Finished { job } => self.apply_finished(shard, job, now, &mut out),
                Deferred::Failed { job, reason } => {
                    self.apply_failed(shard, job, reason, now, &mut out)
                }
                Deferred::Cancel { job } => self.apply_cancel(shard, job, now, &mut out),
                Deferred::Msg { from, msg, ctx } => {
                    self.apply_msg(now, from, shard, msg, ctx, &mut out)
                }
            }
        }
        // A long outage re-enters service browned out (if the backlog
        // doesn't immediately clear the hysteresis low-water mark).
        if outage >= self.brownout_cfg.heartbeat_lag
            && !self.shards[shard].brownout
            && self.shards[shard].queue_len() > self.brownout_cfg.queue_low
        {
            self.engage_brownout(shard, now, BrownoutReason::HeartbeatLag, &mut out);
        }
        self.update_brownout(shard, now, &mut out);
        self.drain_router(now, &mut out);
        self.maybe_lend(now, &mut out);
        out.push(Notice::ShardRecovered {
            shard,
            snapshot_match,
            wal_records,
        });
        (
            Some(RecoverReport {
                snapshot_match,
                wal_records,
                wal_text,
                quarantined,
            }),
            out,
        )
    }

    /// Run every timer due at or before `now` (bus traffic, lease
    /// expiries, reclaims), then react. Public mutators do this
    /// implicitly; call it directly to drain the federation at the end of
    /// a run.
    pub fn run_timers(&mut self, now: f64) -> Vec<Notice> {
        let mut out = self.begin(now);
        self.maybe_lend(now, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Every transition starts here: advance the clock, count it, pump
    /// due timers so effects happen in timestamp order.
    fn begin(&mut self, now: f64) -> Vec<Notice> {
        self.now_hwm = self.now_hwm.max(now);
        self.transitions += 1;
        let mut out = Vec::new();
        while let Some(t) = self.timers.peek_time() {
            if t > now {
                break;
            }
            let (t, timer) = self.timers.pop().unwrap();
            self.on_timer(t, timer, &mut out);
        }
        out
    }

    fn sched_bus(&mut self, evs: Vec<(f64, BusEvent)>) {
        for (t, ev) in evs {
            self.timers.push(t, Timer::Bus(ev));
        }
    }

    /// The most causally specific recorded span of a lease trace: fence,
    /// else grant, else root (0 when none — e.g. planted rogue leases).
    fn lease_head_span(&self, id: u64) -> u64 {
        let t = self.lease_traces.get(&id).copied().unwrap_or_default();
        if t.fence != 0 {
            t.fence
        } else if t.grant != 0 {
            t.grant
        } else {
            t.root
        }
    }

    /// Journal + count + trace + record one heal repair. Returns the span
    /// id of the repair (parent for the eviction/reclaim it causes).
    fn note_heal_repair(
        &mut self,
        shard: usize,
        lease: u64,
        action: HealAction,
        kind: HealRepairKind,
        now: f64,
        out: &mut Vec<Notice>,
    ) -> u64 {
        if let Some(core) = self.shards[shard].core_mut() {
            core.journal_heal_repair(lease, action, now);
        }
        self.heal_repairs += 1;
        self.heal_repair_kinds[kind as usize] += 1;
        telemetry::incr("fed.heal_repairs", 1);
        telemetry::incr_labeled("fed.heal_repairs_kind", &[("kind", kind.label())], 1);
        let span = trace::complete(
            trace::lease_trace(lease),
            self.lease_head_span(lease),
            format!("heal:{}", kind.label()),
            "heal",
            &format!("shard {shard}"),
            now,
            now,
        );
        self.flightrec
            .record(now, "heal_repair", Some(shard), Some(lease), kind.label());
        out.push(Notice::HealRepaired {
            shard,
            lease,
            action,
            kind,
        });
        span
    }

    fn on_timer(&mut self, now: f64, timer: Timer, out: &mut Vec<Notice>) {
        match timer {
            Timer::Bus(BusEvent::Deliver { from, to, frame }) => {
                let (msgs, evs) = self.bus.on_deliver(now, from, to, frame);
                self.sched_bus(evs);
                for tm in msgs {
                    let TracedMsg { ctx, msg } = tm;
                    // Make the frame's in-band causal edge visible: one
                    // delivery span per message, parented to whatever span
                    // the sender stamped on the frame.
                    let delivered = if ctx.trace != 0 {
                        trace::complete(
                            ctx.trace,
                            ctx.parent,
                            format!("bus:{} {from}→{to}", msg_name(&msg)),
                            "bus",
                            &format!("shard {to}"),
                            now,
                            now,
                        )
                    } else {
                        0
                    };
                    let ctx = TraceCtx {
                        trace: ctx.trace,
                        parent: if delivered != 0 { delivered } else { ctx.parent },
                    };
                    if self.shards[to].is_live() {
                        self.apply_msg(now, from, to, msg, ctx, out);
                    } else {
                        self.shards[to]
                            .deferred
                            .push_back(Deferred::Msg { from, msg, ctx });
                    }
                }
            }
            Timer::Bus(BusEvent::AckDeliver { from, to, cum }) => {
                self.bus.on_ack(now, from, to, cum)
            }
            Timer::Bus(BusEvent::Retransmit { from, to }) => {
                let evs = self.bus.on_retransmit(now, from, to);
                self.sched_bus(evs);
            }
            Timer::LeaseExpire(id) => {
                let due = {
                    let l = &self.leases[&id];
                    !l.borrower_done && self.shards[l.borrower].is_live()
                };
                // A down borrower is handled by its recovery fixup; its
                // frozen core cannot schedule anything in the meantime.
                if due {
                    let b = self.leases[&id].borrower;
                    self.evict_lease(b, id, now, 0, out);
                    self.drain_router(now, out);
                }
            }
            Timer::LeaseReclaim(id) => {
                let l = &self.leases[&id];
                if l.reclaimed {
                    return;
                }
                let lender = l.lender;
                if self.shards[lender].is_live() {
                    self.reclaim_lease(lender, id, now, 0, out);
                } else {
                    // Lender down: back off and retry; its recovery fixup
                    // may beat this timer, which is fine (reclaim is
                    // guarded).
                    self.timers
                        .push(now + self.lease_cfg.grace, Timer::LeaseReclaim(id));
                }
            }
            Timer::PartitionStart(id) => {
                telemetry::incr("fed.partitions_started", 1);
                self.flightrec
                    .record(now, "partition_start", None, None, format!("id={id}"));
                out.push(Notice::PartitionStarted { id });
                // Arm a suspicion deadline for every outstanding lease the
                // cut severs; leases granted *into* a live partition arm
                // theirs at grant time.
                let schedule = self.bus.partitions().schedules()[id].clone();
                let suspects: Vec<u64> = self
                    .leases
                    .values()
                    .filter(|l| !l.resolved() && !l.fenced() && schedule.cuts(l.lender, l.borrower))
                    .map(|l| l.id)
                    .collect();
                for lease in suspects {
                    let grant = self
                        .lease_traces
                        .get(&lease)
                        .map_or(0, |t| t.grant);
                    let severed = trace::complete(
                        trace::lease_trace(lease),
                        grant,
                        "partition:severed",
                        "partition",
                        "federation",
                        now,
                        now,
                    );
                    if let Some(t) = self.lease_traces.get_mut(&lease) {
                        t.severed = severed;
                    }
                    self.flightrec.record(
                        now,
                        "suspect_armed",
                        None,
                        Some(lease),
                        format!("deadline={}", now + self.lease_cfg.suspicion),
                    );
                    self.timers
                        .push(now + self.lease_cfg.suspicion, Timer::Suspect(lease));
                }
            }
            Timer::PartitionHeal(id) => {
                telemetry::incr("fed.partitions_healed", 1);
                self.flightrec
                    .record(now, "partition_heal", None, None, format!("id={id}"));
                out.push(Notice::PartitionHealed { id });
                // Anti-entropy: every formerly-severed ordered pair of live
                // shards exchanges a ledger digest over the (now open) bus.
                let schedule = self.bus.partitions().schedules()[id].clone();
                for a in 0..self.shards.len() {
                    for b in 0..self.shards.len() {
                        if !schedule.cuts(a, b) || !self.shards[a].is_live() {
                            continue;
                        }
                        let (from_epoch, hash, entries) = self.build_digest(a, b);
                        let sent = trace::complete(
                            trace::shard_trace(a),
                            self.shard_traces[a].root,
                            format!("digest:send →{b}"),
                            "digest",
                            "control",
                            now,
                            now,
                        );
                        self.flightrec.record(
                            now,
                            "digest_send",
                            Some(a),
                            None,
                            format!("to={b} entries={} epoch={from_epoch}", entries.len()),
                        );
                        let evs = self.bus.send(
                            now,
                            a,
                            b,
                            TracedMsg::new(
                                TraceCtx {
                                    trace: trace::shard_trace(a),
                                    parent: sent,
                                },
                                LeaseMsg::Digest {
                                    from_epoch,
                                    hash,
                                    entries,
                                },
                            ),
                        );
                        self.sched_bus(evs);
                    }
                }
            }
            Timer::Suspect(id) => {
                let fence_due = {
                    let l = &self.leases[&id];
                    !l.resolved()
                        && !l.fenced()
                        && self.bus.severed(now, l.lender, l.borrower)
                        && self.shards[l.lender].is_live()
                };
                // If the partition healed in time, the lease resolved, or
                // the lender itself is down (the time-based expires+grace
                // safety covers a dead lender), nothing to fence.
                if fence_due {
                    let lender = self.leases[&id].lender;
                    // Suspicion fires on the suspect lease's trace, caused
                    // by its severed marker (or its grant when the lease
                    // was minted straight into a live partition).
                    let cause = {
                        let t = self.lease_traces.get(&id).copied().unwrap_or_default();
                        if t.severed != 0 {
                            t.severed
                        } else {
                            t.grant
                        }
                    };
                    let suspect = trace::complete(
                        trace::lease_trace(id),
                        cause,
                        "suspect:timeout",
                        "suspect",
                        "federation",
                        now,
                        now,
                    );
                    self.flightrec
                        .record(now, "suspect_timeout", Some(lender), Some(id), "");
                    let epoch = self.shards[lender]
                        .core_mut()
                        .unwrap()
                        .bump_epoch(now);
                    self.shards[lender].last_seen = now;
                    // The epoch bump lives on the lender's control-plane
                    // trace but is *caused by* the suspicion timeout — a
                    // cross-trace parent edge.
                    let bump = trace::complete(
                        trace::shard_trace(lender),
                        if suspect != 0 {
                            suspect
                        } else {
                            self.shard_traces[lender].root
                        },
                        format!("epoch:bump →{epoch}"),
                        "epoch",
                        "control",
                        now,
                        now,
                    );
                    self.flightrec.record(
                        now,
                        "epoch_bump",
                        Some(lender),
                        None,
                        format!("epoch={epoch}"),
                    );
                    // The bump fences every unresolved lease this lender
                    // minted under an older epoch whose borrower is still
                    // unreachable — not just the suspect.
                    let fenced: Vec<u64> = self
                        .leases
                        .values()
                        .filter(|l| {
                            l.lender == lender
                                && !l.resolved()
                                && !l.fenced()
                                && l.lender_epoch < epoch
                                && self.bus.severed(now, lender, l.borrower)
                        })
                        .map(|l| l.id)
                        .collect();
                    for lease in fenced {
                        self.leases.get_mut(&lease).unwrap().fenced_at = Some(now);
                        self.fences += 1;
                        telemetry::incr("fed.leases_fenced", 1);
                        // Fence-after-bump, by parent edge and timestamp.
                        let fence = trace::complete(
                            trace::lease_trace(lease),
                            bump,
                            format!("fenced @epoch {epoch}"),
                            "fence",
                            "federation",
                            now,
                            now,
                        );
                        if let Some(t) = self.lease_traces.get_mut(&lease) {
                            t.fence = fence;
                        }
                        self.flightrec.record(
                            now,
                            "lease_fenced",
                            Some(lender),
                            Some(lease),
                            format!("epoch={epoch}"),
                        );
                        out.push(Notice::LeaseFenced {
                            lease,
                            lender,
                            epoch,
                        });
                    }
                }
            }
        }
    }

    /// Deliver one in-order lease message to a live shard. `ctx` is the
    /// causal context the frame carried (already advanced past the
    /// delivery span); it parents the spans this application records.
    fn apply_msg(
        &mut self,
        now: f64,
        from: usize,
        to: usize,
        msg: LeaseMsg,
        ctx: TraceCtx,
        out: &mut Vec<Notice>,
    ) {
        match msg {
            LeaseMsg::Grant {
                lease,
                global,
                expires,
                lender_epoch,
            } => {
                let (stale, mut refuse) = {
                    let l = &self.leases[&lease];
                    // A fenced lease is never honored: the grant was minted
                    // under an epoch the lender has bumped past.
                    (
                        l.fenced() && now < expires,
                        l.borrower_done || now >= expires || l.fenced(),
                    )
                };
                if stale && self.plant_stale_attach {
                    // Planted split-brain: attach the stale-epoch grant
                    // anyway; the partition oracle must flag it.
                    self.plant_stale_attach = false;
                    refuse = false;
                }
                let parent = if ctx.parent != 0 {
                    ctx.parent
                } else {
                    self.lease_head_span(lease)
                };
                if refuse {
                    let transitioned = {
                        let l = self.leases.get_mut(&lease).unwrap();
                        let t = !l.borrower_done;
                        l.borrower_done = true;
                        t
                    };
                    if transitioned {
                        if stale {
                            telemetry::incr("fed.stale_grants_refused", 1);
                        }
                        out.push(Notice::LeaseReleased { lease });
                    }
                    let refused = trace::complete(
                        trace::lease_trace(lease),
                        parent,
                        if stale { "grant:refused (fenced)" } else { "grant:refused" },
                        "lease",
                        &format!("shard {to}"),
                        now,
                        now,
                    );
                    self.flightrec.record(
                        now,
                        "grant_refused",
                        Some(to),
                        Some(lease),
                        if stale { "stale epoch" } else { "expired or done" },
                    );
                    let evs = self.bus.send(
                        now,
                        to,
                        from,
                        TracedMsg::new(
                            TraceCtx {
                                trace: trace::lease_trace(lease),
                                parent: refused,
                            },
                            LeaseMsg::Release { lease },
                        ),
                    );
                    self.sched_bus(evs);
                    return;
                }
                self.shards[to].last_seen = now;
                let starts = self.shards[to]
                    .core_mut()
                    .unwrap()
                    .borrow_attach(lease, &global, lender_epoch, now);
                {
                    let l = self.leases.get_mut(&lease).unwrap();
                    if l.attached_at.is_none() {
                        l.attached_at = Some(now);
                    }
                }
                telemetry::incr("fed.lease_attaches", 1);
                let attached = trace::complete(
                    trace::lease_trace(lease),
                    parent,
                    "attach",
                    "lease",
                    &format!("shard {to}"),
                    now,
                    now,
                );
                self.flightrec
                    .record(now, "lease_attach", Some(to), Some(lease), "");
                self.start_notices(to, &starts, out);
                let evs = self.bus.send(
                    now,
                    to,
                    from,
                    TracedMsg::new(
                        TraceCtx {
                            trace: trace::lease_trace(lease),
                            parent: attached,
                        },
                        LeaseMsg::Ack { lease },
                    ),
                );
                self.sched_bus(evs);
                self.update_brownout(to, now, out);
            }
            LeaseMsg::Ack { lease } => {
                let first = {
                    let l = self.leases.get_mut(&lease).unwrap();
                    let f = !l.acked;
                    l.acked = true;
                    f
                };
                if first {
                    trace::complete(
                        trace::lease_trace(lease),
                        if ctx.parent != 0 {
                            ctx.parent
                        } else {
                            self.lease_head_span(lease)
                        },
                        "activated",
                        "lease",
                        &format!("shard {to}"),
                        now,
                        now,
                    );
                    self.flightrec
                        .record(now, "lease_ack", Some(to), Some(lease), "");
                    out.push(Notice::LeaseActivated { lease });
                }
            }
            LeaseMsg::Release { lease } => {
                // Arrives at the lender (`to`).
                self.leases.get_mut(&lease).unwrap().borrower_done = true;
                if !self.leases[&lease].reclaimed {
                    self.reclaim_lease(to, lease, now, ctx.parent, out);
                    self.drain_router(now, out);
                }
            }
            LeaseMsg::Digest {
                from_epoch,
                hash,
                entries,
            } => {
                self.apply_digest(now, from, to, from_epoch, hash, entries, ctx, out);
            }
        }
    }

    /// Build shard `a`'s anti-entropy digest of every lease it shares with
    /// peer `b`: its current epoch, the entries (ordered by lease id), and
    /// their FNV-1a hash.
    fn build_digest(&self, a: usize, b: usize) -> (u64, u64, Vec<DigestEntry>) {
        let core = self.shards[a].core().expect("digest needs a live shard");
        let mut entries = Vec::new();
        for l in self.leases.values() {
            if l.resolved() {
                continue;
            }
            if l.lender == a && l.borrower == b {
                entries.push(DigestEntry {
                    lease: l.id,
                    lent: true,
                    lender_epoch: l.lender_epoch,
                    attached: core.lent_leases().contains_key(&l.id),
                    global: l.global.clone(),
                });
            } else if l.borrower == a && l.lender == b {
                entries.push(DigestEntry {
                    lease: l.id,
                    lent: false,
                    lender_epoch: l.lender_epoch,
                    attached: core.borrowed_leases().contains_key(&l.id),
                    global: l.global.clone(),
                });
            }
        }
        (core.epoch(), digest_hash(&entries), entries)
    }

    /// Deterministic reconciliation against a peer's digest, at the
    /// receiver `to`. Every repair is journaled as an explicit
    /// [`reshape_core::WalRecord::HealRepair`] before the repairing
    /// transition — no silent state mutation.
    #[allow(clippy::too_many_arguments)]
    fn apply_digest(
        &mut self,
        now: f64,
        from: usize,
        to: usize,
        _from_epoch: u64,
        hash: u64,
        entries: Vec<DigestEntry>,
        ctx: TraceCtx,
        out: &mut Vec<Notice>,
    ) {
        if digest_hash(&entries) != hash {
            // A mangled digest is ignored, never acted on; retransmission
            // or the time-based expiry path converges instead.
            telemetry::incr("fed.digests_rejected", 1);
            self.flightrec
                .record(now, "digest_reject", Some(to), None, format!("from={from}"));
            return;
        }
        if !self.shards[to].is_live() {
            return;
        }
        // The application lives on the receiver's control-plane trace,
        // caused by the sender's `digest:send` (cross-trace edge carried
        // in-band on the frame).
        trace::complete(
            trace::shard_trace(to),
            if ctx.parent != 0 {
                ctx.parent
            } else {
                self.shard_traces[to].root
            },
            format!("digest:apply ←{from}"),
            "digest",
            "control",
            now,
            now,
        );
        self.flightrec.record(
            now,
            "digest_apply",
            Some(to),
            None,
            format!("from={from} entries={}", entries.len()),
        );
        // Repair 1 — receiver as borrower: evict any attachment whose
        // lease the lender (`from`) has fenced.
        let stale_borrows: Vec<u64> = self.shards[to]
            .core()
            .unwrap()
            .borrowed_leases()
            .keys()
            .copied()
            .filter(|id| {
                let l = &self.leases[id];
                l.lender == from && l.fenced() && !l.borrower_done
            })
            .collect();
        for id in stale_borrows {
            let repaired = self.note_heal_repair(
                to,
                id,
                HealAction::EvictStaleBorrow,
                HealRepairKind::EvictStaleBorrow,
                now,
                out,
            );
            self.evict_lease(to, id, now, repaired, out);
        }
        // Repair 2 — receiver as lender: a fenced lease whose borrower
        // (`from`) proves it holds no attachment can return its escrow
        // immediately — the fence refusal guarantees no attachment can be
        // created later, so waiting out expires+grace buys nothing.
        let returnable: Vec<u64> = self.shards[to]
            .core()
            .unwrap()
            .lent_leases()
            .keys()
            .copied()
            .filter(|id| {
                let l = &self.leases[id];
                l.lender == to
                    && l.borrower == from
                    && l.fenced()
                    && !l.reclaimed
                    && !entries
                        .iter()
                        .any(|e| e.lease == *id && !e.lent && e.attached)
            })
            .collect();
        for id in returnable {
            let transitioned = {
                let l = self.leases.get_mut(&id).unwrap();
                let t = !l.borrower_done;
                l.borrower_done = true;
                t
            };
            if transitioned {
                out.push(Notice::LeaseReleased { lease: id });
            }
            let repaired = self.note_heal_repair(
                to,
                id,
                HealAction::ReturnEscrow,
                HealRepairKind::ReturnEscrow,
                now,
                out,
            );
            self.reclaim_lease(to, id, now, repaired, out);
        }
        self.drain_router(now, out);
    }

    /// Borrower-side eviction: force every job off the lease's slots,
    /// detach them, tell the lender. `cause` is the span that forced the
    /// eviction (0 → parent to the lease trace's head).
    fn evict_lease(&mut self, borrower: usize, id: u64, now: f64, cause: u64, out: &mut Vec<Notice>) {
        let outcome = self.shards[borrower]
            .core_mut()
            .expect("evict_lease needs a live borrower")
            .borrow_evict(id, now);
        self.shards[borrower].last_seen = now;
        self.leases.get_mut(&id).unwrap().borrower_done = true;
        telemetry::incr("fed.lease_evictions", 1);
        let evicted = trace::complete(
            trace::lease_trace(id),
            if cause != 0 { cause } else { self.lease_head_span(id) },
            "evict",
            "lease",
            &format!("shard {borrower}"),
            now,
            now,
        );
        self.flightrec
            .record(now, "lease_evict", Some(borrower), Some(id), "");
        for (job, from, to) in outcome.shrunk {
            telemetry::incr("fed.evict_shrinks", 1);
            out.push(Notice::Evicted {
                shard: borrower,
                job,
                from,
                to,
            });
        }
        for job in outcome.failed {
            let meta = self.job_terminal(borrower, job);
            telemetry::incr("fed.evict_failures", 1);
            out.push(Notice::EvictFailed {
                shard: borrower,
                job,
                tag: meta.map(|m| m.tag).unwrap_or(u64::MAX),
            });
        }
        out.push(Notice::LeaseReleased { lease: id });
        let lender = self.leases[&id].lender;
        let evs = self.bus.send(
            now,
            borrower,
            lender,
            TracedMsg::new(
                TraceCtx {
                    trace: trace::lease_trace(id),
                    parent: evicted,
                },
                LeaseMsg::Release { lease: id },
            ),
        );
        self.sched_bus(evs);
        self.update_brownout(borrower, now, out);
    }

    /// Lender-side reclaim: reattach the slots, restart queued work.
    /// `cause` is the span that triggered the reclaim (0 → lease head).
    fn reclaim_lease(&mut self, lender: usize, id: u64, now: f64, cause: u64, out: &mut Vec<Notice>) {
        let starts = self.shards[lender]
            .core_mut()
            .expect("reclaim_lease needs a live lender")
            .lend_reclaim(id, now);
        self.shards[lender].last_seen = now;
        {
            let l = self.leases.get_mut(&id).unwrap();
            l.reclaimed = true;
        }
        telemetry::incr("fed.leases_reclaimed", 1);
        trace::complete(
            trace::lease_trace(id),
            if cause != 0 { cause } else { self.lease_head_span(id) },
            "reclaim",
            "lease",
            &format!("shard {lender}"),
            now,
            now,
        );
        // The lease lifecycle is over: close the root span opened at grant.
        if let Some(t) = self.lease_traces.get(&id) {
            trace::end(t.root, now);
        }
        self.flightrec
            .record(now, "lease_reclaim", Some(lender), Some(id), "");
        out.push(Notice::LeaseReclaimed { lease: id });
        self.start_notices(lender, &starts, out);
        self.update_brownout(lender, now, out);
    }

    fn apply_checkin(
        &mut self,
        shard: usize,
        job: JobId,
        iter_time: f64,
        redist_time: f64,
        now: f64,
        out: &mut Vec<Notice>,
    ) {
        self.shards[shard].last_seen = now;
        let (directive, starts) = self.shards[shard]
            .core_mut()
            .unwrap()
            .resize_point(job, iter_time, redist_time, now);
        out.push(Notice::Directive {
            shard,
            job,
            directive,
        });
        self.start_notices(shard, &starts, out);
        self.update_brownout(shard, now, out);
        self.maybe_release(shard, now, out);
    }

    fn apply_finished(&mut self, shard: usize, job: JobId, now: f64, out: &mut Vec<Notice>) {
        self.shards[shard].last_seen = now;
        let starts = self.shards[shard].core_mut().unwrap().on_finished(job, now);
        if let Some(meta) = self.job_terminal(shard, job) {
            let ts = self.tenants.get_mut(&meta.tenant).unwrap();
            ts.finished += 1;
        }
        telemetry::incr("fed.finished", 1);
        self.start_notices(shard, &starts, out);
        self.update_brownout(shard, now, out);
        self.drain_router(now, out);
        self.maybe_release(shard, now, out);
    }

    fn apply_failed(
        &mut self,
        shard: usize,
        job: JobId,
        reason: String,
        now: f64,
        out: &mut Vec<Notice>,
    ) {
        self.shards[shard].last_seen = now;
        let starts = self.shards[shard]
            .core_mut()
            .unwrap()
            .on_failed(job, reason, now);
        self.job_terminal(shard, job);
        telemetry::incr("fed.failed", 1);
        self.start_notices(shard, &starts, out);
        self.update_brownout(shard, now, out);
        self.drain_router(now, out);
        self.maybe_release(shard, now, out);
    }

    fn apply_cancel(&mut self, shard: usize, job: JobId, now: f64, out: &mut Vec<Notice>) {
        self.shards[shard].last_seen = now;
        let starts = self.shards[shard].core_mut().unwrap().cancel(job, now);
        self.job_terminal(shard, job);
        telemetry::incr("fed.cancelled", 1);
        self.start_notices(shard, &starts, out);
        self.update_brownout(shard, now, out);
        self.drain_router(now, out);
        self.maybe_release(shard, now, out);
    }

    /// Remove a job's admission record and return its quota.
    fn job_terminal(&mut self, shard: usize, job: JobId) -> Option<JobMeta> {
        let meta = self.job_meta.remove(&(shard, job.0))?;
        let ts = self.tenants.get_mut(&meta.tenant).unwrap();
        ts.in_flight_procs = ts.in_flight_procs.saturating_sub(meta.procs);
        self.tenant_gauges(meta.tenant);
        Some(meta)
    }

    /// Publish a tenant's labeled gauges (router queue depth and quota
    /// utilization). No-op when telemetry is off.
    fn tenant_gauges(&self, tenant: u32) {
        if !telemetry::enabled() {
            return;
        }
        let Some(ts) = self.tenants.get(&tenant) else { return };
        let t = tenant.to_string();
        telemetry::gauge_labeled(
            "fed.tenant_queue_depth",
            &[("tenant", &t)],
            ts.queued.len() as f64,
        );
        telemetry::gauge_labeled(
            "fed.tenant_quota_utilization",
            &[("tenant", &t)],
            ts.in_flight_procs as f64 / ts.cfg.quota_procs.max(1) as f64,
        );
    }

    fn start_notices(&mut self, shard: usize, starts: &[StartAction], out: &mut Vec<Notice>) {
        for s in starts {
            let meta = self.job_meta.get(&(shard, s.job.0));
            let (tenant, tag) = meta.map(|m| (m.tenant, m.tag)).unwrap_or((u32::MAX, u64::MAX));
            out.push(Notice::Started {
                shard,
                job: s.job,
                tenant,
                tag,
                procs: s.config.procs(),
            });
        }
    }

    /// Pick a shard for a `need`-processor job: prefer one that can start
    /// it immediately (most idle wins), else the shortest queue (largest
    /// pool, then lowest id, break ties).
    fn route(&self, need: usize) -> Option<usize> {
        let mut immediate: Option<(usize, usize)> = None; // (idle, id)
        let mut queued: Option<(usize, usize, usize)> = None; // (queue, -idle, id)
        for s in &self.shards {
            let Some(core) = s.core() else { continue };
            let idle = core.idle_procs();
            if core.queue_len() == 0
                && idle >= need
                && immediate.is_none_or(|(best, _)| idle > best)
            {
                immediate = Some((idle, s.id));
            }
            // Queue placement: shortest queue first, then most idle
            // processors — the smallest lending deficit if it comes to
            // that — then lowest id.
            let key = (core.queue_len(), usize::MAX - idle, s.id);
            if queued.is_none_or(|q| key < q) {
                queued = Some(key);
            }
        }
        immediate.map(|(_, id)| id).or(queued.map(|(_, _, id)| id))
    }

    fn assign(
        &mut self,
        shard: usize,
        tenant: u32,
        tag: u64,
        spec: JobSpec,
        now: f64,
        out: &mut Vec<Notice>,
    ) {
        let need = spec.initial.procs();
        self.shards[shard].last_seen = now;
        let (job, starts) = self.shards[shard].core_mut().unwrap().submit(spec, now);
        self.job_meta.insert(
            (shard, job.0),
            JobMeta {
                tenant,
                tag,
                procs: need,
            },
        );
        {
            let ts = self.tenants.get_mut(&tenant).unwrap();
            ts.in_flight_procs += need;
            ts.admitted += 1;
        }
        telemetry::incr("fed.admitted", 1);
        if telemetry::enabled() {
            telemetry::incr_labeled("fed.tenant_admitted", &[("tenant", &tenant.to_string())], 1);
            telemetry::incr_labeled("fed.shard_admitted", &[("shard", &shard.to_string())], 1);
        }
        self.tenant_gauges(tenant);
        out.push(Notice::Admitted {
            shard,
            job,
            tenant,
            tag,
        });
        self.start_notices(shard, &starts, out);
        self.update_brownout(shard, now, out);
    }

    /// Admit from the router queue while quota and a live shard allow,
    /// draining the tenant with the lowest `in_flight / weight` first.
    fn drain_router(&mut self, now: f64, out: &mut Vec<Notice>) {
        loop {
            let mut order: Vec<(u64, u32)> = self
                .tenants
                .iter()
                .filter(|(_, t)| !t.queued.is_empty())
                .map(|(&id, t)| (t.share().to_bits(), id))
                .collect();
            order.sort();
            let mut admitted = false;
            for (_, tenant) in order {
                let (need, ok) = {
                    let ts = &self.tenants[&tenant];
                    let need = ts.queued.front().unwrap().spec.initial.procs();
                    (need, ts.in_flight_procs + need <= ts.cfg.quota_procs)
                };
                if !ok {
                    continue;
                }
                let Some(shard) = self.route(need) else { continue };
                let qj = self
                    .tenants
                    .get_mut(&tenant)
                    .unwrap()
                    .queued
                    .pop_front()
                    .unwrap();
                telemetry::observe("fed.router_wait", now - qj.queued_at);
                telemetry::observe_labeled(
                    "fed.tenant_admit_latency",
                    &[("tenant", &tenant.to_string())],
                    now - qj.queued_at,
                );
                self.assign(shard, tenant, qj.tag, qj.spec, now, out);
                admitted = true;
                break;
            }
            if !admitted {
                break;
            }
        }
    }

    /// Brownout hysteresis on scheduler queue depth. Runs after every
    /// transition that can change a live shard's queue.
    fn update_brownout(&mut self, shard: usize, now: f64, out: &mut Vec<Notice>) {
        let Some(core) = self.shards[shard].core() else {
            return;
        };
        let depth = core.queue_len();
        let label = shard.to_string();
        telemetry::gauge_labeled(
            "fed.shard_queue_depth",
            &[("shard", label.as_str())],
            depth as f64,
        );
        if !self.shards[shard].brownout && depth >= self.brownout_cfg.queue_high {
            self.engage_brownout(shard, now, BrownoutReason::QueueDepth, out);
        } else if self.shards[shard].brownout && depth <= self.brownout_cfg.queue_low {
            self.shards[shard].brownout = false;
            self.shards[shard]
                .core_mut()
                .unwrap()
                .set_expand_paused(false, now);
            telemetry::incr("fed.brownout_released", 1);
            trace::end(self.shard_traces[shard].brownout, now);
            self.shard_traces[shard].brownout = 0;
            self.flightrec.record(
                now,
                "brownout_release",
                Some(shard),
                None,
                format!("depth={depth}"),
            );
            out.push(Notice::BrownoutReleased { shard });
        }
    }

    fn engage_brownout(
        &mut self,
        shard: usize,
        now: f64,
        reason: BrownoutReason,
        out: &mut Vec<Notice>,
    ) {
        let depth = self.shards[shard].queue_len();
        self.shards[shard].brownout = true;
        self.shards[shard]
            .core_mut()
            .unwrap()
            .set_expand_paused(true, now);
        telemetry::incr("fed.brownout_engaged", 1);
        self.shard_traces[shard].brownout = trace::begin(
            trace::shard_trace(shard),
            self.shard_traces[shard].root,
            "brownout",
            "brownout",
            "control",
            now,
        );
        self.flightrec.record(
            now,
            "brownout_engage",
            Some(shard),
            None,
            format!("depth={depth} reason={reason:?}"),
        );
        out.push(Notice::BrownoutEngaged {
            shard,
            queue_depth: depth,
            reason,
        });
    }

    /// Borrower-side early release: once a shard's queue is empty and no
    /// running job touches a borrowed lease, give it back rather than
    /// sitting on it until expiry.
    fn maybe_release(&mut self, shard: usize, now: f64, out: &mut Vec<Notice>) {
        let ids: Vec<u64> = {
            let Some(core) = self.shards[shard].core() else {
                return;
            };
            if core.queue_len() > 0 {
                return;
            }
            core.borrowed_leases()
                .iter()
                .filter(|(_, bl)| {
                    !core.jobs().any(|(_, rec)| {
                        rec.state.is_active() && rec.slots.iter().any(|s| bl.local.contains(s))
                    })
                })
                .map(|(&id, _)| id)
                .collect()
        };
        for id in ids {
            if !self.leases[&id].borrower_done {
                self.evict_lease(shard, id, now, 0, out);
            }
        }
    }

    /// Lend idle processors to starved shards: for each live shard whose
    /// queue head cannot start, find a donor with enough spare, escrow
    /// the slots in the donor's WAL, and put a grant on the bus.
    fn maybe_lend(&mut self, now: f64, out: &mut Vec<Notice>) {
        for b in 0..self.shards.len() {
            let deficit = {
                let Some(core) = self.shards[b].core() else { continue };
                let Some(need) = core.queue_head_need() else { continue };
                need.saturating_sub(core.idle_procs())
            };
            if deficit == 0 {
                continue;
            }
            for d in 0..self.shards.len() {
                if d == b {
                    continue;
                }
                let eligible = {
                    let Some(core) = self.shards[d].core() else { continue };
                    // A donor never re-lends borrowed processors (no
                    // sublease chains), never lends while work is queued.
                    core.queue_len() == 0
                        && core.borrowed_procs() == 0
                        && core.idle_procs().saturating_sub(self.lease_cfg.min_spare) >= deficit
                };
                if !eligible {
                    continue;
                }
                if let Some(&last) = self.lend_attempts.get(&(d, b)) {
                    if now - last < self.lease_cfg.retry_backoff {
                        continue;
                    }
                }
                if self.grant_lease(d, b, deficit, now, out) {
                    break;
                }
            }
        }
    }

    fn grant_lease(
        &mut self,
        lender: usize,
        borrower: usize,
        n: usize,
        now: f64,
        out: &mut Vec<Notice>,
    ) -> bool {
        let id = self.next_lease;
        // Escrow first: the lender journals `lend_grant` before anything
        // touches the wire, so a lender crash after this point still
        // reclaims the slots deterministically from its own WAL.
        let Some(slots) = self.shards[lender]
            .core_mut()
            .unwrap()
            .lend_grant(id, n, now)
        else {
            return false;
        };
        self.next_lease += 1;
        self.shards[lender].last_seen = now;
        let base = self.shards[lender].base;
        let epoch = self.shards[lender].core().unwrap().epoch();
        let global: Vec<usize> = slots.iter().map(|&s| base + s).collect();
        let expires = now + self.lease_cfg.term;
        self.leases.insert(
            id,
            Lease {
                id,
                lender,
                borrower,
                global: global.clone(),
                granted_at: now,
                expires,
                acked: false,
                borrower_done: false,
                reclaimed: false,
                lender_epoch: epoch,
                attached_at: None,
                fenced_at: None,
            },
        );
        self.lend_attempts.insert((lender, borrower), now);
        telemetry::incr("fed.leases_granted", 1);
        {
            let lender_s = lender.to_string();
            let borrower_s = borrower.to_string();
            telemetry::incr_labeled(
                "fed.shard_leases_granted",
                &[("lender", &lender_s), ("borrower", &borrower_s)],
                1,
            );
        }
        // Open the lease trace: a root span spanning grant → reclaim plus
        // the instantaneous `grant` marker every later span descends from.
        let ltrace = trace::lease_trace(id);
        let root = trace::begin(ltrace, 0, format!("lease {id}"), "lease", "federation", now);
        let grant = trace::complete(
            ltrace,
            root,
            format!("grant {lender}→{borrower} ×{n}"),
            "lease",
            &format!("shard {lender}"),
            now,
            now,
        );
        self.lease_traces.insert(
            id,
            LeaseTraceState {
                root,
                grant,
                ..Default::default()
            },
        );
        self.flightrec.record(
            now,
            "lease_grant",
            Some(lender),
            Some(id),
            format!("to={borrower} procs={} expires={expires}", global.len()),
        );
        let evs = self.bus.send(
            now,
            lender,
            borrower,
            TracedMsg::new(
                TraceCtx {
                    trace: ltrace,
                    parent: grant,
                },
                LeaseMsg::Grant {
                    lease: id,
                    global: global.clone(),
                    expires,
                    lender_epoch: epoch,
                },
            ),
        );
        self.sched_bus(evs);
        self.timers.push(expires, Timer::LeaseExpire(id));
        self.timers
            .push(expires + self.lease_cfg.grace, Timer::LeaseReclaim(id));
        // A grant into a live partition starts its suspicion clock
        // immediately (grants made before the cut arm theirs at
        // `PartitionStart`).
        if self.bus.severed(now, lender, borrower) {
            self.timers
                .push(now + self.lease_cfg.suspicion, Timer::Suspect(id));
        }
        out.push(Notice::LeaseGranted {
            lease: id,
            lender,
            borrower,
            procs: global.len(),
            expires,
        });

        if self.plant_double_grant {
            // Planted fault: wire the SAME processors to a second
            // borrower under a rogue lease the lender never journaled.
            self.plant_double_grant = false;
            if let Some(rogue_to) = (0..self.shards.len())
                .find(|&s| s != borrower && s != lender && self.shards[s].is_live())
            {
                let rogue = self.next_lease;
                self.next_lease += 1;
                self.leases.insert(
                    rogue,
                    Lease {
                        id: rogue,
                        lender,
                        borrower: rogue_to,
                        global: global.clone(),
                        granted_at: now,
                        expires,
                        acked: false,
                        borrower_done: false,
                        reclaimed: true, // lender will never reclaim it
                        lender_epoch: epoch,
                        attached_at: None,
                        fenced_at: None,
                    },
                );
                let evs = self.bus.send(
                    now,
                    lender,
                    rogue_to,
                    // The rogue grant carries no causal context — the
                    // lender never journaled it, so nothing caused it as
                    // far as the trace model is concerned.
                    TracedMsg::from(LeaseMsg::Grant {
                        lease: rogue,
                        global,
                        expires,
                        lender_epoch: epoch,
                    }),
                );
                self.sched_bus(evs);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_core::TopologyPref;

    fn spec(name: &str, procs: usize, iters: usize) -> JobSpec {
        JobSpec::new(
            name,
            TopologyPref::AnyCount {
                min: 1,
                max: 64,
                step: 1,
            },
            ProcessorConfig::linear(procs),
            iters,
        )
    }

    fn two_shard_fed() -> Federation {
        let mut cfg = FederationConfig::new(
            vec![4, 4],
            vec![TenantConfig::new(64, 1.0, 32)],
        );
        cfg.lease.min_spare = 0;
        cfg.lease.term = 30.0;
        cfg.lease.grace = 10.0;
        Federation::new(cfg)
    }

    /// Process timers strictly before `horizon`, collecting notices.
    fn drain_until(fed: &mut Federation, horizon: f64) -> Vec<Notice> {
        let mut out = Vec::new();
        while fed.next_timer().is_some_and(|t| t < horizon) {
            let t = fed.next_timer().unwrap();
            out.extend(fed.run_timers(t));
        }
        out
    }

    #[test]
    fn lend_tops_up_a_starved_shard_and_reclaims_after_release() {
        let mut fed = two_shard_fed();
        // Occupy half of shard 0, then submit a 6-proc job: no shard can
        // start it alone (4+4 pools, shard 0 half busy), so it queues on
        // the idlest shard and lending covers the deficit.
        let n0 = fed.submit(0, 0, spec("fill", 2, 4), 0.0);
        assert_eq!(
            n0.iter()
                .filter(|n| matches!(n, Notice::Started { .. }))
                .count(),
            1
        );
        let n1 = fed.submit(0, 1, spec("big", 6, 1), 1.0);
        assert!(
            n1.iter().any(|n| matches!(n, Notice::LeaseGranted { .. })),
            "starved shard should trigger a lease: {n1:?}"
        );
        // Let the grant cross the bus and the job start.
        let drained = drain_until(&mut fed, 3.0);
        assert!(
            drained
                .iter()
                .any(|n| matches!(n, Notice::Started { tag: 1, procs: 6, .. })),
            "big job should start on native+borrowed procs: {drained:?}"
        );
        // The big job finishes; the idle borrower releases the lease
        // early and the lender reclaims on Release receipt.
        let shard = fed
            .leases()
            .next()
            .map(|l| l.borrower)
            .expect("one lease exists");
        let job = fed.shards()[shard]
            .core()
            .unwrap()
            .jobs()
            .find(|(_, r)| r.spec.name == "big")
            .map(|(&id, _)| id)
            .unwrap();
        let n2 = fed.finished(shard, job, 5.0);
        assert!(
            n2.iter().any(|n| matches!(n, Notice::LeaseReleased { .. })),
            "idle borrower should release early: {n2:?}"
        );
        let n3 = drain_until(&mut fed, 7.0);
        assert!(
            n2.iter()
                .chain(n3.iter())
                .any(|n| matches!(n, Notice::LeaseReclaimed { .. })),
            "lender should reclaim: {n3:?}"
        );
        assert_eq!(fed.live_leases(), 0);
        for s in fed.shards() {
            let c = s.core().unwrap();
            assert_eq!(c.owned_procs(), s.native());
            assert_eq!(c.lent_procs(), 0);
            assert_eq!(c.borrowed_procs(), 0);
        }
    }

    #[test]
    fn expired_lease_evicts_borrower_then_lender_reclaims() {
        let mut cfg = FederationConfig::new(vec![4, 4], vec![TenantConfig::new(64, 1.0, 32)]);
        cfg.lease.min_spare = 0;
        cfg.lease.term = 10.0;
        cfg.lease.grace = 5.0;
        let mut fed = Federation::new(cfg);
        // Long-running jobs: the lease is still in use at expiry, so the
        // borrower is force-evicted (shrunk back to native processors).
        fed.submit(0, 0, spec("fill", 2, 40), 0.0);
        fed.submit(0, 1, spec("big", 6, 40), 1.0);
        let lease = fed.leases().next().expect("lease granted").id;
        let expires = fed.lease(lease).unwrap().expires;
        drain_until(&mut fed, expires);
        assert!(fed.lease(lease).unwrap().acked, "borrower should have acked");
        // Expiry evicts the borrower's jobs off the borrowed slots.
        let n = fed.run_timers(expires);
        assert!(
            n.iter().any(|x| matches!(x, Notice::Evicted { .. })),
            "expiry must shrink the job off borrowed slots: {n:?}"
        );
        assert!(
            n.iter().any(|x| matches!(x, Notice::LeaseReleased { .. })),
            "expiry must release the lease: {n:?}"
        );
        let borrower = fed.lease(lease).unwrap().borrower;
        assert_eq!(fed.shards()[borrower].core().unwrap().borrowed_procs(), 0);
        // Reclaim happens by Release receipt or at the grace deadline.
        let n2 = drain_until(&mut fed, expires + 6.0);
        assert!(
            n.iter()
                .chain(n2.iter())
                .any(|x| matches!(x, Notice::LeaseReclaimed { .. })),
            "lender must reclaim: {n2:?}"
        );
        assert!(fed.lease(lease).unwrap().resolved());
    }

    #[test]
    fn brownout_engages_at_high_water_and_releases_at_low_water() {
        let mut cfg = FederationConfig::new(vec![2], vec![TenantConfig::new(64, 1.0, 32)]);
        cfg.brownout.queue_high = 3;
        cfg.brownout.queue_low = 1;
        let mut fed = Federation::new(cfg);
        // One running job, then queue up to the threshold.
        fed.submit(0, 0, spec("run", 2, 100), 0.0);
        let mut engaged_at = None;
        for i in 1..=3u64 {
            let n = fed.submit(0, i, spec(&format!("q{i}"), 2, 1), i as f64);
            if n.iter().any(|x| matches!(x, Notice::BrownoutEngaged { .. })) {
                engaged_at = Some(i);
            }
        }
        assert_eq!(
            engaged_at,
            Some(3),
            "brownout must engage exactly when depth hits queue_high"
        );
        assert!(fed.shards()[0].core().unwrap().expand_paused());
        // Drain: finishing the runner starts queued jobs one at a time
        // (each is 2 procs on a 2-proc shard).
        let job = |fed: &Federation, name: &str| {
            fed.shards()[0]
                .core()
                .unwrap()
                .jobs()
                .find(|(_, r)| r.spec.name == name && !r.state.is_terminal())
                .map(|(&id, _)| id)
        };
        let mut released = false;
        let mut t = 10.0;
        for name in ["run", "q1", "q2", "q3"] {
            if let Some(id) = job(&fed, name) {
                let n = fed.finished(0, id, t);
                t += 1.0;
                let depth = fed.shards()[0].core().unwrap().queue_len();
                if n.iter().any(|x| matches!(x, Notice::BrownoutReleased { .. })) {
                    released = true;
                    assert!(
                        depth <= 1,
                        "release only at or below queue_low, depth={depth}"
                    );
                }
                // Hysteresis edges hold after every transition.
                let s = &fed.shards()[0];
                if depth >= 3 {
                    assert!(s.brownout());
                }
                if depth <= 1 {
                    assert!(!s.brownout());
                }
            }
        }
        assert!(released, "brownout must release once the queue drains");
        assert!(!fed.shards()[0].core().unwrap().expand_paused());
    }

    #[test]
    fn killed_borrower_recovers_evicts_overdue_lease_and_ledger_heals() {
        let mut cfg = FederationConfig::new(
            vec![4, 4],
            vec![TenantConfig::new(64, 1.0, 32)],
        );
        cfg.lease.min_spare = 0;
        cfg.lease.term = 10.0;
        cfg.lease.grace = 5.0;
        let mut fed = Federation::new(cfg);
        fed.submit(0, 0, spec("fill", 2, 40), 0.0);
        fed.submit(0, 1, spec("big", 6, 40), 1.0);
        let lease = fed.leases().next().expect("lease granted").id;
        // Deliver the grant, then crash the borrower mid-lease.
        drain_until(&mut fed, 3.0);
        let borrower = fed.lease(lease).unwrap().borrower;
        assert!(fed.shards()[borrower].core().unwrap().borrowed_procs() > 0);
        let (was_live, _) = fed.kill_shard(borrower, 3.0);
        assert!(was_live);
        // The lease expires and the grace deadline passes while the
        // borrower is down: the lender reclaims unilaterally.
        let n = fed.run_timers(16.0);
        assert!(
            n.iter().any(|x| matches!(x, Notice::LeaseReclaimed { .. })),
            "lender reclaims at expires+grace with borrower down: {n:?}"
        );
        let lender = fed.lease(lease).unwrap().lender;
        assert_eq!(fed.shards()[lender].core().unwrap().lent_procs(), 0);
        // Recovery replays the WAL to the exact crash state, then the
        // fixup evicts the overdue lease before anything can schedule.
        let (report, notices) = fed.recover_shard(borrower, 20.0);
        let report = report.expect("shard was down");
        assert!(report.snapshot_match, "WAL replay must equal crash snapshot");
        assert!(report.quarantined.is_none(), "clean WAL quarantines nothing");
        assert!(
            notices.iter().any(|x| matches!(x, Notice::LeaseReleased { .. })),
            "recovery fixup must evict the overdue lease: {notices:?}"
        );
        assert_eq!(fed.shards()[borrower].core().unwrap().borrowed_procs(), 0);
        assert!(fed.lease(lease).unwrap().resolved());
        drain_until(&mut fed, 30.0);
        for s in fed.shards() {
            let c = s.core().unwrap();
            assert_eq!(c.owned_procs(), s.native(), "shard {}", s.id());
        }
    }

    #[test]
    fn deferred_traffic_replays_in_order_at_recovery() {
        let mut fed = Federation::new(FederationConfig::new(
            vec![2, 2],
            vec![TenantConfig::new(64, 1.0, 32)],
        ));
        let n = fed.submit(0, 0, spec("a", 2, 10), 0.0);
        let job = n
            .iter()
            .find_map(|x| match x {
                Notice::Started { job, .. } => Some(*job),
                _ => None,
            })
            .unwrap();
        fed.kill_shard(0, 1.0);
        // Checkin and finish arrive while the shard is down.
        let n1 = fed.checkin(0, job, 0.5, 0.0, 2.0);
        assert!(
            !n1.iter().any(|x| matches!(x, Notice::Directive { .. })),
            "down shard cannot answer a checkin"
        );
        let n2 = fed.finished(0, job, 3.0);
        assert!(n2.is_empty());
        // Survivor keeps working through the outage.
        let n3 = fed.submit(0, 7, spec("b", 2, 10), 3.5);
        assert!(
            n3.iter()
                .any(|x| matches!(x, Notice::Started { shard: 1, .. })),
            "survivor must keep admitting: {n3:?}"
        );
        let (report, notices) = fed.recover_shard(0, 4.0);
        assert!(report.unwrap().snapshot_match);
        // Replay answered the checkin, then applied the finish.
        assert!(
            notices
                .iter()
                .any(|x| matches!(x, Notice::Directive { .. })),
            "deferred checkin must replay: {notices:?}"
        );
        let core = fed.shards()[0].core().unwrap();
        assert!(core.job(job).unwrap().state.is_terminal());
        assert_eq!(core.idle_procs(), 2);
    }

    #[test]
    fn duplicated_and_reordered_expiry_events_evict_exactly_once() {
        use reshape_core::ctrl::ChaosConfig;
        let mut cfg = FederationConfig::new(vec![4, 4], vec![TenantConfig::new(64, 1.0, 32)]);
        cfg.lease.min_spare = 0;
        cfg.lease.term = 10.0;
        cfg.lease.grace = 5.0;
        // Chaotic wire: the Release/Ack traffic around the expiry is
        // duplicated and reordered under the federation.
        cfg.bus.chaos = Some(ChaosConfig {
            loss: 0.0,
            dup: 0.5,
            reorder: 0.5,
            seed: 0xD0_5E,
        });
        let mut fed = Federation::new(cfg);
        fed.submit(0, 0, spec("fill", 2, 40), 0.0);
        fed.submit(0, 1, spec("big", 6, 40), 1.0);
        let lease = fed.leases().next().expect("lease granted").id;
        let expires = fed.lease(lease).unwrap().expires;
        drain_until(&mut fed, expires);
        // Plant duplicated and reordered copies of the expiry and reclaim
        // deadlines — a crash-recovery re-arm or a timer-wheel bug looks
        // exactly like this.
        fed.timers.push(expires, Timer::LeaseExpire(lease));
        fed.timers.push(expires + 0.25, Timer::LeaseExpire(lease));
        fed.timers.push(expires + 5.0, Timer::LeaseReclaim(lease));
        fed.timers.push(expires + 5.5, Timer::LeaseReclaim(lease));
        fed.timers.push(expires + 6.0, Timer::LeaseExpire(lease));
        let mut all = drain_until(&mut fed, expires + 20.0);
        all.extend(fed.run_timers(expires + 20.0));
        let released = all
            .iter()
            .filter(|x| matches!(x, Notice::LeaseReleased { lease: l } if *l == lease))
            .count();
        let reclaimed = all
            .iter()
            .filter(|x| matches!(x, Notice::LeaseReclaimed { lease: l } if *l == lease))
            .count();
        let evicted = all
            .iter()
            .filter(|x| matches!(x, Notice::Evicted { .. }))
            .count();
        assert_eq!(evicted, 1, "one eviction despite duplicate expiries: {all:?}");
        assert_eq!(released, 1, "one release despite duplicate expiries: {all:?}");
        assert_eq!(reclaimed, 1, "one reclaim despite duplicate deadlines: {all:?}");
        assert!(fed.lease(lease).unwrap().resolved());
        for s in fed.shards() {
            let c = s.core().unwrap();
            assert_eq!(c.owned_procs(), s.native());
            assert_eq!(c.lent_procs(), 0);
            assert_eq!(c.borrowed_procs(), 0);
        }
    }

    #[test]
    fn suspicion_fences_severed_lease_and_heal_evicts_the_stale_borrow() {
        let mut cfg = FederationConfig::new(vec![4, 4], vec![TenantConfig::new(64, 1.0, 32)]);
        cfg.lease.min_spare = 0;
        cfg.lease.term = 60.0;
        cfg.lease.grace = 10.0;
        cfg.lease.suspicion = 5.0;
        let mut fed = Federation::new(cfg);
        fed.submit(0, 0, spec("fill", 2, 100), 0.0);
        fed.submit(0, 1, spec("big", 6, 100), 1.0);
        let lease = fed.leases().next().expect("lease granted").id;
        drain_until(&mut fed, 3.0);
        let (lender, borrower) = {
            let l = fed.lease(lease).unwrap();
            (l.lender, l.borrower)
        };
        assert!(fed.shards()[borrower].core().unwrap().borrowed_procs() > 0);
        // Sever the pair at t=5; the suspicion timeout fires at t=10, long
        // before the lease term.
        fed.inject_partition(vec![vec![lender], vec![borrower]], 5.0, 25.0);
        let n = drain_until(&mut fed, 24.0);
        assert!(n.iter().any(|x| matches!(x, Notice::PartitionStarted { .. })));
        assert!(
            n.iter()
                .any(|x| matches!(x, Notice::LeaseFenced { lease: l, epoch: 1, .. } if *l == lease)),
            "suspicion must fence the severed lease: {n:?}"
        );
        assert_eq!(fed.shards()[lender].core().unwrap().epoch(), 1);
        assert!(fed.lease(lease).unwrap().fenced());
        assert_eq!(fed.fences(), 1);
        // While fenced the borrower still holds the slots (it cannot know
        // yet); the heal digest is what evicts it, as a journaled repair.
        let mut all = drain_until(&mut fed, 40.0);
        all.extend(fed.run_timers(40.0));
        assert!(all.iter().any(|x| matches!(x, Notice::PartitionHealed { .. })));
        assert!(
            all.iter().any(|x| matches!(
                x,
                Notice::HealRepaired { lease: l, action: HealAction::EvictStaleBorrow, .. }
                if *l == lease
            )),
            "heal must evict the stale borrow: {all:?}"
        );
        assert!(
            all.iter()
                .any(|x| matches!(x, Notice::LeaseReclaimed { lease: l } if *l == lease)),
            "the eviction's release lets the fenced lender reclaim: {all:?}"
        );
        assert_eq!(fed.heal_repairs(), 1);
        assert_eq!(fed.heal_repairs_of(HealRepairKind::EvictStaleBorrow), 1);
        assert_eq!(fed.heal_repairs_of(HealRepairKind::RecoveryFixup), 0);
        assert_eq!(fed.heal_repairs_of(HealRepairKind::ReturnEscrow), 0);
        assert!(fed.lease(lease).unwrap().resolved());
        for s in fed.shards() {
            let c = s.core().unwrap();
            assert_eq!(c.owned_procs(), s.native(), "shard {}", s.id());
            assert_eq!(c.lent_procs(), 0);
            assert_eq!(c.borrowed_procs(), 0);
        }
        // The flight recorder saw the whole story.
        let kinds: Vec<&str> = fed.flightrec().events().map(|e| e.kind).collect();
        for expect in [
            "lease_grant",
            "lease_attach",
            "partition_start",
            "suspect_timeout",
            "epoch_bump",
            "lease_fenced",
            "partition_heal",
            "digest_send",
            "heal_repair",
            "lease_evict",
            "lease_reclaim",
        ] {
            assert!(kinds.contains(&expect), "missing {expect}: {kinds:?}");
        }
    }

    /// Serializes tests that toggle the process-global trace sink.
    fn trace_gate() -> &'static std::sync::Mutex<()> {
        static GATE: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        GATE.get_or_init(|| std::sync::Mutex::new(()))
    }

    #[test]
    fn fenced_lease_trace_chain_is_parent_connected() {
        let _g = trace_gate().lock().unwrap_or_else(|p| p.into_inner());
        trace::reset();
        trace::set_enabled(true);
        // Same scenario as the suspicion-fences test: grant → partition →
        // suspect → epoch bump → fence → heal repair → evict → reclaim.
        let mut cfg = FederationConfig::new(vec![4, 4], vec![TenantConfig::new(64, 1.0, 32)]);
        cfg.lease.min_spare = 0;
        cfg.lease.term = 60.0;
        cfg.lease.grace = 10.0;
        cfg.lease.suspicion = 5.0;
        let mut fed = Federation::new(cfg);
        fed.submit(0, 0, spec("fill", 2, 100), 0.0);
        fed.submit(0, 1, spec("big", 6, 100), 1.0);
        let lease = fed.leases().next().expect("lease granted").id;
        let (lender, borrower) = {
            let l = fed.lease(lease).unwrap();
            (l.lender, l.borrower)
        };
        fed.inject_partition(vec![vec![lender], vec![borrower]], 5.0, 25.0);
        drain_until(&mut fed, 40.0);
        fed.run_timers(40.0);
        assert!(fed.lease(lease).unwrap().resolved());
        trace::set_enabled(false);
        let spans = trace::drain_spans();
        trace::reset();

        let by_id: BTreeMap<u64, &reshape_telemetry::trace::SpanRecord> =
            spans.iter().map(|s| (s.id, s)).collect();
        let find = |cat: &str, trace_id: u64| {
            spans
                .iter()
                .find(|s| s.cat == cat && s.trace == trace_id)
                .unwrap_or_else(|| panic!("no {cat} span on trace {trace_id:#x}"))
        };
        let ltrace = trace::lease_trace(lease);
        let heal = find("heal", ltrace);
        let fence = find("fence", ltrace);
        let bump = find("epoch", trace::shard_trace(lender));
        let suspect = find("suspect", ltrace);
        let severed = find("partition", ltrace);
        let grant = spans
            .iter()
            .find(|s| s.trace == ltrace && s.name.starts_with("grant "))
            .expect("grant span");
        // The acceptance chain, edge by edge (fence→bump crosses from the
        // lease trace into the lender's shard trace and back).
        assert_eq!(heal.parent, fence.id, "heal repair caused by the fence");
        assert_eq!(fence.parent, bump.id, "fence caused by the epoch bump");
        assert!(fence.start >= bump.start, "fence never precedes its bump");
        assert_eq!(bump.parent, suspect.id, "bump caused by the suspicion timeout");
        assert_eq!(suspect.parent, severed.id, "suspicion armed by the cut");
        assert_eq!(severed.parent, grant.id, "cut severed the granted lease");
        // The whole chain closes transitively at a root span (parent 0).
        let mut cur = heal.id;
        let mut hops = 0;
        while by_id[&cur].parent != 0 {
            cur = by_id[&cur].parent;
            hops += 1;
            assert!(hops < 64, "parent chain must terminate");
        }
        // Every lease span recorded on a shard track sits inside that
        // shard's root span lifetime.
        for i in 0..2 {
            let root = spans
                .iter()
                .find(|s| s.trace == trace::shard_trace(i) && s.parent == 0 && s.cat == "shard")
                .expect("shard root span");
            for sp in spans.iter().filter(|s| {
                reshape_telemetry::trace::is_lease_trace(s.trace) && s.track == format!("shard {i}")
            }) {
                assert!(
                    sp.start >= root.start && sp.end <= root.end,
                    "lease span {} outside shard {i} lifetime",
                    sp.name
                );
            }
        }
        // In-band bus delivery spans exist for grant, ack and release.
        for kind in ["bus:grant", "bus:ack", "bus:release"] {
            assert!(
                spans.iter().any(|s| s.trace == ltrace && s.name.starts_with(kind)),
                "missing {kind} delivery span"
            );
        }
    }

    #[test]
    fn tracing_does_not_change_scheduling_or_notices() {
        let _g = trace_gate().lock().unwrap_or_else(|p| p.into_inner());
        let run = || {
            let mut cfg =
                FederationConfig::new(vec![4, 4], vec![TenantConfig::new(64, 1.0, 32)]);
            cfg.lease.min_spare = 0;
            cfg.lease.suspicion = 5.0;
            let mut fed = Federation::new(cfg);
            let mut notices = Vec::new();
            notices.extend(fed.submit(0, 0, spec("fill", 2, 100), 0.0));
            notices.extend(fed.submit(0, 1, spec("big", 6, 100), 1.0));
            fed.inject_partition(vec![vec![0], vec![1]], 5.0, 25.0);
            notices.extend(drain_until(&mut fed, 40.0));
            notices.extend(fed.run_timers(40.0));
            (format!("{notices:?}"), fed.transitions(), fed.heal_repairs())
        };
        trace::reset();
        trace::set_enabled(false);
        let off = run();
        trace::set_enabled(true);
        let on = run();
        trace::set_enabled(false);
        trace::reset();
        assert_eq!(off, on, "tracing must be invisible to the control plane");
    }

    #[test]
    fn never_attached_grant_is_fenced_and_escrow_returned_by_heal_digest() {
        let mut cfg = FederationConfig::new(vec![4, 4], vec![TenantConfig::new(64, 1.0, 32)]);
        cfg.lease.min_spare = 0;
        cfg.lease.term = 60.0;
        cfg.lease.grace = 30.0;
        cfg.lease.suspicion = 5.0;
        // One lend attempt only, so the post-heal ledger shows exactly what
        // the repair did (no fresh re-grant on the healed wire).
        cfg.lease.retry_backoff = 1000.0;
        let mut fed = Federation::new(cfg);
        // The partition is already live when the grant is minted: the
        // Grant frame dies on the wire and the borrower never attaches.
        fed.inject_partition(vec![vec![0], vec![1]], 0.5, 20.0);
        fed.run_timers(0.6);
        fed.submit(0, 0, spec("fill", 2, 100), 0.7);
        let n = fed.submit(0, 1, spec("big", 6, 100), 1.0);
        assert!(
            n.iter().any(|x| matches!(x, Notice::LeaseGranted { .. })),
            "the lender cannot know the pair is severed at grant time: {n:?}"
        );
        let lease = fed.leases().next().unwrap().id;
        let (lender, borrower) = {
            let l = fed.lease(lease).unwrap();
            (l.lender, l.borrower)
        };
        // Grant-time suspicion fences the lease; the grant never attached.
        let n2 = drain_until(&mut fed, 19.0);
        assert!(
            n2.iter()
                .any(|x| matches!(x, Notice::LeaseFenced { lease: l, .. } if *l == lease)),
            "grant into a live partition must arm its own suspicion: {n2:?}"
        );
        assert!(fed.lease(lease).unwrap().attached_at.is_none());
        assert_eq!(fed.shards()[borrower].core().unwrap().borrowed_procs(), 0);
        assert!(fed.shards()[lender].core().unwrap().lent_procs() > 0);
        assert!(
            fed.partition_drops() > 0,
            "the grant and its retransmits must die at the boundary"
        );
        // At heal the borrower's digest proves it never attached, so the
        // lender returns the escrow without waiting out expires+grace.
        let mut all = drain_until(&mut fed, 30.0);
        all.extend(fed.run_timers(30.0));
        assert!(
            all.iter().any(|x| matches!(
                x,
                Notice::HealRepaired { lease: l, action: HealAction::ReturnEscrow, .. }
                if *l == lease
            )),
            "unattached fenced escrow must return at heal: {all:?}"
        );
        let l = fed.lease(lease).unwrap();
        assert!(l.resolved(), "lease must resolve well before expires+grace");
        assert!(l.attached_at.is_none(), "the late grant redelivery must be refused");
        assert_eq!(fed.shards()[lender].core().unwrap().lent_procs(), 0);
        assert_eq!(fed.shards()[lender].core().unwrap().owned_procs(), 4);
    }

    #[test]
    fn corrupt_down_wal_recovers_prefix_and_quarantines_remainder() {
        let mut fed = Federation::new(FederationConfig::new(
            vec![2],
            vec![TenantConfig::new(64, 1.0, 32)],
        ));
        let n = fed.submit(0, 0, spec("a", 2, 10), 0.0);
        let job = n
            .iter()
            .find_map(|x| match x {
                Notice::Started { job, .. } => Some(*job),
                _ => None,
            })
            .unwrap();
        fed.submit(0, 1, spec("b", 2, 10), 0.5); // queued behind `a`
        fed.finished(0, job, 1.0); // `a` done, `b` starts — more WAL history
        fed.kill_shard(0, 2.0);
        let mid = fed.shards()[0].down_wal().unwrap().len() / 2;
        assert!(fed.chaos_corrupt_down_wal(0, mid), "byte must be in range");
        let (report, _) = fed.recover_shard(0, 3.0);
        let report = report.expect("shard was down");
        assert!(
            report.quarantined.is_some(),
            "interior corruption must be quarantined, not replayed"
        );
        assert!(
            !report.snapshot_match,
            "a salvaged prefix cannot reproduce the crash snapshot"
        );
        // The shard is back in service on the last-good prefix.
        assert!(fed.shards()[0].is_live());
        let n2 = fed.submit(0, 2, spec("c", 1, 1), 4.0);
        assert!(
            n2.iter()
                .any(|x| matches!(x, Notice::Admitted { .. } | Notice::Started { .. })),
            "salvaged shard must keep scheduling: {n2:?}"
        );
    }

    #[test]
    fn shed_when_router_queue_full() {
        let mut fed = Federation::new(FederationConfig::new(
            vec![2],
            vec![TenantConfig::new(2, 1.0, 1)],
        ));
        fed.submit(0, 0, spec("a", 2, 10), 0.0); // admitted (quota 2)
        let n1 = fed.submit(0, 1, spec("b", 2, 10), 0.1); // over quota → queued
        assert!(n1.iter().any(|x| matches!(x, Notice::RouterQueued { .. })));
        let n2 = fed.submit(0, 2, spec("c", 2, 10), 0.2); // queue full → shed
        assert!(
            n2.iter().any(|x| matches!(x, Notice::Shed { tag: 2, .. })),
            "router queue bound must shed: {n2:?}"
        );
        assert_eq!(fed.tenant_shed(0), 1);
    }
}
