//! Discrete-event driver for a whole federation: thousands of jobs across
//! tens of tenants, with scripted shard kills. This is the scale harness —
//! the chaos sweeps in `reshape-testkit` drive the same [`Federation`]
//! API with seeded faults and a ledger oracle after every transition.

use std::collections::BTreeMap;

use reshape_clustersim::EventQueue;
use reshape_core::{Directive, JobSpec, QueuePolicy};
use reshape_telemetry as telemetry;

use crate::bus::BusConfig;
use crate::fed::{BrownoutConfig, Federation, FederationConfig, HealRepairKind, Notice};
use crate::flightrec::DEFAULT_CAP;
use crate::lease::LeaseConfig;
use crate::tenant::TenantConfig;

/// One job of the driven workload.
#[derive(Clone, Debug)]
pub struct FedJob {
    pub tenant: u32,
    pub spec: JobSpec,
    pub arrival: f64,
    /// Ideal processor-seconds per iteration; an iteration on `p`
    /// processors takes `work / p` virtual seconds.
    pub work: f64,
    /// Inject a failure at this checkin ordinal.
    pub fail_at: Option<u32>,
    /// Cancel the job at this checkin ordinal.
    pub cancel_at: Option<u32>,
}

/// Scripted shard crash: kill `shard` once the federation's transition
/// counter reaches `at_transition`, restart it `down_for` later.
#[derive(Clone, Copy, Debug)]
pub struct KillPlan {
    pub at_transition: u64,
    pub shard: usize,
    pub down_for: f64,
}

/// Scripted network partition: the named groups stop hearing each other
/// between `t_start` and `t_heal` (shards in no group form one implicit
/// remainder group). Injected before the run starts, exactly like kills.
#[derive(Clone, Debug)]
pub struct PartitionPlan {
    pub groups: Vec<Vec<usize>>,
    pub t_start: f64,
    pub t_heal: f64,
}

#[derive(Clone, Debug)]
pub struct FedSimConfig {
    pub shard_procs: Vec<usize>,
    pub queue_policy: QueuePolicy,
    pub tenants: Vec<TenantConfig>,
    pub jobs: Vec<FedJob>,
    pub lease: LeaseConfig,
    pub brownout: BrownoutConfig,
    pub bus: BusConfig,
    pub kills: Vec<KillPlan>,
    pub partitions: Vec<PartitionPlan>,
    /// Flight-recorder ring capacity (see [`crate::flightrec`]).
    pub flightrec_cap: usize,
}

impl FedSimConfig {
    pub fn new(shard_procs: Vec<usize>, tenants: Vec<TenantConfig>, jobs: Vec<FedJob>) -> Self {
        FedSimConfig {
            shard_procs,
            queue_policy: QueuePolicy::Fcfs,
            tenants,
            jobs,
            lease: LeaseConfig::default(),
            brownout: BrownoutConfig::default(),
            bus: BusConfig::default(),
            kills: Vec::new(),
            partitions: Vec::new(),
            flightrec_cap: DEFAULT_CAP,
        }
    }
}

#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantReport {
    pub submitted: u64,
    pub admitted: u64,
    pub shed: u64,
    pub finished: u64,
}

/// Per-tenant SLO samples collected during a run, for windowed series.
/// Everything is keyed on virtual time, so two identical runs produce
/// identical series.
#[derive(Clone, Debug, Default)]
pub struct SloSeries {
    /// `(t, tenant, wait)` per admission — the router queueing latency
    /// (0 for immediate admits).
    pub admits: Vec<(f64, u32, f64)>,
    /// `(t, tenant)` per shed submission.
    pub sheds: Vec<(f64, u32)>,
    /// `(t, tenant, router queue depth, quota utilization)` sampled after
    /// every simulation event.
    pub samples: Vec<(f64, u32, usize, f64)>,
}

/// What a federation run did.
#[derive(Clone, Debug, Default)]
pub struct FedReport {
    pub submitted: u64,
    pub admitted: u64,
    pub router_queued: u64,
    pub shed: u64,
    pub finished: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub evict_failed: u64,
    pub leases_granted: u64,
    pub leases_reclaimed: u64,
    pub evict_shrinks: u64,
    pub brownout_engaged: u64,
    pub brownout_released: u64,
    pub shard_kills: u64,
    pub shard_recoveries: u64,
    pub partitions_started: u64,
    pub partitions_healed: u64,
    pub leases_fenced: u64,
    pub heal_repairs: u64,
    /// Heal repairs journaled by the recovery fixup path (fenced borrows
    /// evicted at restart). The three kinds sum to `heal_repairs`.
    pub heal_repairs_recovery_fixup: u64,
    /// Heal repairs journaled by the digest evict-stale-borrow path.
    pub heal_repairs_evict_stale_borrow: u64,
    /// Heal repairs journaled by the digest return-escrow path.
    pub heal_repairs_return_escrow: u64,
    /// Every recovery replayed its WAL to a snapshot equal to the crash
    /// image.
    pub recoveries_matched: bool,
    pub makespan: f64,
    pub transitions: u64,
    pub per_tenant: BTreeMap<u32, TenantReport>,
    /// Raw per-tenant SLO samples (see [`FedReport::publish_metrics`]).
    pub slo: SloSeries,
}

impl FedReport {
    /// Publish the per-tenant SLO series through the telemetry registry:
    /// the admit-latency histogram (whole run) plus `windows` equal time
    /// bins over the makespan of queue depth, quota utilization and shed
    /// rate, labeled `{tenant,window}`. No-op when telemetry is off.
    pub fn publish_metrics(&self, windows: usize) {
        if !telemetry::enabled() || windows == 0 {
            return;
        }
        for &(_, tenant, wait) in &self.slo.admits {
            telemetry::observe_labeled(
                "fed.tenant_admit_latency",
                &[("tenant", &tenant.to_string())],
                wait,
            );
        }
        let span = if self.makespan > 0.0 { self.makespan } else { 1.0 };
        let width = span / windows as f64;
        let tenants: std::collections::BTreeSet<u32> = self
            .slo
            .samples
            .iter()
            .map(|&(_, t, _, _)| t)
            .chain(self.slo.sheds.iter().map(|&(_, t)| t))
            .chain(self.slo.admits.iter().map(|&(_, t, _)| t))
            .collect();
        for tenant in tenants {
            let t_label = tenant.to_string();
            for w in 0..windows {
                let (lo, hi) = (w as f64 * width, (w + 1) as f64 * width);
                // Right-inclusive last window so the makespan sample lands.
                let in_win = |t: f64| t >= lo && (t < hi || (w == windows - 1 && t <= hi));
                let w_label = w.to_string();
                let labels = [("tenant", t_label.as_str()), ("window", w_label.as_str())];
                let (mut n, mut depth, mut util) = (0u64, 0.0, 0.0);
                for &(t, tn, d, u) in &self.slo.samples {
                    if tn == tenant && in_win(t) {
                        n += 1;
                        depth += d as f64;
                        util += u;
                    }
                }
                if n > 0 {
                    telemetry::gauge_labeled("fed.tenant_queue_depth_mean", &labels, depth / n as f64);
                    telemetry::gauge_labeled(
                        "fed.tenant_quota_utilization_mean",
                        &labels,
                        util / n as f64,
                    );
                }
                let sheds = self
                    .slo
                    .sheds
                    .iter()
                    .filter(|&&(t, tn)| tn == tenant && in_win(t))
                    .count();
                telemetry::gauge_labeled("fed.tenant_shed_rate", &labels, sheds as f64 / width);
                let waits: Vec<f64> = self
                    .slo
                    .admits
                    .iter()
                    .filter(|&&(t, tn, _)| tn == tenant && in_win(t))
                    .map(|&(_, _, w)| w)
                    .collect();
                if !waits.is_empty() {
                    telemetry::gauge_labeled(
                        "fed.tenant_admit_latency_mean",
                        &labels,
                        waits.iter().sum::<f64>() / waits.len() as f64,
                    );
                }
            }
        }
    }
}

enum Ev {
    Submit(usize),
    Checkin { shard: usize, job: u64 },
    Recover { shard: usize },
}

struct LiveJob {
    idx: usize,
    procs: usize,
    checkins: u32,
}

/// Run the workload to completion (all terminal, leases resolved, bus
/// drained).
pub fn run(cfg: FedSimConfig) -> FedReport {
    run_with(cfg, |_, _| {})
}

/// Like [`run`], invoking `hook(&federation, now)` after every event —
/// the testkit hangs its ledger oracle here.
pub fn run_with(cfg: FedSimConfig, hook: impl FnMut(&Federation, f64)) -> FedReport {
    run_with_fed(cfg, hook).0
}

/// Like [`run_with`], also returning the drained [`Federation`] so callers
/// can inspect end-of-run state — the testkit dumps its flight recorder
/// when an end-of-run oracle fails.
pub fn run_with_fed(
    cfg: FedSimConfig,
    mut hook: impl FnMut(&Federation, f64),
) -> (FedReport, Federation) {
    let mut fcfg = FederationConfig::new(cfg.shard_procs, cfg.tenants);
    fcfg.queue_policy = cfg.queue_policy;
    fcfg.lease = cfg.lease;
    fcfg.brownout = cfg.brownout;
    fcfg.bus = cfg.bus;
    fcfg.flightrec_cap = cfg.flightrec_cap;
    let mut fed = Federation::new(fcfg);
    for p in &cfg.partitions {
        fed.inject_partition(p.groups.clone(), p.t_start, p.t_heal);
    }

    let mut q: EventQueue<Ev> = EventQueue::new();
    for (i, j) in cfg.jobs.iter().enumerate() {
        q.push(j.arrival, Ev::Submit(i));
    }
    let mut kills = cfg.kills.clone();
    kills.sort_by_key(|k| k.at_transition);
    let mut kill_idx = 0;

    let mut live: BTreeMap<(usize, u64), LiveJob> = BTreeMap::new();
    let mut report = FedReport {
        recoveries_matched: true,
        ..FedReport::default()
    };
    for j in &cfg.jobs {
        report.per_tenant.entry(j.tenant).or_default();
    }

    loop {
        let (t, notices) = if let Some((t, ev)) = q.pop() {
            let notices = match ev {
                Ev::Submit(i) => {
                    report.submitted += 1;
                    report.per_tenant.entry(cfg.jobs[i].tenant).or_default().submitted += 1;
                    fed.submit(cfg.jobs[i].tenant, i as u64, cfg.jobs[i].spec.clone(), t)
                }
                Ev::Checkin { shard, job } => {
                    let Some(lj) = live.get_mut(&(shard, job)) else {
                        continue; // job left the system (evicted, failed)
                    };
                    lj.checkins += 1;
                    let (idx, n) = (lj.idx, lj.checkins);
                    let fj = &cfg.jobs[idx];
                    let jid = reshape_core::JobId(job);
                    if fj.cancel_at == Some(n) {
                        live.remove(&(shard, job));
                        report.cancelled += 1;
                        fed.cancel(shard, jid, t)
                    } else if fj.fail_at == Some(n) {
                        live.remove(&(shard, job));
                        report.failed += 1;
                        fed.failed(shard, jid, "injected fault".into(), t)
                    } else if n as usize >= fj.spec.iterations {
                        live.remove(&(shard, job));
                        report.finished += 1;
                        report.per_tenant.entry(fj.tenant).or_default().finished += 1;
                        fed.finished(shard, jid, t)
                    } else {
                        let procs = live[&(shard, job)].procs.max(1);
                        fed.checkin(shard, jid, fj.work / procs as f64, 0.0, t)
                    }
                }
                Ev::Recover { shard } => {
                    let (rep, notices) = fed.recover_shard(shard, t);
                    if let Some(r) = rep {
                        report.shard_recoveries += 1;
                        report.recoveries_matched &= r.snapshot_match;
                    }
                    notices
                }
            };
            (t, notices)
        } else if let Some(t) = fed.next_timer() {
            // Workload done; drain lease expiries, reclaims, bus traffic.
            (t, fed.run_timers(t))
        } else {
            break;
        };

        report.makespan = report.makespan.max(t);
        for n in &notices {
            match n {
                Notice::Admitted { tenant, tag, .. } => {
                    report.admitted += 1;
                    report.per_tenant.entry(*tenant).or_default().admitted += 1;
                    // Router queueing latency: submissions queue at their
                    // arrival, so admit-time minus arrival is the wait.
                    let wait = cfg
                        .jobs
                        .get(*tag as usize)
                        .map_or(0.0, |j| (t - j.arrival).max(0.0));
                    report.slo.admits.push((t, *tenant, wait));
                }
                Notice::RouterQueued { .. } => report.router_queued += 1,
                Notice::Shed { tenant, .. } => {
                    report.shed += 1;
                    report.per_tenant.entry(*tenant).or_default().shed += 1;
                    report.slo.sheds.push((t, *tenant));
                }
                Notice::Started {
                    shard, job, tag, procs, ..
                } => {
                    let idx = *tag as usize;
                    let e = live.entry((*shard, job.0)).or_insert(LiveJob {
                        idx,
                        procs: *procs,
                        checkins: 0,
                    });
                    e.procs = *procs;
                    // First start schedules the checkin loop.
                    if e.checkins == 0 {
                        let work = cfg.jobs[idx].work;
                        q.push(t + work / (*procs).max(1) as f64, Ev::Checkin {
                            shard: *shard,
                            job: job.0,
                        });
                    }
                }
                Notice::Directive {
                    shard,
                    job,
                    directive,
                } => {
                    if let Some(lj) = live.get_mut(&(*shard, job.0)) {
                        match directive {
                            Directive::Terminate => {
                                live.remove(&(*shard, job.0));
                            }
                            d => {
                                if let Directive::Expand { to, .. } | Directive::Shrink { to } = d {
                                    lj.procs = to.procs();
                                }
                                let procs = live[&(*shard, job.0)].procs.max(1);
                                let work = cfg.jobs[live[&(*shard, job.0)].idx].work;
                                q.push(t + work / procs as f64, Ev::Checkin {
                                    shard: *shard,
                                    job: job.0,
                                });
                            }
                        }
                    }
                }
                Notice::Evicted { shard, job, to, .. } => {
                    if let Some(lj) = live.get_mut(&(*shard, job.0)) {
                        lj.procs = to.procs();
                    }
                }
                Notice::EvictFailed { shard, job, .. }
                    if live.remove(&(*shard, job.0)).is_some() =>
                {
                    report.evict_failed += 1;
                }
                Notice::LeaseGranted { .. } => report.leases_granted += 1,
                Notice::LeaseReclaimed { .. } => report.leases_reclaimed += 1,
                Notice::BrownoutEngaged { .. } => report.brownout_engaged += 1,
                Notice::BrownoutReleased { .. } => report.brownout_released += 1,
                Notice::PartitionStarted { .. } => report.partitions_started += 1,
                Notice::PartitionHealed { .. } => report.partitions_healed += 1,
                Notice::LeaseFenced { .. } => report.leases_fenced += 1,
                Notice::HealRepaired { kind, .. } => {
                    report.heal_repairs += 1;
                    match kind {
                        HealRepairKind::RecoveryFixup => report.heal_repairs_recovery_fixup += 1,
                        HealRepairKind::EvictStaleBorrow => {
                            report.heal_repairs_evict_stale_borrow += 1
                        }
                        HealRepairKind::ReturnEscrow => report.heal_repairs_return_escrow += 1,
                    }
                }
                Notice::ShardKilled { .. } => {}
                _ => {}
            }
            if let Notice::Evicted { .. } = n {
                report.evict_shrinks += 1;
            }
        }

        // Scripted kills keyed off the transition counter.
        while kill_idx < kills.len() && fed.transitions() >= kills[kill_idx].at_transition {
            let k = kills[kill_idx];
            kill_idx += 1;
            if fed.shards()[k.shard].is_live() {
                let (was_live, _) = fed.kill_shard(k.shard, t);
                if was_live {
                    report.shard_kills += 1;
                    q.push(t + k.down_for, Ev::Recover { shard: k.shard });
                }
            }
        }

        // Sample per-tenant SLO state after every event (virtual-time
        // keyed, so identical runs produce identical series).
        for tenant in fed.tenant_ids() {
            report.slo.samples.push((
                t,
                tenant,
                fed.tenant_queue_len(tenant),
                fed.tenant_in_flight(tenant) as f64 / fed.tenant_quota(tenant).max(1) as f64,
            ));
        }

        hook(&fed, t);
    }

    report.transitions = fed.transitions();
    (report, fed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_core::{ProcessorConfig, TopologyPref};

    fn spec(name: &str, procs: usize, iters: usize) -> JobSpec {
        JobSpec::new(
            name,
            TopologyPref::AnyCount {
                min: 1,
                max: 64,
                step: 1,
            },
            ProcessorConfig::linear(procs),
            iters,
        )
    }

    fn small_workload(n: usize, tenants: u32) -> Vec<FedJob> {
        (0..n)
            .map(|i| FedJob {
                tenant: i as u32 % tenants,
                spec: spec(&format!("j{i}"), 1 + i % 4, 2 + i % 3),
                arrival: i as f64 * 0.7,
                work: 4.0,
                fail_at: None,
                cancel_at: None,
            })
            .collect()
    }

    #[test]
    fn multi_tenant_run_completes_and_quiesces() {
        let tenants = vec![
            TenantConfig::new(16, 1.0, 8),
            TenantConfig::new(16, 2.0, 8),
            TenantConfig::new(8, 1.0, 4),
        ];
        let cfg = FedSimConfig::new(vec![6, 6, 4], tenants, small_workload(30, 3));
        let mut quiesced = false;
        let report = run_with(cfg, |fed, _| quiesced = fed.quiesced());
        assert_eq!(report.submitted, 30);
        assert_eq!(report.finished + report.shed, 30);
        assert_eq!(report.admitted, report.finished);
        assert!(quiesced, "federation should drain to quiescence");
        assert_eq!(report.leases_granted, report.leases_reclaimed);
    }

    #[test]
    fn kills_recover_to_equal_snapshots_and_work_completes() {
        let tenants = vec![TenantConfig::new(32, 1.0, 16), TenantConfig::new(32, 1.0, 16)];
        let mut cfg = FedSimConfig::new(vec![4, 4, 4], tenants, small_workload(24, 2));
        cfg.kills = vec![
            KillPlan {
                at_transition: 10,
                shard: 0,
                down_for: 5.0,
            },
            KillPlan {
                at_transition: 30,
                shard: 2,
                down_for: 9.0,
            },
        ];
        let report = run(cfg);
        assert_eq!(report.shard_kills, report.shard_recoveries);
        assert!(report.shard_kills >= 1, "kill plan should fire");
        assert!(report.recoveries_matched, "WAL replay must equal crash snapshot");
        assert_eq!(
            report.finished + report.failed + report.cancelled + report.evict_failed + report.shed,
            report.submitted
        );
        assert_eq!(report.leases_granted, report.leases_reclaimed);
    }

    #[test]
    fn partition_fences_heals_and_work_still_completes() {
        let tenants = vec![TenantConfig::new(32, 1.0, 16)];
        let mk = |name: &str, procs, iters, arrival, work| FedJob {
            tenant: 0,
            spec: spec(name, procs, iters),
            arrival,
            work,
            fail_at: None,
            cancel_at: None,
        };
        // `big` borrows 2 procs from `fill`'s shard, then the pair is
        // severed long enough for suspicion to fence the lease.
        let jobs = vec![mk("fill", 2, 30, 0.0, 4.0), mk("big", 6, 30, 1.0, 6.0)];
        let mut cfg = FedSimConfig::new(vec![4, 4], tenants, jobs);
        cfg.lease.min_spare = 0;
        cfg.lease.term = 60.0;
        cfg.lease.grace = 10.0;
        cfg.lease.suspicion = 5.0;
        cfg.partitions = vec![PartitionPlan {
            groups: vec![vec![0], vec![1]],
            t_start: 5.0,
            t_heal: 25.0,
        }];
        let mut quiesced = false;
        let report = run_with(cfg, |fed, _| quiesced = fed.quiesced());
        assert_eq!(report.partitions_started, 1);
        assert_eq!(report.partitions_healed, 1);
        assert!(report.leases_fenced >= 1, "suspicion must fence: {report:?}");
        assert!(report.heal_repairs >= 1, "heal must repair: {report:?}");
        assert_eq!(report.finished, report.submitted);
        assert_eq!(report.leases_granted, report.leases_reclaimed);
        assert!(quiesced, "federation must drain after the heal");
    }

    #[test]
    fn quota_sheds_excess_load() {
        // One tenant with a tiny queue bound and a quota of 2: the burst
        // overflows the router queue and sheds.
        let tenants = vec![TenantConfig::new(2, 1.0, 2)];
        let jobs: Vec<FedJob> = (0..8)
            .map(|i| FedJob {
                tenant: 0,
                spec: spec(&format!("b{i}"), 2, 20),
                arrival: 0.1,
                work: 50.0,
                fail_at: None,
                cancel_at: None,
            })
            .collect();
        let cfg = FedSimConfig::new(vec![4], tenants, jobs);
        let report = run(cfg);
        assert!(report.shed > 0, "router queue bound must shed");
        assert_eq!(report.finished + report.shed, report.submitted);
    }
}
