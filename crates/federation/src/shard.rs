//! One scheduler shard: a deterministic [`SchedulerCore`] journaling every
//! transition into its own WAL, plus the federation-side bookkeeping that
//! must survive the core's death (global id range, crash image, deferred
//! traffic).

use std::collections::VecDeque;

use reshape_core::{CoreSnapshot, JobId, SchedulerCore};
use reshape_telemetry::TraceCtx;

use crate::lease::LeaseMsg;

/// Traffic addressed to a shard while it was down, replayed in arrival
/// order at recovery.
#[derive(Clone, Debug)]
pub(crate) enum Deferred {
    Checkin {
        job: JobId,
        iter_time: f64,
        redist_time: f64,
    },
    Finished {
        job: JobId,
    },
    Failed {
        job: JobId,
        reason: String,
    },
    Cancel {
        job: JobId,
    },
    Msg {
        from: usize,
        msg: LeaseMsg,
        /// Causal context the frame carried; replayed with the message at
        /// recovery so the trace edge survives the downtime.
        ctx: TraceCtx,
    },
}

// One live core per shard and shards live in a small Vec — boxing the
// core would add a pointer chase to every scheduling call for no win.
#[allow(clippy::large_enum_variant)]
pub(crate) enum ShardState {
    Live(SchedulerCore),
    /// Crashed: all that survives is the WAL text (what a restart would
    /// read off disk) and the snapshot at the instant of death (what the
    /// replay must reproduce field for field).
    Down {
        wal_text: String,
        crash: Box<CoreSnapshot>,
    },
}

/// What [`crate::Federation::recover_shard`] proved about a restart.
#[derive(Clone, Debug)]
pub struct RecoverReport {
    /// Replaying the WAL reproduced the crash-instant snapshot exactly.
    pub snapshot_match: bool,
    /// Records replayed.
    pub wal_records: usize,
    /// The WAL text that was replayed (for failure artifacts).
    pub wal_text: String,
    /// `Some(remainder)` when the WAL's interior was corrupt: replay
    /// recovered the last-good prefix and this damaged suffix was
    /// quarantined instead of replayed (the truncation is the report).
    pub quarantined: Option<String>,
}

pub struct Shard {
    pub(crate) id: usize,
    /// First federation-global processor id owned natively by this shard;
    /// native slot `l` is global `base + l`.
    pub(crate) base: usize,
    pub(crate) native: usize,
    pub(crate) state: ShardState,
    /// Last virtual time the shard processed anything — its heartbeat.
    pub(crate) last_seen: f64,
    /// Brownout latch (hysteresis state); mirrors the core's
    /// `expand_paused` while live.
    pub(crate) brownout: bool,
    pub(crate) deferred: VecDeque<Deferred>,
    pub(crate) kills: u64,
}

impl Shard {
    pub(crate) fn new(id: usize, base: usize, core: SchedulerCore) -> Self {
        let native = core.total_procs();
        Shard {
            id,
            base,
            native,
            state: ShardState::Live(core),
            last_seen: 0.0,
            brownout: false,
            deferred: VecDeque::new(),
            kills: 0,
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// First global processor id of the native range.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Native pool size (global ids `base .. base + native`).
    pub fn native(&self) -> usize {
        self.native
    }

    pub fn is_live(&self) -> bool {
        matches!(self.state, ShardState::Live(_))
    }

    pub fn core(&self) -> Option<&SchedulerCore> {
        match &self.state {
            ShardState::Live(c) => Some(c),
            ShardState::Down { .. } => None,
        }
    }

    pub(crate) fn core_mut(&mut self) -> Option<&mut SchedulerCore> {
        match &mut self.state {
            ShardState::Live(c) => Some(c),
            ShardState::Down { .. } => None,
        }
    }

    /// The frozen snapshot taken at the instant of the crash (down only).
    pub fn crash_snapshot(&self) -> Option<&CoreSnapshot> {
        match &self.state {
            ShardState::Down { crash, .. } => Some(crash),
            ShardState::Live(_) => None,
        }
    }

    /// The WAL a restart would replay (down only).
    pub fn down_wal(&self) -> Option<&str> {
        match &self.state {
            ShardState::Down { wal_text, .. } => Some(wal_text),
            ShardState::Live(_) => None,
        }
    }

    /// Scheduler queue depth — live from the core, down from the frozen
    /// snapshot.
    pub fn queue_len(&self) -> usize {
        match &self.state {
            ShardState::Live(c) => c.queue_len(),
            ShardState::Down { crash, .. } => crash.queue.len(),
        }
    }

    /// Brownout latch: expansion grants paused.
    pub fn brownout(&self) -> bool {
        self.brownout
    }

    /// Times this shard has been killed.
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// Last virtual time the shard processed a transition.
    pub fn last_seen(&self) -> f64 {
        self.last_seen
    }

    /// Map a native local slot to its federation-global id. Panics on
    /// foreign (borrowed) locals — those belong to another shard's range.
    pub fn to_global(&self, local: usize) -> usize {
        assert!(
            local < self.native,
            "slot {local} of shard {} is not native (borrowed slots map through their lease)",
            self.id
        );
        self.base + local
    }
}
