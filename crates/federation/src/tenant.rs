//! Multi-tenant admission state: quotas, fair-share weights, per-tenant
//! router queues.

use std::collections::VecDeque;

use reshape_core::JobSpec;

/// Static admission policy for one tenant.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantConfig {
    /// Hard ceiling on the sum of processor footprints of this tenant's
    /// in-flight (admitted, not yet terminal) jobs. Submissions over the
    /// quota wait in the router queue.
    pub quota_procs: usize,
    /// Fair-share weight: when the router drains its queue it admits from
    /// the tenant minimizing `in_flight_procs / weight`.
    pub weight: f64,
    /// Router-queue depth bound; submissions past it are shed outright.
    pub max_queue: usize,
}

impl TenantConfig {
    pub fn new(quota_procs: usize, weight: f64, max_queue: usize) -> Self {
        assert!(weight > 0.0 && weight.is_finite(), "weight must be positive");
        TenantConfig {
            quota_procs,
            weight,
            max_queue,
        }
    }
}

/// A submission parked at the router (quota exhausted or no live shard).
#[derive(Clone, Debug)]
pub(crate) struct QueuedJob {
    pub tag: u64,
    pub spec: JobSpec,
    pub queued_at: f64,
}

/// Live admission state for one tenant.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub cfg: TenantConfig,
    /// Sum of initial-processor footprints of in-flight jobs.
    pub in_flight_procs: usize,
    pub queued: VecDeque<QueuedJob>,
    pub submitted: u64,
    pub admitted: u64,
    pub shed: u64,
    pub finished: u64,
}

impl TenantState {
    pub fn new(cfg: TenantConfig) -> Self {
        TenantState {
            cfg,
            in_flight_procs: 0,
            queued: VecDeque::new(),
            submitted: 0,
            admitted: 0,
            shed: 0,
            finished: 0,
        }
    }

    /// Fair-share key: processors in flight per unit weight. Lower drains
    /// first.
    pub fn share(&self) -> f64 {
        self.in_flight_procs as f64 / self.cfg.weight
    }
}
