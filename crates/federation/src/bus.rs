//! The lease bus: one sequenced, retransmitting link per directed shard
//! pair, with optional seeded chaos (loss / duplication / reordering) on
//! the wire.
//!
//! The bus owns only protocol state ([`SeqSender`]/[`SeqReceiver`] per
//! link) — it has no clock and no queue. Every call returns the wire
//! events the caller must schedule on its own timer wheel. Endpoints live
//! at the federation layer, *not* inside shards, so they survive shard
//! crashes: frames for a down shard still ack (the federation buffers the
//! payloads for replay at recovery), which keeps retransmission bounded.

use std::collections::BTreeMap;

use reshape_core::ctrl::seq::{Frame, SeqReceiver, SeqSender};
use reshape_core::ctrl::ChaosConfig;
use reshape_core::Backoff;

use crate::lease::TracedMsg;

/// Wire parameters for the lease bus.
#[derive(Clone, Copy, Debug)]
pub struct BusConfig {
    /// One-way frame latency (virtual seconds).
    pub latency: f64,
    /// Retransmit timeout for unacked frames.
    pub rto: f64,
    /// Optional seeded wire chaos; `None` is a perfect wire.
    pub chaos: Option<ChaosConfig>,
    /// Optional exponential retransmit pacing: when set, each link's
    /// [`SeqSender`] follows this [`Backoff`] schedule (keyed by the link
    /// id, so parallel links de-synchronize) instead of the fixed `rto` —
    /// the same shared primitive the resize driver's retry policy uses.
    pub retx_backoff: Option<Backoff>,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            latency: 0.05,
            rto: 1.0,
            chaos: None,
            retx_backoff: None,
        }
    }
}

/// One scripted partition: between `t_start` (inclusive) and `t_heal`
/// (exclusive) every frame and ack crossing group boundaries is silently
/// dropped; traffic within a group is untouched, so in-group sequencing is
/// preserved. Shards not named in any group form one implicit group of
/// their own — severed from every listed group but connected to each other.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionSchedule {
    pub groups: Vec<Vec<usize>>,
    pub t_start: f64,
    pub t_heal: f64,
}

impl PartitionSchedule {
    /// Group index of `shard` (`usize::MAX` = the implicit remainder
    /// group).
    fn group_of(&self, shard: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(&shard))
            .unwrap_or(usize::MAX)
    }

    /// Whether this schedule separates `a` and `b` (ignoring time).
    pub fn cuts(&self, a: usize, b: usize) -> bool {
        a != b && self.group_of(a) != self.group_of(b)
    }

    /// Whether the partition is live at `now` and separates `a` and `b`.
    pub fn severs(&self, now: f64, a: usize, b: usize) -> bool {
        now >= self.t_start && now < self.t_heal && self.cuts(a, b)
    }
}

/// All scripted partitions, queried per frame by the bus and scripted by
/// the sim harness exactly like shard kills.
#[derive(Clone, Debug, Default)]
pub struct PartitionState {
    schedules: Vec<PartitionSchedule>,
}

impl PartitionState {
    /// Register a schedule; returns its id (the index, for timer payloads).
    pub fn inject(&mut self, schedule: PartitionSchedule) -> usize {
        assert!(
            schedule.t_heal > schedule.t_start,
            "partition must heal after it starts"
        );
        self.schedules.push(schedule);
        self.schedules.len() - 1
    }

    /// Whether any live partition separates `a` and `b` at `now`.
    pub fn severed(&self, now: f64, a: usize, b: usize) -> bool {
        self.schedules.iter().any(|s| s.severs(now, a, b))
    }

    pub fn schedules(&self) -> &[PartitionSchedule] {
        &self.schedules
    }
}

/// A wire event for the federation's timer wheel.
#[derive(Clone, Debug)]
pub enum BusEvent {
    /// Frame from `from`'s sender arriving at `to`'s receiver.
    Deliver {
        from: usize,
        to: usize,
        frame: Frame<TracedMsg>,
    },
    /// Cumulative ack for link `from → to` arriving back at `from`.
    AckDeliver { from: usize, to: usize, cum: u64 },
    /// Poll link `from → to` for retransmissions.
    Retransmit { from: usize, to: usize },
}

/// SplitMix64 — deterministic per-link chaos stream.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

struct Link {
    tx: SeqSender<TracedMsg>,
    rx: SeqReceiver<TracedMsg>,
    rng: Rng,
    /// One retransmit poll is outstanding on the wheel (keeps the timer
    /// population at ≤ 1 per link).
    retx_scheduled: bool,
}

/// All directed links between shards.
pub struct Bus {
    cfg: BusConfig,
    links: BTreeMap<(usize, usize), Link>,
    partitions: PartitionState,
    /// Frames and acks silently dropped at partition boundaries.
    partition_drops: u64,
}

impl Bus {
    pub fn new(cfg: BusConfig) -> Self {
        assert!(cfg.rto > 0.0, "bus rto must be positive");
        assert!(cfg.latency >= 0.0, "bus latency must be non-negative");
        Bus {
            cfg,
            links: BTreeMap::new(),
            partitions: PartitionState::default(),
            partition_drops: 0,
        }
    }

    /// Register a scripted partition; returns its id. The bus starts
    /// dropping cross-group traffic at `t_start` with no further calls —
    /// severance is evaluated per frame against the virtual clock.
    pub fn inject_partition(&mut self, schedule: PartitionSchedule) -> usize {
        self.partitions.inject(schedule)
    }

    /// Whether any live partition separates `a` and `b` at `now`.
    pub fn severed(&self, now: f64, a: usize, b: usize) -> bool {
        self.partitions.severed(now, a, b)
    }

    pub fn partitions(&self) -> &PartitionState {
        &self.partitions
    }

    /// Frames and acks dropped at partition boundaries so far.
    pub fn partition_drops(&self) -> u64 {
        self.partition_drops
    }

    fn link(&mut self, from: usize, to: usize) -> &mut Link {
        let cfg = self.cfg;
        self.links.entry((from, to)).or_insert_with(|| Link {
            tx: match cfg.retx_backoff {
                Some(b) => SeqSender::with_backoff(b, (from as u64) << 32 | to as u64),
                None => SeqSender::new(cfg.rto),
            },
            rx: SeqReceiver::new(),
            rng: Rng(cfg.chaos.map(|c| c.seed).unwrap_or(0)
                ^ ((from as u64) << 32 | to as u64)
                ^ 0xB0_5EED),
            retx_scheduled: false,
        })
    }

    /// Chaos-mangle one frame onto the wire: returns 0, 1 or 2 deliveries.
    fn wire_frame(
        &mut self,
        now: f64,
        from: usize,
        to: usize,
        frame: Frame<TracedMsg>,
        out: &mut Vec<(f64, BusEvent)>,
    ) {
        // Partition drops happen before any chaos draw, so runs without a
        // partition schedule consume their RNG streams unperturbed.
        if self.partitions.severed(now, from, to) {
            self.partition_drops += 1;
            return;
        }
        let latency = self.cfg.latency;
        let rto = self.cfg.rto;
        let chaos = self.cfg.chaos;
        let link = self.link(from, to);
        let mut copies = 1;
        if let Some(c) = chaos {
            if link.rng.chance(c.loss) {
                copies = 0;
            } else if link.rng.chance(c.dup) {
                copies = 2;
            }
        }
        for i in 0..copies {
            let mut at = now + latency * (1 + i) as f64;
            if let Some(c) = chaos {
                if link.rng.chance(c.reorder) {
                    // Hold the frame back past the next send window.
                    at += latency * 2.0 + rto * 0.5;
                }
            }
            out.push((
                at,
                BusEvent::Deliver {
                    from,
                    to,
                    frame: frame.clone(),
                },
            ));
        }
    }

    /// Queue `msg` on link `from → to`. Returns wire events to schedule.
    pub fn send(
        &mut self,
        now: f64,
        from: usize,
        to: usize,
        msg: TracedMsg,
    ) -> Vec<(f64, BusEvent)> {
        let frame = self.link(from, to).tx.send(now, msg);
        let mut out = Vec::new();
        self.wire_frame(now, from, to, frame, &mut out);
        let link = self.link(from, to);
        if !link.retx_scheduled {
            if let Some(d) = link.tx.next_deadline() {
                link.retx_scheduled = true;
                out.push((d, BusEvent::Retransmit { from, to }));
            }
        }
        out
    }

    /// A retransmit poll fired for link `from → to`.
    pub fn on_retransmit(&mut self, now: f64, from: usize, to: usize) -> Vec<(f64, BusEvent)> {
        let mut out = Vec::new();
        let frames = {
            let link = self.link(from, to);
            link.retx_scheduled = false;
            link.tx.due(now)
        };
        for f in frames {
            self.wire_frame(now, from, to, f, &mut out);
        }
        let link = self.link(from, to);
        if !link.retx_scheduled {
            if let Some(d) = link.tx.next_deadline() {
                link.retx_scheduled = true;
                out.push((d, BusEvent::Retransmit { from, to }));
            }
        }
        out
    }

    /// A frame arrived at `to`'s receiver for link `from → to`. Returns
    /// the in-order payloads plus the ack's wire events (acks ride the
    /// same chaotic wire; a lost ack is re-elicited by retransmission).
    pub fn on_deliver(
        &mut self,
        now: f64,
        from: usize,
        to: usize,
        frame: Frame<TracedMsg>,
    ) -> (Vec<TracedMsg>, Vec<(f64, BusEvent)>) {
        // A frame that was in flight when the partition started dies at the
        // boundary: no delivery, no ack (retransmission redelivers it after
        // the heal).
        if self.partitions.severed(now, from, to) {
            self.partition_drops += 1;
            return (Vec::new(), Vec::new());
        }
        let latency = self.cfg.latency;
        let chaos = self.cfg.chaos;
        let link = self.link(from, to);
        let (msgs, ack) = link.rx.on_frame(frame);
        let mut evs = Vec::new();
        if let Some(cum) = ack {
            let lost = chaos.map(|c| link.rng.chance(c.loss)).unwrap_or(false);
            if !lost {
                evs.push((now + latency, BusEvent::AckDeliver { from, to, cum }));
            }
        }
        (msgs, evs)
    }

    /// A cumulative ack for link `from → to` arrived back at the sender
    /// (dropped at the boundary if the pair is severed at `now` — the
    /// sender keeps retransmitting into the partition and converges after
    /// the heal).
    pub fn on_ack(&mut self, now: f64, from: usize, to: usize, cum: u64) {
        if self.partitions.severed(now, to, from) {
            self.partition_drops += 1;
            return;
        }
        self.link(from, to).tx.on_ack(cum);
    }

    /// Unacked frames across all links — zero once the bus has drained.
    pub fn pending(&self) -> usize {
        self.links.values().map(|l| l.tx.pending()).sum()
    }
}
