//! The lease bus: one sequenced, retransmitting link per directed shard
//! pair, with optional seeded chaos (loss / duplication / reordering) on
//! the wire.
//!
//! The bus owns only protocol state ([`SeqSender`]/[`SeqReceiver`] per
//! link) — it has no clock and no queue. Every call returns the wire
//! events the caller must schedule on its own timer wheel. Endpoints live
//! at the federation layer, *not* inside shards, so they survive shard
//! crashes: frames for a down shard still ack (the federation buffers the
//! payloads for replay at recovery), which keeps retransmission bounded.

use std::collections::BTreeMap;

use reshape_core::ctrl::seq::{Frame, SeqReceiver, SeqSender};
use reshape_core::ctrl::ChaosConfig;

use crate::lease::LeaseMsg;

/// Wire parameters for the lease bus.
#[derive(Clone, Copy, Debug)]
pub struct BusConfig {
    /// One-way frame latency (virtual seconds).
    pub latency: f64,
    /// Retransmit timeout for unacked frames.
    pub rto: f64,
    /// Optional seeded wire chaos; `None` is a perfect wire.
    pub chaos: Option<ChaosConfig>,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            latency: 0.05,
            rto: 1.0,
            chaos: None,
        }
    }
}

/// A wire event for the federation's timer wheel.
#[derive(Clone, Debug)]
pub enum BusEvent {
    /// Frame from `from`'s sender arriving at `to`'s receiver.
    Deliver {
        from: usize,
        to: usize,
        frame: Frame<LeaseMsg>,
    },
    /// Cumulative ack for link `from → to` arriving back at `from`.
    AckDeliver { from: usize, to: usize, cum: u64 },
    /// Poll link `from → to` for retransmissions.
    Retransmit { from: usize, to: usize },
}

/// SplitMix64 — deterministic per-link chaos stream.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

struct Link {
    tx: SeqSender<LeaseMsg>,
    rx: SeqReceiver<LeaseMsg>,
    rng: Rng,
    /// One retransmit poll is outstanding on the wheel (keeps the timer
    /// population at ≤ 1 per link).
    retx_scheduled: bool,
}

/// All directed links between shards.
pub struct Bus {
    cfg: BusConfig,
    links: BTreeMap<(usize, usize), Link>,
}

impl Bus {
    pub fn new(cfg: BusConfig) -> Self {
        assert!(cfg.rto > 0.0, "bus rto must be positive");
        assert!(cfg.latency >= 0.0, "bus latency must be non-negative");
        Bus {
            cfg,
            links: BTreeMap::new(),
        }
    }

    fn link(&mut self, from: usize, to: usize) -> &mut Link {
        let cfg = self.cfg;
        self.links.entry((from, to)).or_insert_with(|| Link {
            tx: SeqSender::new(cfg.rto),
            rx: SeqReceiver::new(),
            rng: Rng(cfg.chaos.map(|c| c.seed).unwrap_or(0)
                ^ ((from as u64) << 32 | to as u64)
                ^ 0xB0_5EED),
            retx_scheduled: false,
        })
    }

    /// Chaos-mangle one frame onto the wire: returns 0, 1 or 2 deliveries.
    fn wire_frame(
        &mut self,
        now: f64,
        from: usize,
        to: usize,
        frame: Frame<LeaseMsg>,
        out: &mut Vec<(f64, BusEvent)>,
    ) {
        let latency = self.cfg.latency;
        let rto = self.cfg.rto;
        let chaos = self.cfg.chaos;
        let link = self.link(from, to);
        let mut copies = 1;
        if let Some(c) = chaos {
            if link.rng.chance(c.loss) {
                copies = 0;
            } else if link.rng.chance(c.dup) {
                copies = 2;
            }
        }
        for i in 0..copies {
            let mut at = now + latency * (1 + i) as f64;
            if let Some(c) = chaos {
                if link.rng.chance(c.reorder) {
                    // Hold the frame back past the next send window.
                    at += latency * 2.0 + rto * 0.5;
                }
            }
            out.push((
                at,
                BusEvent::Deliver {
                    from,
                    to,
                    frame: frame.clone(),
                },
            ));
        }
    }

    /// Queue `msg` on link `from → to`. Returns wire events to schedule.
    pub fn send(
        &mut self,
        now: f64,
        from: usize,
        to: usize,
        msg: LeaseMsg,
    ) -> Vec<(f64, BusEvent)> {
        let frame = self.link(from, to).tx.send(now, msg);
        let mut out = Vec::new();
        self.wire_frame(now, from, to, frame, &mut out);
        let link = self.link(from, to);
        if !link.retx_scheduled {
            if let Some(d) = link.tx.next_deadline() {
                link.retx_scheduled = true;
                out.push((d, BusEvent::Retransmit { from, to }));
            }
        }
        out
    }

    /// A retransmit poll fired for link `from → to`.
    pub fn on_retransmit(&mut self, now: f64, from: usize, to: usize) -> Vec<(f64, BusEvent)> {
        let mut out = Vec::new();
        let frames = {
            let link = self.link(from, to);
            link.retx_scheduled = false;
            link.tx.due(now)
        };
        for f in frames {
            self.wire_frame(now, from, to, f, &mut out);
        }
        let link = self.link(from, to);
        if !link.retx_scheduled {
            if let Some(d) = link.tx.next_deadline() {
                link.retx_scheduled = true;
                out.push((d, BusEvent::Retransmit { from, to }));
            }
        }
        out
    }

    /// A frame arrived at `to`'s receiver for link `from → to`. Returns
    /// the in-order payloads plus the ack's wire events (acks ride the
    /// same chaotic wire; a lost ack is re-elicited by retransmission).
    pub fn on_deliver(
        &mut self,
        now: f64,
        from: usize,
        to: usize,
        frame: Frame<LeaseMsg>,
    ) -> (Vec<LeaseMsg>, Vec<(f64, BusEvent)>) {
        let latency = self.cfg.latency;
        let chaos = self.cfg.chaos;
        let link = self.link(from, to);
        let (msgs, ack) = link.rx.on_frame(frame);
        let mut evs = Vec::new();
        if let Some(cum) = ack {
            let lost = chaos.map(|c| link.rng.chance(c.loss)).unwrap_or(false);
            if !lost {
                evs.push((now + latency, BusEvent::AckDeliver { from, to, cum }));
            }
        }
        (msgs, evs)
    }

    /// A cumulative ack for link `from → to` arrived back at the sender.
    pub fn on_ack(&mut self, from: usize, to: usize, cum: u64) {
        self.link(from, to).tx.on_ack(cum);
    }

    /// Unacked frames across all links — zero once the bus has drained.
    pub fn pending(&self) -> usize {
        self.links.values().map(|l| l.tx.pending()).sum()
    }
}
