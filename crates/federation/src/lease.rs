//! Lease records and the grant/ack/release control messages.
//!
//! A lease moves processors from an idle *lender* shard to a starved
//! *borrower* under an expiring term. Both sides journal their half into
//! their own WAL (`lend_grant` / `borrow_attach` records in
//! `reshape-core`); the federation keeps the cross-shard protocol state
//! here. The safety argument is time-based and needs no coordination at
//! the deadline:
//!
//! * the borrower evicts at `expires` (timer if live, recovery fixup if it
//!   was down when the lease ran out);
//! * the lender reclaims when it receives `Release`, or unconditionally at
//!   `expires + grace` — strictly after every possible borrower eviction.
//!
//! So the intervals in which each side may schedule on the lease's
//! processors are disjoint by construction, even across crash-restarts of
//! either side.

use reshape_telemetry::TraceCtx;

/// Federation-wide lease protocol parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeaseConfig {
    /// Lease term: the borrower must evict at `granted_at + term`.
    pub term: f64,
    /// Reclaim slack: the lender force-reclaims at `expires + grace` even
    /// if no `Release` ever arrived (crashed or hung borrower).
    pub grace: f64,
    /// Minimum interval between lend attempts for the same
    /// (lender, borrower) pair.
    pub retry_backoff: f64,
    /// Idle processors a donor keeps for itself when lending.
    pub min_spare: usize,
    /// Suspicion timeout: a lender whose link to a borrower stays severed
    /// this long past the cut (or past a grant into the cut) bumps its
    /// fencing epoch and fences every outstanding lease to that borrower.
    pub suspicion: f64,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            term: 60.0,
            grace: 15.0,
            retry_backoff: 5.0,
            min_spare: 1,
            suspicion: 20.0,
        }
    }
}

/// Messages on the shard-to-shard lease bus. Carried inside sequenced
/// frames ([`reshape_core::ctrl::seq`]), so loss/duplication/reordering on
/// the wire are masked.
#[derive(Clone, Debug, PartialEq)]
pub enum LeaseMsg {
    /// Lender → borrower: `global` processors are yours until `expires`.
    /// The lender journaled the escrow *before* this was sent, so a lender
    /// crash between journal and wire still reclaims deterministically.
    /// `lender_epoch` is the lender's fencing epoch at grant time; the
    /// borrower journals it with the attachment and the oracle audits it.
    Grant {
        lease: u64,
        global: Vec<usize>,
        expires: f64,
        lender_epoch: u64,
    },
    /// Borrower → lender: the grant was attached.
    Ack { lease: u64 },
    /// Borrower → lender: the borrower no longer holds any of the lease's
    /// processors (evicted or never attached); reclaim is safe now.
    Release { lease: u64 },
    /// Anti-entropy: a compact ledger digest sent to a formerly-severed
    /// peer at partition heal. `entries` describe every lease the sender
    /// shares with the receiver (and whether the sender still holds an
    /// attachment for it); `hash` is [`digest_hash`] over them, so a
    /// mangled digest is ignored rather than acted on.
    Digest {
        from_epoch: u64,
        hash: u64,
        entries: Vec<DigestEntry>,
    },
}

/// A [`LeaseMsg`] plus the causal trace context it travels with — the
/// in-band parent edge of the federation trace model. The ctx is inert
/// metadata: span ids never feed control flow, carry no entropy, and are
/// all-zero when tracing is off, so frames (and therefore every sequenced
/// delivery, retransmit, and partition drop) are bitwise independent of
/// whether tracing is enabled.
#[derive(Clone, Debug, PartialEq)]
pub struct TracedMsg {
    pub ctx: TraceCtx,
    pub msg: LeaseMsg,
}

impl TracedMsg {
    pub fn new(ctx: TraceCtx, msg: LeaseMsg) -> Self {
        TracedMsg { ctx, msg }
    }
}

impl From<LeaseMsg> for TracedMsg {
    /// Wrap a message with no specific cause (ctx zero: the receiver
    /// parents to the trace head instead).
    fn from(msg: LeaseMsg) -> Self {
        TracedMsg {
            ctx: TraceCtx::default(),
            msg,
        }
    }
}

/// One lease's line in an anti-entropy digest.
#[derive(Clone, Debug, PartialEq)]
pub struct DigestEntry {
    pub lease: u64,
    /// True when the sender is the lender of this lease (its slots are in
    /// escrow there); false when the sender borrows it.
    pub lent: bool,
    /// The lender epoch the lease was minted under.
    pub lender_epoch: u64,
    /// Whether the sender currently holds a live attachment (borrower
    /// side) or live escrow (lender side) for the lease.
    pub attached: bool,
    /// Federation-global processor ids under the lease.
    pub global: Vec<usize>,
}

/// FNV-1a over the digest entries — cheap, deterministic, and sensitive to
/// order, so both sides summarize the same ledger to the same 64 bits.
pub fn digest_hash(entries: &[DigestEntry]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for e in entries {
        eat(e.lease);
        eat(e.lent as u64);
        eat(e.lender_epoch);
        eat(e.attached as u64);
        eat(e.global.len() as u64);
        for &g in &e.global {
            eat(g as u64);
        }
    }
    h
}

/// Observable protocol phase, derived from the two authoritative bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeasePhase {
    /// Granted, not yet acked by the borrower.
    Offered,
    /// Borrower acked (it attached the processors).
    Active,
    /// Borrower is done with it; lender has not reattached yet.
    Released,
    /// Both sides done — the processors are back home.
    Reclaimed,
}

/// One lease's lifetime as the federation sees it.
#[derive(Clone, Debug)]
pub struct Lease {
    pub id: u64,
    pub lender: usize,
    pub borrower: usize,
    /// Federation-global processor ids lent.
    pub global: Vec<usize>,
    pub granted_at: f64,
    pub expires: f64,
    /// Borrower acked the grant at least once.
    pub acked: bool,
    /// Borrower side is finished: it evicted, refused, or released the
    /// lease — no attachment exists or can ever be created.
    pub borrower_done: bool,
    /// Lender side reattached the processors.
    pub reclaimed: bool,
    /// The lender's fencing epoch when the lease was minted.
    pub lender_epoch: u64,
    /// When the borrower attached the grant (first delivery only).
    pub attached_at: Option<f64>,
    /// When the lender fenced the lease (suspicion timeout fired during a
    /// partition): from this point the lease is never honored or extended,
    /// only repaired.
    pub fenced_at: Option<f64>,
}

impl Lease {
    pub fn phase(&self) -> LeasePhase {
        match (self.borrower_done, self.reclaimed, self.acked) {
            (true, true, _) => LeasePhase::Reclaimed,
            (true, false, _) => LeasePhase::Released,
            (false, _, true) => LeasePhase::Active,
            (false, _, false) => LeasePhase::Offered,
        }
    }

    /// Both halves resolved; nothing in flight.
    pub fn resolved(&self) -> bool {
        self.borrower_done && self.reclaimed
    }

    /// The lender fenced this lease (it was minted under an epoch the
    /// lender has since bumped past).
    pub fn fenced(&self) -> bool {
        self.fenced_at.is_some()
    }
}
