//! `fedtop` — a text dashboard pane for the federation control plane,
//! mirroring what `simulate --top` does for a single cluster: per-shard
//! rows (state, epoch, queue, idle/lent/borrowed, brownout), per-tenant
//! rows (quota utilization bar, queue, admitted/shed), and the live lease
//! table. [`frame`] is a pure function of federation state and virtual
//! time, so rendering never perturbs a run; the `fedtop` binary in
//! `reshape-bench` drives it over a scripted scenario.

use std::fmt::Write as _;

use crate::fed::{Federation, HealRepairKind};
use crate::lease::LeasePhase;

/// Width of the quota-utilization bar, in cells.
const BAR: usize = 10;

/// Render one dashboard frame for `fed` at virtual time `t`.
pub fn frame(fed: &Federation, t: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "── federation @ t={t:<9.2} ─────────────────────────────────");
    let _ = writeln!(
        s,
        "{:>5}  {:<5} {:>5} {:>5} {:>5} {:>5} {:>8}  {}",
        "shard", "state", "epoch", "queue", "idle", "lent", "borrowed", "flags"
    );
    for sh in fed.shards() {
        let (state, epoch, idle, lent, borrowed) = match sh.core() {
            Some(core) => (
                "live",
                core.epoch().to_string(),
                core.idle_procs().to_string(),
                core.lent_procs().to_string(),
                core.borrowed_procs().to_string(),
            ),
            None => ("down", "-".into(), "-".into(), "-".into(), "-".into()),
        };
        let mut flags = String::new();
        if sh.brownout() {
            flags.push_str("BROWNOUT ");
        }
        if sh.kills() > 0 {
            let _ = write!(flags, "kills={}", sh.kills());
        }
        let _ = writeln!(
            s,
            "{:>5}  {:<5} {:>5} {:>5} {:>5} {:>5} {:>8}  {}",
            sh.id(),
            state,
            epoch,
            sh.queue_len(),
            idle,
            lent,
            borrowed,
            flags.trim_end()
        );
    }
    let _ = writeln!(
        s,
        "{:>6}  {:>15}  {:<BAR$}  {:>6} {:>8} {:>5}",
        "tenant", "in-flight/quota", "util", "queued", "admitted", "shed"
    );
    for tenant in fed.tenant_ids() {
        let quota = fed.tenant_quota(tenant);
        let used = fed.tenant_in_flight(tenant);
        let util = used as f64 / quota.max(1) as f64;
        let filled = ((util * BAR as f64).round() as usize).min(BAR);
        let bar: String = "█".repeat(filled) + &"░".repeat(BAR - filled);
        let _ = writeln!(
            s,
            "{:>6}  {:>15}  {}  {:>6} {:>8} {:>5}",
            tenant,
            format!("{used}/{quota}"),
            bar,
            fed.tenant_queue_len(tenant),
            fed.tenant_admitted(tenant),
            fed.tenant_shed(tenant),
        );
    }
    let live = fed.live_leases();
    let total = fed.leases().count();
    let _ = writeln!(s, "leases ({live} live / {total} total)");
    if total > 0 {
        let _ = writeln!(
            s,
            "{:>4}  {:<7} {:<9} {:>5} {:>9}  {}",
            "id", "route", "phase", "procs", "expires", "flags"
        );
    }
    for l in fed.leases() {
        let phase = match l.phase() {
            LeasePhase::Offered => "Offered",
            LeasePhase::Active => "Active",
            LeasePhase::Released => "Released",
            LeasePhase::Reclaimed => "Reclaimed",
        };
        let _ = writeln!(
            s,
            "{:>4}  {:<7} {:<9} {:>5} {:>9}  {}",
            l.id,
            format!("{}→{}", l.lender, l.borrower),
            phase,
            l.global.len(),
            format!("t+{:.1}", l.expires - t),
            if l.fenced() { "FENCED" } else { "" },
        );
    }
    let _ = writeln!(
        s,
        "bus: {} unacked · drops: {} · fences: {} · repairs: {} (fixup {} / evict {} / escrow {})",
        fed.bus_pending(),
        fed.partition_drops(),
        fed.fences(),
        fed.heal_repairs(),
        fed.heal_repairs_of(HealRepairKind::RecoveryFixup),
        fed.heal_repairs_of(HealRepairKind::EvictStaleBorrow),
        fed.heal_repairs_of(HealRepairKind::ReturnEscrow),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fed::FederationConfig;
    use crate::tenant::TenantConfig;

    #[test]
    fn frame_renders_all_sections() {
        let fed = Federation::new(FederationConfig::new(
            vec![4, 4],
            vec![TenantConfig::new(8, 1.0, 4)],
        ));
        let f = frame(&fed, 0.0);
        assert!(f.contains("federation @ t=0.00"), "{f}");
        assert!(f.contains("shard"), "{f}");
        assert!(f.contains("tenant"), "{f}");
        assert!(f.contains("leases (0 live / 0 total)"), "{f}");
        assert!(f.contains("bus: 0 unacked"), "{f}");
        // Two shard rows, both live.
        let live_rows = f
            .lines()
            .filter(|l| l.contains(" live ") && !l.starts_with("leases"))
            .count();
        assert_eq!(live_rows, 2, "{f}");
    }
}
