//! # reshape-federation — federated scheduler shards
//!
//! Scales the single [`reshape_core::SchedulerCore`] to a partitioned
//! cluster: the node pool is split across N shards, each running its own
//! deterministic core journaling to its own CRC-checked WAL, fronted by a
//! router that admits jobs by tenant with quotas, fair-share weights and
//! bounded queues. Three mechanisms make the federation robust:
//!
//! * **Leased lending** ([`lease`], [`bus`]) — an idle shard lends
//!   processors to a starved one under an expiring lease. The lender
//!   journals the escrow *before* the grant hits the wire; the borrower
//!   evicts at the expiry and the lender force-reclaims a grace period
//!   later, so a crashed or hung borrower can never strand capacity and
//!   no processor is ever owned by two shards — even across a
//!   crash-restart of either side.
//! * **Per-shard recovery** ([`shard`], [`Federation::recover_shard`]) —
//!   killing any shard at any transition and replaying its WAL restores
//!   its exact pre-crash state (asserted snapshot-for-snapshot), while
//!   surviving shards keep admitting and completing work and traffic for
//!   the dead shard is buffered and replayed in order.
//! * **Overload control** ([`Federation`] brownout) — per-tenant quotas
//!   shed excess load at the router; a shard whose queue depth (or
//!   recovery lag) crosses a threshold stops granting expansions until
//!   the backlog drains below a low-water mark, with hysteresis.

pub mod bus;
pub mod fed;
pub mod lease;
pub mod shard;
pub mod sim;
pub mod tenant;

pub use bus::{Bus, BusConfig, BusEvent};
pub use fed::{BrownoutConfig, BrownoutReason, Federation, FederationConfig, Notice};
pub use lease::{Lease, LeaseConfig, LeaseMsg, LeasePhase};
pub use shard::{RecoverReport, Shard};
pub use sim::{FedJob, FedReport, FedSimConfig, KillPlan, TenantReport};
pub use tenant::TenantConfig;
