//! # reshape-federation — federated scheduler shards
//!
//! Scales the single [`reshape_core::SchedulerCore`] to a partitioned
//! cluster: the node pool is split across N shards, each running its own
//! deterministic core journaling to its own CRC-checked WAL, fronted by a
//! router that admits jobs by tenant with quotas, fair-share weights and
//! bounded queues. Three mechanisms make the federation robust:
//!
//! * **Leased lending** ([`lease`], [`bus`]) — an idle shard lends
//!   processors to a starved one under an expiring lease. The lender
//!   journals the escrow *before* the grant hits the wire; the borrower
//!   evicts at the expiry and the lender force-reclaims a grace period
//!   later, so a crashed or hung borrower can never strand capacity and
//!   no processor is ever owned by two shards — even across a
//!   crash-restart of either side.
//! * **Per-shard recovery** ([`shard`], [`Federation::recover_shard`]) —
//!   killing any shard at any transition and replaying its WAL restores
//!   its exact pre-crash state (asserted snapshot-for-snapshot), while
//!   surviving shards keep admitting and completing work and traffic for
//!   the dead shard is buffered and replayed in order.
//! * **Overload control** ([`Federation`] brownout) — per-tenant quotas
//!   shed excess load at the router; a shard whose queue depth (or
//!   recovery lag) crosses a threshold stops granting expansions until
//!   the backlog drains below a low-water mark, with hysteresis.
//! * **Partition tolerance** ([`bus::PartitionSchedule`], epoch fencing,
//!   anti-entropy heal) — scripted partitions silently drop cross-group
//!   traffic; a lender that cannot reach a borrower past a suspicion
//!   timeout bumps its monotonic, WAL-persisted epoch and *fences* every
//!   lease minted under older epochs (never honored or extended again);
//!   at heal, formerly-severed shards exchange FNV-1a-summarized ledger
//!   digests and reconcile deterministically — stale borrows are evicted
//!   and unattached escrow returned, every repair journaled as an
//!   explicit WAL record.
//!
//! Observability rides along without perturbing any of the above:
//! * **Causal tracing** ([`fed`] + `reshape_telemetry::trace`) — every
//!   lease gets its own trace whose spans follow the full lifecycle
//!   (grant → bus delivery → attach → expiry/fence/reclaim → heal
//!   repair), with parent edges carried *in-band* on bus frames
//!   ([`lease::TracedMsg`]); every shard gets a control-plane trace
//!   (epoch bumps, outages, WAL recovery, digest exchange, brownouts).
//!   Span ids are inert metadata — zero when tracing is off, never fed
//!   into control flow — so chaos sweeps stay bitwise identical with
//!   tracing on.
//! * **Flight recorder** ([`flightrec`]) — a bounded ring of structured
//!   control-plane events with virtual timestamps, dumped as JSONL when
//!   the testkit ledger oracle trips.
//! * **Per-tenant SLO metrics** — admit-latency histograms, queue depth,
//!   shed counts and quota utilization labeled `{tenant}`, shard metrics
//!   labeled `{shard}`, through the OpenMetrics exporter; [`fedtop`]
//!   renders the same state as a live text dashboard.

pub mod bus;
pub mod fed;
pub mod fedtop;
pub mod flightrec;
pub mod lease;
pub mod shard;
pub mod sim;
pub mod tenant;

pub use bus::{Bus, BusConfig, BusEvent, PartitionSchedule, PartitionState};
pub use fed::{
    BrownoutConfig, BrownoutReason, Federation, FederationConfig, HealRepairKind, Notice,
};
pub use flightrec::{FlightEvent, FlightRecorder};
pub use lease::{digest_hash, DigestEntry, Lease, LeaseConfig, LeaseMsg, LeasePhase, TracedMsg};
pub use shard::{RecoverReport, Shard};
pub use sim::{FedJob, FedReport, FedSimConfig, KillPlan, PartitionPlan, SloSeries, TenantReport};
pub use tenant::TenantConfig;
