//! The control-plane flight recorder: a bounded ring of structured
//! federation events (grants, fences, epoch bumps, digests, brownouts,
//! kills, heals) with virtual timestamps.
//!
//! The recorder is always on — it costs one `VecDeque` push per
//! control-plane transition and never touches a clock or RNG, so the
//! chaos sweeps stay bitwise identical with or without anyone reading it.
//! When the ring is full the oldest event is evicted (newest N are kept)
//! and the eviction is counted both locally and in the
//! `fed.flightrec_dropped_total` counter. The testkit dumps the ring as
//! JSONL next to the failing WAL streams whenever the ledger oracle
//! trips, turning "seed 173 failed" into a replayable causal timeline.
//!
//! The JSONL is hand-rolled: the federation crate deliberately has no
//! serde dependency, and the event shape is flat enough that escaping the
//! one free-form field is the whole problem.

use std::collections::VecDeque;

use reshape_telemetry as telemetry;

/// Default ring capacity; overridable via
/// [`crate::FederationConfig::flightrec_cap`].
pub const DEFAULT_CAP: usize = 4096;

/// One structured control-plane event.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Virtual time the event was recorded at.
    pub t: f64,
    /// Event kind (`lease_grant`, `fence`, `epoch_bump`, ...).
    pub kind: &'static str,
    /// The shard the event belongs to, when it has one.
    pub shard: Option<usize>,
    /// The lease the event belongs to, when it has one.
    pub lease: Option<u64>,
    /// Free-form detail (human-oriented; JSON-escaped on dump).
    pub detail: String,
}

/// Bounded ring buffer of [`FlightEvent`]s: newest-N retention.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<FlightEvent>,
    dropped: u64,
}

impl FlightRecorder {
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Record one event, evicting the oldest when the ring is full.
    pub fn record(
        &mut self,
        t: f64,
        kind: &'static str,
        shard: Option<usize>,
        lease: Option<u64>,
        detail: impl Into<String>,
    ) {
        if self.ring.len() >= self.cap {
            self.ring.pop_front();
            self.dropped += 1;
            telemetry::counter("fed.flightrec_dropped_total").add(1);
        }
        self.ring.push_back(FlightEvent {
            t,
            kind,
            shard,
            lease,
            detail: detail.into(),
        });
    }

    /// Render the ring as JSONL, oldest first: one flat object per line
    /// plus a final `{"type":"flightrec_summary",...}` line with the
    /// retention accounting, so a truncated ring is self-describing.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.ring {
            out.push_str("{\"t\":");
            push_f64(&mut out, ev.t);
            out.push_str(",\"kind\":\"");
            push_escaped(&mut out, ev.kind);
            out.push('"');
            if let Some(s) = ev.shard {
                out.push_str(&format!(",\"shard\":{s}"));
            }
            if let Some(l) = ev.lease {
                out.push_str(&format!(",\"lease\":{l}"));
            }
            out.push_str(",\"detail\":\"");
            push_escaped(&mut out, &ev.detail);
            out.push_str("\"}\n");
        }
        out.push_str(&format!(
            "{{\"type\":\"flightrec_summary\",\"retained\":{},\"cap\":{},\"dropped\":{}}}\n",
            self.ring.len(),
            self.cap,
            self.dropped
        ));
        out
    }
}

/// JSON number formatting: finite floats via Debug (round-trippable),
/// non-finite as null (JSON has no Inf/NaN literals).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Minimal JSON string escaping: backslash, quote, and control chars.
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_n_and_counts_drops() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..7 {
            fr.record(i as f64, "tick", Some(i), None, format!("event {i}"));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 4);
        let kept: Vec<usize> = fr.events().map(|e| e.shard.unwrap()).collect();
        assert_eq!(kept, vec![4, 5, 6], "newest N must survive");
    }

    #[test]
    fn dump_is_line_parseable_and_escaped() {
        let mut fr = FlightRecorder::new(8);
        fr.record(1.25, "fence", Some(0), Some(42), "say \"hi\"\nback\\slash");
        fr.record(2.5, "heal", None, None, "plain");
        let dump = fr.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\\\"hi\\\""));
        assert!(lines[0].contains("\\n"));
        assert!(lines[0].contains("\\\\slash"));
        assert!(lines[0].contains("\"lease\":42"));
        assert!(lines[2].contains("\"retained\":2"));
        // Every line is a single balanced JSON object (no raw quotes or
        // control chars escaped incorrectly): check brace/quote parity.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
            let unescaped_quotes = l
                .as_bytes()
                .windows(2)
                .filter(|w| w[1] == b'"' && w[0] != b'\\')
                .count()
                + usize::from(l.starts_with('"'));
            assert_eq!(unescaped_quotes % 2, 0, "unbalanced quotes: {l}");
        }
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let mut fr = FlightRecorder::new(0);
        fr.record(0.0, "a", None, None, "");
        fr.record(1.0, "b", None, None, "");
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.events().next().unwrap().kind, "b");
        assert_eq!(fr.dropped(), 1);
    }
}
