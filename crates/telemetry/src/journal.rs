//! Bounded structured event journal.
//!
//! Subsystems append typed [`Event`]s; the journal keeps the most recent
//! `capacity` of them (dropping the oldest and counting the drops) and can
//! export everything as JSONL. Recording is a no-op while telemetry is off,
//! so long-lived schedulers pay nothing by default.

use std::collections::VecDeque;
use std::sync::OnceLock;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Default retention: enough for every decision of a paper-scale trace.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One structured record. Field types are primitives (job ids as `u64`,
/// processor configurations as strings like `"4x2"`) so that every crate in
/// the stack can emit events without `reshape-telemetry` depending on any
/// of them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Event {
    /// Remap Scheduler verdict at a resize point, with the §3.1 policy
    /// inputs it was derived from.
    ResizeDecision {
        /// Virtual time of the resize point.
        time: f64,
        job: u64,
        /// Processor configuration before the decision, e.g. `"2x4"`.
        from: String,
        /// `"expand"`, `"shrink"`, or `"no_change"`.
        decision: String,
        /// Target configuration when the decision changes the allocation.
        to: Option<String>,
        idle_procs: usize,
        queue_len: usize,
        queue_head_need: Option<usize>,
        last_expansion_improved: Option<bool>,
        iter_time: f64,
        redist_time: f64,
        remaining_iters: usize,
    },
    /// One data redistribution between processor configurations.
    Redistribution {
        time: f64,
        job: u64,
        from: String,
        to: String,
        bytes: u64,
        plan_steps: usize,
        transfers: usize,
        pack_seconds: f64,
        transfer_seconds: f64,
        unpack_seconds: f64,
        total_seconds: f64,
    },
    /// Per-job summary emitted when a job completes.
    JobTurnaround {
        job: u64,
        name: String,
        submitted: f64,
        started: f64,
        finished: f64,
        turnaround: f64,
        compute_seconds: f64,
        redist_seconds: f64,
        expansions: usize,
        shrinks: usize,
        final_procs: usize,
    },
    /// A dynamic spawn was granted fewer processes than requested (fault
    /// injection, or a real launcher shortfall).
    SpawnFault {
        time: f64,
        requested: usize,
        granted: usize,
    },
    /// A recovery action taken by the scheduler after a failure: `action` is
    /// `"reclaim_failed_job"` or `"revert_failed_expansion"`, `freed` the
    /// number of processors returned to the pool.
    Recovery {
        time: f64,
        job: u64,
        action: String,
        freed: usize,
    },
    /// A node died under a running survivable job: the scheduler reclaimed
    /// only the `lost` dead slots and force-shrank the job from
    /// `procs_before` to `procs_after` processors, keeping it running.
    NodeFailed {
        time: f64,
        job: u64,
        lost: usize,
        procs_before: usize,
        procs_after: usize,
    },
    /// The application completed its shrink-to-survivors recovery (buddy
    /// restore + redistribution) and resumed iterating.
    Recovered {
        time: f64,
        job: u64,
        /// Ranks the job resumed with.
        procs: usize,
        /// Wall-clock seconds from detection to resume.
        seconds: f64,
    },
    /// Free-form annotation.
    Note { time: f64, text: String },
}

impl Event {
    /// The `type` tag this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ResizeDecision { .. } => "resize_decision",
            Event::Redistribution { .. } => "redistribution",
            Event::JobTurnaround { .. } => "job_turnaround",
            Event::SpawnFault { .. } => "spawn_fault",
            Event::Recovery { .. } => "recovery",
            Event::NodeFailed { .. } => "node_failed",
            Event::Recovered { .. } => "recovered",
            Event::Note { .. } => "note",
        }
    }
}

struct Inner {
    events: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

fn inner() -> &'static Mutex<Inner> {
    static JOURNAL: OnceLock<Mutex<Inner>> = OnceLock::new();
    JOURNAL.get_or_init(|| {
        Mutex::new(Inner {
            events: VecDeque::new(),
            cap: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

/// The registry counter mirroring [`dropped`]: every silent eviction from
/// the bounded buffer is surfaced as `journal_dropped_total`, so reports
/// and scrapes see the loss even if nobody polls [`dropped`].
fn dropped_counter() -> &'static std::sync::Arc<crate::Counter> {
    static C: OnceLock<std::sync::Arc<crate::Counter>> = OnceLock::new();
    C.get_or_init(|| crate::Registry::global().counter("journal_dropped_total"))
}

/// Append an event (dropping the oldest at capacity). No-op when telemetry
/// is off.
pub fn record(ev: Event) {
    if !crate::enabled() {
        return;
    }
    let mut j = inner().lock();
    if j.events.len() >= j.cap {
        j.events.pop_front();
        j.dropped += 1;
        dropped_counter().incr();
    }
    j.events.push_back(ev);
}

/// Change the retention cap, evicting oldest events if over it.
pub fn set_capacity(cap: usize) {
    let mut j = inner().lock();
    j.cap = cap.max(1);
    while j.events.len() > j.cap {
        j.events.pop_front();
        j.dropped += 1;
        dropped_counter().incr();
    }
}

/// Remove and return every retained event.
pub fn drain() -> Vec<Event> {
    inner().lock().events.drain(..).collect()
}

/// Copy of the retained events, oldest first.
pub fn snapshot_events() -> Vec<Event> {
    inner().lock().events.iter().cloned().collect()
}

/// How many events have been evicted since process start.
pub fn dropped() -> u64 {
    inner().lock().dropped
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(i: usize) -> Event {
        Event::Note {
            time: i as f64,
            text: format!("n{i}"),
        }
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        // The journal is global; this is the only test in the crate that
        // records into it, and it pins the mode first.
        crate::set_mode(crate::Mode::Text);
        set_capacity(4);
        drain();
        let before = dropped();
        // `journal_dropped_total` must advance in lockstep with the local
        // drop tally, so scrapes see the silent loss. Deltas, not
        // absolutes: the registry counter is process-global.
        let counter = crate::Registry::global().counter("journal_dropped_total");
        let c_before = counter.get();
        for i in 0..10 {
            record(note(i));
        }
        let kept = drain();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept.first(), Some(&note(6)));
        assert_eq!(kept.last(), Some(&note(9)));
        assert_eq!(dropped() - before, 6);
        assert_eq!(counter.get() - c_before, 6, "counter must track the tally");
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn jsonl_round_trip_preserves_every_variant() {
        let events = vec![
            Event::ResizeDecision {
                time: 12.5,
                job: 3,
                from: "2x2".into(),
                decision: "expand".into(),
                to: Some("2x4".into()),
                idle_procs: 6,
                queue_len: 1,
                queue_head_need: Some(8),
                last_expansion_improved: Some(true),
                iter_time: 0.8,
                redist_time: 0.05,
                remaining_iters: 17,
            },
            Event::Redistribution {
                time: 13.0,
                job: 3,
                from: "2x2".into(),
                to: "2x4".into(),
                bytes: 1 << 20,
                plan_steps: 4,
                transfers: 8,
                pack_seconds: 0.001,
                transfer_seconds: 0.04,
                unpack_seconds: 0.001,
                total_seconds: 0.042,
            },
            Event::JobTurnaround {
                job: 3,
                name: "lu-8000".into(),
                submitted: 0.0,
                started: 1.0,
                finished: 90.0,
                turnaround: 90.0,
                compute_seconds: 80.0,
                redist_seconds: 4.0,
                expansions: 2,
                shrinks: 1,
                final_procs: 8,
            },
            Event::SpawnFault {
                time: 42.0,
                requested: 4,
                granted: 1,
            },
            Event::Recovery {
                time: 43.0,
                job: 3,
                action: "revert_failed_expansion".into(),
                freed: 4,
            },
            Event::NodeFailed {
                time: 44.0,
                job: 3,
                lost: 2,
                procs_before: 8,
                procs_after: 6,
            },
            Event::Recovered {
                time: 44.5,
                job: 3,
                procs: 6,
                seconds: 0.31,
            },
            Event::Note {
                time: 99.0,
                text: "done".into(),
            },
        ];
        // One JSON object per line, each tagged with `type`.
        let jsonl: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let back: Vec<Event> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, events);
        for l in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(l).unwrap();
            assert!(v.get("type").is_some(), "line missing type tag: {l}");
        }
        assert_eq!(events[0].kind(), "resize_decision");
        assert_eq!(events[1].kind(), "redistribution");
        assert_eq!(events[2].kind(), "job_turnaround");
        assert_eq!(events[3].kind(), "spawn_fault");
        assert_eq!(events[4].kind(), "recovery");
        assert_eq!(events[5].kind(), "node_failed");
        assert_eq!(events[6].kind(), "recovered");
        assert_eq!(events[7].kind(), "note");
    }
}
