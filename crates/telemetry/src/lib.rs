//! # reshape-telemetry — metrics, span timers, and a structured journal
//!
//! The paper's Performance Profiler and Remap Scheduler (§3.1) decide from
//! measured iteration times and redistribution costs; this crate makes
//! those measurements observable at runtime across the whole stack. It
//! provides:
//!
//! - a process-wide [`Registry`] of named [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s with quantile summaries,
//! - RAII [`Span`] timers for wall-clock latencies,
//! - a bounded structured [`Event`] journal (resize decisions with their
//!   policy inputs, redistributions with per-phase timings, per-job
//!   turnaround summaries) exportable as JSONL.
//!
//! Everything is controlled by three environment variables:
//!
//! - `RESHAPE_TELEMETRY` — `off` (default), `text`, `json`, or `metrics`;
//! - `RESHAPE_TELEMETRY_PATH` — where [`flush`] writes its report
//!   (stderr when unset);
//! - `RESHAPE_METRICS` — a path (conventionally `*.prom`); when set,
//!   [`flush`] additionally writes the registry in the OpenMetrics text
//!   exposition format (see [`render_openmetrics`]). Setting it alone
//!   implies `metrics` mode, so recording turns on.
//!
//! With telemetry off, every recording call is a single relaxed atomic
//! load and a branch — cheap enough to leave in the mpisim send path.

pub mod critpath;
mod histogram;
mod journal;
mod metrics;
pub mod openmetrics;
mod span;
pub mod trace;

pub use histogram::{
    bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, MergeError, BUCKETS, MIN_BOUND,
};
pub use journal::{
    drain as drain_journal, dropped as journal_dropped, record, set_capacity as set_journal_capacity,
    snapshot_events, Event, DEFAULT_CAPACITY,
};
pub use metrics::{Counter, Gauge, Registry, RegistrySnapshot};
pub use openmetrics::{encode_labels, escape_label_value, render_openmetrics, sanitize_name};
pub use span::Span;
pub use trace::{SpanRecord, TraceCtx};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Telemetry output mode, from `RESHAPE_TELEMETRY`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// No recording, no output (the default).
    Off,
    /// Record everything; [`flush`] emits a human-readable report.
    Text,
    /// Record everything; [`flush`] emits JSONL.
    Json,
    /// Record everything; [`flush`] emits only the OpenMetrics file named
    /// by `RESHAPE_METRICS` (no text/JSONL body). Implied when
    /// `RESHAPE_METRICS` is set without `RESHAPE_TELEMETRY`.
    Metrics,
}

static MODE: AtomicU8 = AtomicU8::new(0);
static MODE_INIT: Once = Once::new();

fn init_mode_from_env() {
    MODE_INIT.call_once(|| {
        let m = match std::env::var("RESHAPE_TELEMETRY").ok().as_deref() {
            Some("text") => 1,
            Some("json") => 2,
            Some("metrics") => 3,
            // A metrics sink path alone is enough to opt in to recording.
            _ if metrics_path().is_some() => 3,
            _ => 0,
        };
        MODE.store(m, Ordering::Relaxed);
    });
}

/// Current mode; reads `RESHAPE_TELEMETRY` once on first call.
pub fn mode() -> Mode {
    init_mode_from_env();
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Text,
        2 => Mode::Json,
        3 => Mode::Metrics,
        _ => Mode::Off,
    }
}

/// Override the mode programmatically (tests, benches, embedders).
pub fn set_mode(m: Mode) {
    init_mode_from_env();
    let v = match m {
        Mode::Off => 0,
        Mode::Text => 1,
        Mode::Json => 2,
        Mode::Metrics => 3,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Whether anything should be recorded. Inlined fast path for hot sites.
#[inline]
pub fn enabled() -> bool {
    mode() != Mode::Off
}

/// Handle to a named counter in the global registry (not gated — useful
/// for caching handles or for always-on bookkeeping).
pub fn counter(name: &str) -> std::sync::Arc<Counter> {
    Registry::global().counter(name)
}

/// Add to a named counter when telemetry is enabled.
pub fn incr(name: &str, n: u64) {
    if enabled() {
        Registry::global().counter(name).add(n);
    }
}

/// Set a named gauge when telemetry is enabled.
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        Registry::global().gauge(name).set(v);
    }
}

/// Set a labeled gauge when telemetry is enabled. The label set is encoded
/// into the registry key (`name{k="v",...}`, values escaped), which the
/// OpenMetrics renderer decodes back into one metric family per `name`.
pub fn gauge_labeled(name: &str, labels: &[(&str, &str)], v: f64) {
    if enabled() {
        let key = format!("{name}{}", encode_labels(labels));
        Registry::global().gauge(&key).set(v);
    }
}

/// Add to a labeled counter when telemetry is enabled. Label encoding as
/// in [`gauge_labeled`].
pub fn incr_labeled(name: &str, labels: &[(&str, &str)], n: u64) {
    if enabled() {
        let key = format!("{name}{}", encode_labels(labels));
        Registry::global().counter(&key).add(n);
    }
}

/// Record into a named histogram when telemetry is enabled.
pub fn observe(name: &str, v: f64) {
    if enabled() {
        Registry::global().histogram(name).record(v);
    }
}

/// Record into a labeled histogram when telemetry is enabled. Label
/// encoding as in [`gauge_labeled`].
pub fn observe_labeled(name: &str, labels: &[(&str, &str)], v: f64) {
    if enabled() {
        let key = format!("{name}{}", encode_labels(labels));
        Registry::global().histogram(&key).record(v);
    }
}

/// Start a wall-clock span recording into histogram `name` when stopped.
pub fn span(name: &'static str) -> Span {
    Span::new(name)
}

/// Render journal + metrics as JSONL: one tagged object per journal event,
/// then a final `{"type":"metrics",...}` line with the registry snapshot.
pub fn json_lines() -> String {
    let mut out = String::new();
    for ev in snapshot_events() {
        out.push_str(&serde_json::to_string(&ev).expect("telemetry events serialize"));
        out.push('\n');
    }
    let tail = serde_json::json!({
        "type": "metrics",
        "journal_dropped": journal_dropped(),
        "metrics": Registry::global().snapshot(),
    });
    out.push_str(&tail.to_string());
    out.push('\n');
    out
}

/// Render a human-readable report of every instrument and journal tallies.
pub fn text_report() -> String {
    use std::fmt::Write as _;
    let snap = Registry::global().snapshot();
    let mut s = String::from("== reshape telemetry ==\n");
    if !snap.counters.is_empty() {
        s.push_str("-- counters --\n");
        for (k, v) in &snap.counters {
            let _ = writeln!(s, "{k:<44} {v}");
        }
    }
    if !snap.gauges.is_empty() {
        s.push_str("-- gauges --\n");
        for (k, v) in &snap.gauges {
            let _ = writeln!(s, "{k:<44} {v}");
        }
    }
    if !snap.histograms.is_empty() {
        s.push_str("-- histograms --\n");
        for (k, v) in &snap.histograms {
            let _ = writeln!(s, "{k:<44} {}", v.summary());
        }
    }
    let events = snapshot_events();
    let mut tally: std::collections::BTreeMap<&'static str, usize> = std::collections::BTreeMap::new();
    for ev in &events {
        *tally.entry(ev.kind()).or_insert(0) += 1;
    }
    let _ = writeln!(
        s,
        "-- journal -- ({} events retained, {} dropped)",
        events.len(),
        journal_dropped()
    );
    for (k, v) in &tally {
        let _ = writeln!(s, "{k:<44} {v}");
    }
    s
}

/// Write the report for the current [`mode`] to `RESHAPE_TELEMETRY_PATH`
/// (truncating), or to stderr when the variable is unset. No-op when off.
/// Non-destructive: the journal and registry are left intact. Also drains
/// and exports collected trace spans when `RESHAPE_TRACE` is set (that
/// part runs regardless of the telemetry mode), and warns when the
/// bounded journal silently evicted events.
pub fn flush() {
    trace::flush();
    if mode() == Mode::Off {
        return;
    }
    flush_openmetrics();
    let body = match mode() {
        Mode::Off | Mode::Metrics => return,
        Mode::Json => json_lines(),
        Mode::Text => text_report(),
    };
    let dropped = journal_dropped();
    if dropped > 0 {
        eprintln!(
            "reshape-telemetry: warning: {dropped} journal events were dropped by the \
             bounded buffer (journal_dropped_total) — raise the cap with \
             set_journal_capacity to keep them"
        );
    }
    match std::env::var("RESHAPE_TELEMETRY_PATH").ok().filter(|p| !p.is_empty()) {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("reshape-telemetry: cannot write {path}: {e}");
            }
        }
        None => eprint!("{body}"),
    }
}

fn metrics_path() -> Option<String> {
    std::env::var("RESHAPE_METRICS").ok().filter(|p| !p.is_empty())
}

/// Write the registry in OpenMetrics text format to `RESHAPE_METRICS`, if
/// that variable names a path. Called from [`flush`]; also callable
/// directly by embedders that manage their own flush cadence.
pub fn flush_openmetrics() {
    let Some(path) = metrics_path() else {
        return;
    };
    let body = render_openmetrics(&Registry::global().snapshot());
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("reshape-telemetry: cannot write {path}: {e}");
    }
}
