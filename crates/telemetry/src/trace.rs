//! Causal tracing: trace/span IDs, per-thread span buffers, and
//! Chrome-trace-event export (Perfetto-loadable).
//!
//! A *trace* is the causal history of one job, identified by the job id
//! minted at submission (trace 0 is scheduler infrastructure: WAL appends,
//! recovery rounds). A *span* is one timed operation inside a trace —
//! queue wait, a §3.1 remap decision, a spawn + commit handshake, a
//! redistribution phase, an iteration of compute — with an explicit
//! `parent` edge to the span that caused it. Together the spans of a trace
//! form a DAG rooted at the job's submission:
//!
//! ```text
//! job ─┬─ queue_wait
//!      ├─ iter ── decision:expand ── spawn ── redist ─┬─ redist_pack
//!      │                                              ├─ redist_transfer
//!      │                                              └─ redist_unpack
//!      └─ ... resumed compute parented under the redistribution ...
//! ```
//!
//! Timestamps are whatever clock the recording site lives on: the
//! deterministic simulation clock in `clustersim` paths, the mpisim
//! virtual clock in driver/rank paths — never wall-clock in either.
//!
//! Recording is off unless `RESHAPE_TRACE` is set (its value is the export
//! path) or [`set_enabled`] is called. Each thread appends to a private
//! buffer without taking a lock; buffers migrate to the global sink when
//! they fill and when the thread exits, and [`drain_spans`] merges
//! everything. [`chrome_trace_json`] renders the merged spans as a Chrome
//! trace-event file: open it at <https://ui.perfetto.dev> to see every
//! job as a process row with its resize chains laid out causally.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// How many spans a thread buffers before migrating them to the sink.
const LOCAL_BUF: usize = 128;

/// A causal reference carried through control-plane messages: which trace
/// (job) the sender is acting for and which span caused the message.
/// `parent == 0` means "no specific cause" (the receiver parents to the
/// trace head instead).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    pub trace: u64,
    pub parent: u64,
}

/// One completed span. `parent == 0` marks a root.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub trace: u64,
    pub id: u64,
    pub parent: u64,
    pub name: String,
    /// Category used by the critical-path analyzer (`compute`,
    /// `queue_wait`, `spawn`, `redist*`, `recovery`/`replay`, ...).
    pub cat: String,
    /// Display track (Perfetto thread): `scheduler`, `sim`, `rank3`, ...
    pub track: String,
    pub start: f64,
    pub end: f64,
}

struct OpenSpan {
    trace: u64,
    parent: u64,
    name: String,
    cat: String,
    track: String,
    start: f64,
}

/// High bit tagging a federation *lease* trace: `LEASE_TRACE_BIT | lease_id`.
///
/// Job traces use the raw job id (small integers) and trace 0 is scheduler
/// infrastructure, so the two federation schemes claim disjoint high bits:
/// leases bit 62, shard control planes bit 61. `trace_check` keys its
/// federation validations off these tags without needing the federation
/// crate.
pub const LEASE_TRACE_BIT: u64 = 1 << 62;

/// High bit tagging a federation *shard control-plane* trace:
/// `SHARD_TRACE_BIT | shard_id`.
pub const SHARD_TRACE_BIT: u64 = 1 << 61;

/// The trace id of federation lease `lease_id`.
pub fn lease_trace(lease_id: u64) -> u64 {
    LEASE_TRACE_BIT | lease_id
}

/// The trace id of federation shard `shard_id`'s control plane.
pub fn shard_trace(shard_id: usize) -> u64 {
    SHARD_TRACE_BIT | shard_id as u64
}

/// Whether `trace` is a federation lease trace; see [`lease_trace`].
pub fn is_lease_trace(trace: u64) -> bool {
    trace & LEASE_TRACE_BIT != 0
}

/// Whether `trace` is a federation shard trace; see [`shard_trace`].
pub fn is_shard_trace(trace: u64) -> bool {
    trace & SHARD_TRACE_BIT != 0 && !is_lease_trace(trace)
}

/// The lease id behind a [`lease_trace`] id.
pub fn lease_of(trace: u64) -> u64 {
    trace & !LEASE_TRACE_BIT
}

/// The shard id behind a [`shard_trace`] id.
pub fn shard_of(trace: u64) -> usize {
    (trace & !SHARD_TRACE_BIT) as usize
}

// 0 = uninitialized, 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn sink() -> &'static Mutex<Vec<SpanRecord>> {
    static SINK: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn open_table() -> &'static Mutex<HashMap<u64, OpenSpan>> {
    static OPEN: OnceLock<Mutex<HashMap<u64, OpenSpan>>> = OnceLock::new();
    OPEN.get_or_init(|| Mutex::new(HashMap::new()))
}

fn heads() -> &'static Mutex<HashMap<u64, u64>> {
    static HEADS: OnceLock<Mutex<HashMap<u64, u64>>> = OnceLock::new();
    HEADS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Per-thread span buffer: lock-free appends, migrated to the sink when
/// full and on thread exit (the `Drop` impl).
struct LocalBuf(Vec<SpanRecord>);

impl Drop for LocalBuf {
    fn drop(&mut self) {
        if !self.0.is_empty() {
            sink().lock().append(&mut self.0);
        }
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = const { RefCell::new(LocalBuf(Vec::new())) };
    static CURRENT: Cell<TraceCtx> = const { Cell::new(TraceCtx { trace: 0, parent: 0 }) };
}

/// Whether spans are being recorded. Reads `RESHAPE_TRACE` once.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("RESHAPE_TRACE")
                .map(|v| !v.is_empty())
                .unwrap_or(false);
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatic override of [`enabled`] (tests, embedders).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clear all collected state (sink, open spans, heads, this thread's
/// buffer). Test isolation helper.
pub fn reset() {
    sink().lock().clear();
    open_table().lock().clear();
    heads().lock().clear();
    BUF.with(|b| b.borrow_mut().0.clear());
    CURRENT.with(|c| c.set(TraceCtx::default()));
}

fn push(rec: SpanRecord) {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.0.push(rec);
        if b.0.len() >= LOCAL_BUF {
            sink().lock().append(&mut b.0);
        }
    });
}

/// Record a completed span; returns its id (0 when tracing is off).
pub fn complete(
    trace: u64,
    parent: u64,
    name: impl Into<String>,
    cat: &str,
    track: &str,
    start: f64,
    end: f64,
) -> u64 {
    if !enabled() {
        return 0;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    push(SpanRecord {
        trace,
        id,
        parent,
        name: name.into(),
        cat: cat.to_string(),
        track: track.to_string(),
        start,
        end: end.max(start),
    });
    id
}

/// Open a span whose end is not yet known; close it with [`end`]. Spans
/// still open at [`drain_spans`] are closed at the latest time observed.
pub fn begin(
    trace: u64,
    parent: u64,
    name: impl Into<String>,
    cat: &str,
    track: &str,
    start: f64,
) -> u64 {
    if !enabled() {
        return 0;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    open_table().lock().insert(
        id,
        OpenSpan {
            trace,
            parent,
            name: name.into(),
            cat: cat.to_string(),
            track: track.to_string(),
            start,
        },
    );
    id
}

/// Close a span opened by [`begin`]. No-op for id 0 or an already-closed
/// span (ending is idempotent).
pub fn end(id: u64, t: f64) {
    if id == 0 {
        return;
    }
    let Some(o) = open_table().lock().remove(&id) else {
        return;
    };
    push(SpanRecord {
        trace: o.trace,
        id,
        parent: o.parent,
        name: o.name,
        cat: o.cat,
        track: o.track,
        start: o.start,
        end: t.max(o.start),
    });
}

/// Remember the most recent span of a trace — the implicit parent for the
/// next operation when no explicit [`TraceCtx`] travelled with a message.
pub fn set_head(trace: u64, span: u64) {
    if enabled() && span != 0 {
        heads().lock().insert(trace, span);
    }
}

/// The trace's most recent span (0 when unknown).
pub fn head(trace: u64) -> u64 {
    if !enabled() {
        return 0;
    }
    heads().lock().get(&trace).copied().unwrap_or(0)
}

/// This thread's ambient causal context (what a control-plane message
/// sent right now should carry).
pub fn current() -> TraceCtx {
    CURRENT.with(|c| c.get())
}

/// Set this thread's ambient causal context.
pub fn set_current(ctx: TraceCtx) {
    CURRENT.with(|c| c.set(ctx));
}

/// RAII scope for [`set_current`]: restores the previous context on drop.
pub struct CtxGuard(TraceCtx);

impl Drop for CtxGuard {
    fn drop(&mut self) {
        set_current(self.0);
    }
}

/// Set the ambient context for a lexical scope.
pub fn ctx_guard(ctx: TraceCtx) -> CtxGuard {
    let prev = current();
    set_current(ctx);
    CtxGuard(prev)
}

/// Merge every buffer and drain all collected spans, deterministically
/// ordered by `(start, id)`. Spans still open are closed at the latest
/// end/start time observed anywhere. Threads that recorded spans must
/// have exited (their buffers migrate on exit) — true for mpisim ranks,
/// which are joined before any flush.
pub fn drain_spans() -> Vec<SpanRecord> {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        if !b.0.is_empty() {
            sink().lock().append(&mut b.0);
        }
    });
    let mut spans: Vec<SpanRecord> = std::mem::take(&mut *sink().lock());
    let t_max = spans
        .iter()
        .map(|s| s.end)
        .chain(open_table().lock().values().map(|o| o.start))
        .fold(0.0f64, f64::max);
    for (id, o) in open_table().lock().drain() {
        spans.push(SpanRecord {
            trace: o.trace,
            id,
            parent: o.parent,
            name: o.name,
            cat: o.cat,
            track: o.track,
            start: o.start,
            end: t_max.max(o.start),
        });
    }
    heads().lock().clear();
    spans.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    spans
}

/// Render spans as a Chrome trace-event JSON document (Perfetto-loadable).
///
/// Each trace becomes a process (`pid` = trace id, named after its root
/// span), each distinct `track` within it a thread. Complete (`ph:"X"`)
/// events carry `ts`/`dur` in microseconds of the recording clock, and
/// `args` preserves the causal ids (`trace`, `span`, `parent`) so the
/// DAG round-trips through [`parse_chrome_trace`].
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    use serde_json::json;
    let mut proc_names: BTreeMap<u64, String> = BTreeMap::new();
    proc_names.insert(0, "scheduler".to_string());
    for s in spans {
        if s.parent == 0 && s.cat == "job" {
            proc_names.insert(s.trace, format!("job {} [{}]", s.trace, s.name));
        } else if is_lease_trace(s.trace) {
            proc_names
                .entry(s.trace)
                .or_insert_with(|| format!("lease {}", lease_of(s.trace)));
        } else if is_shard_trace(s.trace) {
            proc_names
                .entry(s.trace)
                .or_insert_with(|| format!("shard {} control", shard_of(s.trace)));
        } else {
            proc_names
                .entry(s.trace)
                .or_insert_with(|| format!("trace {}", s.trace));
        }
    }
    let mut tids: BTreeMap<(u64, String), u64> = BTreeMap::new();
    for s in spans {
        let next = tids
            .iter()
            .filter(|((t, _), _)| *t == s.trace)
            .count() as u64
            + 1;
        tids.entry((s.trace, s.track.clone())).or_insert(next);
    }
    let mut events = Vec::new();
    for (pid, name) in &proc_names {
        events.push(json!({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0u64,
            "args": json!({"name": name}),
        }));
    }
    for ((pid, track), tid) in &tids {
        events.push(json!({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": json!({"name": track}),
        }));
    }
    for s in spans {
        let tid = tids[&(s.trace, s.track.clone())];
        events.push(json!({
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "ts": s.start * 1e6,
            "dur": (s.end - s.start).max(0.0) * 1e6,
            "pid": s.trace,
            "tid": tid,
            "args": json!({
                "trace": s.trace, "span": s.id, "parent": s.parent, "track": s.track,
            }),
        }));
    }
    serde_json::to_string_pretty(&json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }))
    .expect("trace events serialize")
}

/// Re-parse a document produced by [`chrome_trace_json`] back into span
/// records (metadata events are skipped). Used by the round-trip test and
/// the `trace_check` CI bin.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<SpanRecord>, String> {
    let doc: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut out = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        if ph == "M" {
            continue;
        }
        if ph != "X" {
            return Err(format!("event {i}: unexpected phase {ph:?}"));
        }
        let get_f = |k: &str| {
            ev.get(k)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("event {i}: missing numeric {k}"))
        };
        let args = ev
            .get("args")
            .ok_or_else(|| format!("event {i}: missing args"))?;
        let get_id = |k: &str| {
            args.get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("event {i}: missing args.{k}"))
        };
        let ts = get_f("ts")?;
        let dur = get_f("dur")?;
        if dur < 0.0 {
            return Err(format!("event {i}: negative duration {dur}"));
        }
        out.push(SpanRecord {
            trace: get_id("trace")?,
            id: get_id("span")?,
            parent: get_id("parent")?,
            name: ev
                .get("name")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            cat: ev
                .get("cat")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            track: args
                .get("track")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            start: ts / 1e6,
            end: (ts + dur) / 1e6,
        });
    }
    Ok(out)
}

/// Structural validation: unique non-zero span ids, every parent edge
/// resolves (or is 0), no span ends before it starts, and traces with a
/// root have their spans inside a single connected DAG. Returns a list of
/// violations (empty = valid).
pub fn validate(spans: &[SpanRecord]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut ids = std::collections::HashSet::new();
    for s in spans {
        if s.id == 0 {
            problems.push(format!("span {:?} has id 0", s.name));
        }
        if !ids.insert(s.id) {
            problems.push(format!("duplicate span id {}", s.id));
        }
        if s.end < s.start {
            problems.push(format!(
                "span {} ({}) ends before it starts: {} < {}",
                s.id, s.name, s.end, s.start
            ));
        }
    }
    for s in spans {
        if s.parent != 0 && !ids.contains(&s.parent) {
            problems.push(format!(
                "span {} ({}) has unknown parent {}",
                s.id, s.name, s.parent
            ));
        }
    }
    problems
}

/// Write the Chrome trace (and a `<path>.critpath.json` sidecar with the
/// per-job critical-path attribution) to the `RESHAPE_TRACE` path. No-op
/// when the variable is unset/empty or there is nothing to write.
pub fn write_trace_files(spans: &[SpanRecord]) {
    if spans.is_empty() {
        return;
    }
    let Some(path) = std::env::var("RESHAPE_TRACE").ok().filter(|p| !p.is_empty()) else {
        return;
    };
    if let Err(e) = std::fs::write(&path, chrome_trace_json(spans)) {
        eprintln!("reshape-trace: cannot write {path}: {e}");
        return;
    }
    let crit = crate::critpath::analyze(spans);
    let sidecar = format!("{path}.critpath.json");
    let body = serde_json::to_string_pretty(&crit).expect("critpath serializes");
    if let Err(e) = std::fs::write(&sidecar, body) {
        eprintln!("reshape-trace: cannot write {sidecar}: {e}");
    }
}

/// Drain all spans and export them per [`write_trace_files`]. Called by
/// [`crate::flush`]; safe to call repeatedly (later calls see no spans).
pub fn flush() {
    if !enabled() {
        return;
    }
    let spans = drain_spans();
    write_trace_files(&spans);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global collector is shared across the test binary's threads;
    // serialize the tests that use it.
    fn lock() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn federation_trace_id_scheme_is_disjoint_and_invertible() {
        for lease in [0u64, 1, 42, u32::MAX as u64] {
            let t = lease_trace(lease);
            assert!(is_lease_trace(t));
            assert!(!is_shard_trace(t));
            assert_eq!(lease_of(t), lease);
        }
        for shard in [0usize, 1, 7, 4095] {
            let t = shard_trace(shard);
            assert!(is_shard_trace(t));
            assert!(!is_lease_trace(t));
            assert_eq!(shard_of(t), shard);
        }
        // Job traces (small ids) and trace 0 match neither scheme.
        for job in [0u64, 1, 99, 1 << 32] {
            assert!(!is_lease_trace(job));
            assert!(!is_shard_trace(job));
        }
    }

    #[test]
    fn disabled_recording_is_free_and_silent() {
        let _g = lock();
        set_enabled(false);
        reset();
        assert_eq!(complete(1, 0, "x", "compute", "t", 0.0, 1.0), 0);
        assert_eq!(begin(1, 0, "x", "compute", "t", 0.0), 0);
        end(0, 1.0);
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn begin_end_and_complete_collect_in_order() {
        let _g = lock();
        set_enabled(true);
        reset();
        let root = begin(7, 0, "job", "job", "scheduler", 1.0);
        let child = complete(7, root, "iter", "compute", "sim", 2.0, 3.0);
        end(root, 5.0);
        end(root, 9.0); // idempotent: already closed
        set_enabled(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, root);
        assert_eq!(spans[0].end, 5.0);
        assert_eq!(spans[1].id, child);
        assert_eq!(spans[1].parent, root);
        assert!(validate(&spans).is_empty());
    }

    #[test]
    fn unclosed_spans_are_closed_at_latest_time() {
        let _g = lock();
        set_enabled(true);
        reset();
        let a = begin(1, 0, "job", "job", "scheduler", 0.0);
        complete(1, a, "iter", "compute", "sim", 1.0, 42.0);
        set_enabled(false);
        let spans = drain_spans();
        let root = spans.iter().find(|s| s.id == a).unwrap();
        assert_eq!(root.end, 42.0);
    }

    #[test]
    fn heads_and_ambient_ctx_propagate() {
        let _g = lock();
        set_enabled(true);
        reset();
        set_head(3, 17);
        assert_eq!(head(3), 17);
        assert_eq!(head(4), 0);
        assert_eq!(current(), TraceCtx::default());
        {
            let _c = ctx_guard(TraceCtx { trace: 3, parent: 17 });
            assert_eq!(current().parent, 17);
        }
        assert_eq!(current(), TraceCtx::default());
        set_enabled(false);
        reset();
    }

    #[test]
    fn chrome_export_round_trips() {
        let spans = vec![
            SpanRecord {
                trace: 2,
                id: 10,
                parent: 0,
                name: "LU".into(),
                cat: "job".into(),
                track: "scheduler".into(),
                start: 0.0,
                end: 10.0,
            },
            SpanRecord {
                trace: 2,
                id: 11,
                parent: 10,
                name: "iter".into(),
                cat: "compute".into(),
                track: "sim".into(),
                start: 1.0,
                end: 4.0,
            },
        ];
        let doc = chrome_trace_json(&spans);
        let back = parse_chrome_trace(&doc).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].id, 10);
        assert_eq!(back[1].parent, 10);
        assert!((back[1].start - 1.0).abs() < 1e-9);
        assert!((back[1].end - 4.0).abs() < 1e-9);
        assert!(validate(&back).is_empty());
    }

    #[test]
    fn validate_flags_broken_edges_and_time_travel() {
        let mut spans = vec![SpanRecord {
            trace: 1,
            id: 5,
            parent: 99,
            name: "orphan".into(),
            cat: "compute".into(),
            track: "t".into(),
            start: 2.0,
            end: 1.0,
        }];
        let problems = validate(&spans);
        assert_eq!(problems.len(), 2, "{problems:?}");
        spans[0].parent = 0;
        spans[0].end = 3.0;
        assert!(validate(&spans).is_empty());
    }
}
