//! Critical-path attribution over a span DAG.
//!
//! For each job trace (rooted at a `cat == "job"` span covering
//! submission → completion) the analyzer attributes every instant of the
//! job's makespan to exactly one category: at each point in time the
//! *deepest* enclosing span wins, so a `redist_pack` phase inside a
//! `redist` span inside the job root counts as redistribution, and time
//! covered only by the root (nothing more specific recorded) lands in
//! `other`. Because the categories partition the root interval, the
//! per-job category sums equal the makespan exactly — the invariant the
//! acceptance tests pin down.
//!
//! Categories map onto the five paper-relevant buckets (plus `other`):
//!
//! | span `cat`                      | bucket            |
//! |---------------------------------|-------------------|
//! | `compute`                       | compute           |
//! | `queue_wait`                    | queue-wait        |
//! | `spawn`, `handshake`            | spawn             |
//! | `redist*`                       | redistribution    |
//! | `recovery`, `rollback`, `replay`| rollback-replay   |
//! | anything else (incl. the root)  | other             |

use serde::{Deserialize, Serialize};

use crate::trace::SpanRecord;

/// Attribution bucket for a span category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bucket {
    Compute,
    QueueWait,
    Spawn,
    Redistribution,
    RollbackReplay,
    Other,
}

/// Map a span category string onto its bucket.
pub fn bucket(cat: &str) -> Bucket {
    match cat {
        "compute" => Bucket::Compute,
        "queue_wait" => Bucket::QueueWait,
        "spawn" | "handshake" => Bucket::Spawn,
        _ if cat.starts_with("redist") => Bucket::Redistribution,
        "recovery" | "rollback" | "replay" => Bucket::RollbackReplay,
        _ => Bucket::Other,
    }
}

/// Per-job makespan attribution. The six buckets partition
/// `[root.start, root.end]`, so they sum to `makespan` exactly.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JobCritPath {
    pub trace: u64,
    pub name: String,
    pub makespan: f64,
    pub compute: f64,
    pub queue_wait: f64,
    pub spawn: f64,
    pub redistribution: f64,
    pub rollback_replay: f64,
    pub other: f64,
}

impl JobCritPath {
    /// Sum over all buckets (equals `makespan` up to float rounding).
    pub fn total(&self) -> f64 {
        self.compute
            + self.queue_wait
            + self.spawn
            + self.redistribution
            + self.rollback_replay
            + self.other
    }

    fn add(&mut self, b: Bucket, dt: f64) {
        match b {
            Bucket::Compute => self.compute += dt,
            Bucket::QueueWait => self.queue_wait += dt,
            Bucket::Spawn => self.spawn += dt,
            Bucket::Redistribution => self.redistribution += dt,
            Bucket::RollbackReplay => self.rollback_replay += dt,
            Bucket::Other => self.other += dt,
        }
    }
}

/// Depth of each span (root = 0) by walking parent edges; spans whose
/// chain does not reach a known id get the depth their dangling prefix
/// allows (they still attribute — better than dropping time on the floor).
fn depths(spans: &[&SpanRecord]) -> std::collections::HashMap<u64, usize> {
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        spans.iter().map(|s| (s.id, *s)).collect();
    let mut out = std::collections::HashMap::new();
    for s in spans {
        let mut d = 0usize;
        let mut cur = s.parent;
        // The chain is acyclic by construction (ids increase child-ward),
        // but cap the walk anyway so corrupt input cannot hang us.
        while cur != 0 && d <= spans.len() {
            d += 1;
            cur = by_id.get(&cur).map(|p| p.parent).unwrap_or(0);
        }
        out.insert(s.id, d);
    }
    out
}

/// Attribute each job trace's makespan over the buckets. Traces without a
/// `cat == "job"` root span (e.g. trace 0, scheduler infrastructure) are
/// skipped. Output is sorted by trace id.
pub fn analyze(spans: &[SpanRecord]) -> Vec<JobCritPath> {
    let mut by_trace: std::collections::BTreeMap<u64, Vec<&SpanRecord>> = Default::default();
    for s in spans {
        by_trace.entry(s.trace).or_default().push(s);
    }
    let mut out = Vec::new();
    for (trace, spans) in by_trace {
        let Some(root) = spans.iter().find(|s| s.cat == "job") else {
            continue;
        };
        let (lo, hi) = (root.start, root.end);
        let depth = depths(&spans);
        // Clip every span to the root window; keep only positive-length
        // intervals (instant markers like decisions carry no time).
        let clipped: Vec<(&SpanRecord, f64, f64)> = spans
            .iter()
            .map(|s| (*s, s.start.max(lo), s.end.min(hi)))
            .filter(|&(_, a, b)| b > a)
            .collect();
        let mut bounds: Vec<f64> = clipped
            .iter()
            .flat_map(|&(_, a, b)| [a, b])
            .collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite span times"));
        bounds.dedup();
        let mut crit = JobCritPath {
            trace,
            name: root.name.clone(),
            makespan: hi - lo,
            ..Default::default()
        };
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            let mid = a + 0.5 * (b - a);
            // Deepest span covering the midpoint wins; ties go to the
            // latest-created span (the more specific recording).
            let winner = clipped
                .iter()
                .filter(|&&(_, s, e)| s <= mid && mid < e)
                .max_by_key(|&&(sp, _, _)| (depth.get(&sp.id).copied().unwrap_or(0), sp.id));
            if let Some(&(sp, _, _)) = winner {
                crit.add(bucket(&sp.cat), b - a);
            }
        }
        out.push(crit);
    }
    out
}

/// Render the attribution as an aligned text table (the `simulate`
/// per-job critical-path report).
pub fn render_table(rows: &[JobCritPath]) -> String {
    let header = [
        "job", "trace", "makespan", "compute", "queue", "spawn", "redist", "rollback", "other",
    ];
    let mut cells: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
    for r in rows {
        cells.push(vec![
            r.name.clone(),
            r.trace.to_string(),
            format!("{:.1}", r.makespan),
            format!("{:.1}", r.compute),
            format!("{:.1}", r.queue_wait),
            format!("{:.1}", r.spawn),
            format!("{:.1}", r.redistribution),
            format!("{:.1}", r.rollback_replay),
            format!("{:.1}", r.other),
        ]);
    }
    let widths: Vec<usize> = (0..header.len())
        .map(|c| cells.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    for (i, row) in cells.iter().enumerate() {
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>w$}", w = widths[c]));
        }
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (header.len() - 1)));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, cat: &str, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            trace,
            id,
            parent,
            name: format!("s{id}"),
            cat: cat.into(),
            track: "t".into(),
            start,
            end,
        }
    }

    #[test]
    fn buckets_partition_the_makespan() {
        // job [0,100]: queue [0,10], compute [10,40], redist [40,50] with a
        // pack phase [40,45] inside it, compute [50,100].
        let spans = vec![
            {
                let mut s = span(1, 1, 0, "job", 0.0, 100.0);
                s.name = "LU".into();
                s
            },
            span(1, 2, 1, "queue_wait", 0.0, 10.0),
            span(1, 3, 1, "compute", 10.0, 40.0),
            span(1, 4, 1, "redist", 40.0, 50.0),
            span(1, 5, 4, "redist_pack", 40.0, 45.0),
            span(1, 6, 4, "compute", 50.0, 100.0),
        ];
        let crit = analyze(&spans);
        assert_eq!(crit.len(), 1);
        let c = &crit[0];
        assert_eq!(c.name, "LU");
        assert_eq!(c.makespan, 100.0);
        assert!((c.queue_wait - 10.0).abs() < 1e-9);
        assert!((c.compute - 80.0).abs() < 1e-9);
        assert!((c.redistribution - 10.0).abs() < 1e-9, "{c:?}");
        assert!((c.other).abs() < 1e-9);
        assert!((c.total() - c.makespan).abs() < 1e-9);
    }

    #[test]
    fn uncovered_time_lands_in_other_and_children_clip_to_root() {
        let spans = vec![
            span(2, 1, 0, "job", 0.0, 50.0),
            // Runs past the root's end (job failed mid-iteration): clipped.
            span(2, 2, 1, "compute", 10.0, 80.0),
        ];
        let c = &analyze(&spans)[0];
        assert!((c.compute - 40.0).abs() < 1e-9);
        assert!((c.other - 10.0).abs() < 1e-9);
        assert!((c.total() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn traces_without_a_job_root_are_skipped() {
        let spans = vec![span(0, 1, 0, "wal", 0.0, 0.0)];
        assert!(analyze(&spans).is_empty());
    }

    #[test]
    fn category_buckets_map_as_documented() {
        assert_eq!(bucket("compute"), Bucket::Compute);
        assert_eq!(bucket("queue_wait"), Bucket::QueueWait);
        assert_eq!(bucket("spawn"), Bucket::Spawn);
        assert_eq!(bucket("handshake"), Bucket::Spawn);
        assert_eq!(bucket("redist"), Bucket::Redistribution);
        assert_eq!(bucket("redist_unpack"), Bucket::Redistribution);
        assert_eq!(bucket("recovery"), Bucket::RollbackReplay);
        assert_eq!(bucket("replay"), Bucket::RollbackReplay);
        assert_eq!(bucket("job"), Bucket::Other);
        assert_eq!(bucket("decision"), Bucket::Other);
    }

    #[test]
    fn render_table_includes_every_job() {
        let spans = vec![
            span(1, 1, 0, "job", 0.0, 10.0),
            span(3, 2, 0, "job", 0.0, 20.0),
        ];
        let t = render_table(&analyze(&spans));
        assert!(t.contains("s1") && t.contains("s2"), "{t}");
        assert!(t.lines().count() >= 4);
    }
}
