//! Named counters, gauges, and histograms in a process-wide registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::histogram::{Histogram, HistogramSnapshot};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge (stored as bit pattern).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Registry of named instruments. Handles are `Arc`s, so call sites may
/// cache them; lookup by name is also cheap enough for gated paths.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// The process-wide registry all convenience functions write to.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().entry(name.to_string()).or_default())
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().entry(name.to_string()).or_default())
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().entry(name.to_string()).or_default())
    }

    /// Point-in-time copy of every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Drop every instrument (test isolation helper).
    pub fn reset(&self) {
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.histograms.lock().clear();
    }
}

/// Serializable copy of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_alias_by_name() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn gauge_stores_last_value() {
        let r = Registry::default();
        let g = r.gauge("depth");
        g.set(4.0);
        g.set(2.5);
        assert_eq!(r.gauge("depth").get(), 2.5);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::default();
        r.counter("msgs").add(7);
        r.gauge("q").set(3.0);
        r.histogram("lat").record(0.25);
        r.histogram("lat").record(0.5);
        let snap = r.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counters["msgs"], 7);
        assert_eq!(back.histograms["lat"].count, 2);
    }
}
