//! Fixed-bucket geometric histograms with quantile summaries.
//!
//! Buckets are geometric with ratio 2 starting at [`MIN_BOUND`]: bucket 0
//! covers `(-inf, MIN_BOUND]`, bucket `i` covers
//! `(MIN_BOUND * 2^(i-1), MIN_BOUND * 2^i]`, and the last bucket is the
//! `+inf` overflow. With 64 buckets the covered range spans from
//! nanoseconds to centuries, which fits every duration and size the
//! scheduler records. Bucket placement uses exact doubling (no `log2`
//! rounding), so values that land precisely on a boundary are assigned
//! deterministically — the unit tests rely on this.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Number of buckets, including the overflow bucket.
pub const BUCKETS: usize = 64;

/// Upper bound of the first bucket (1 nanosecond when recording seconds).
pub const MIN_BOUND: f64 = 1e-9;

/// Inclusive upper bound of bucket `i`. The last bucket is unbounded.
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_upper_bound(i: usize) -> f64 {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == BUCKETS - 1 {
        f64::INFINITY
    } else {
        MIN_BOUND * 2f64.powi(i as i32)
    }
}

/// Bucket index for a recorded value. NaN goes to the overflow bucket.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() {
        return BUCKETS - 1;
    }
    let mut bound = MIN_BOUND;
    for i in 0..BUCKETS - 1 {
        if v <= bound {
            return i;
        }
        bound *= 2.0;
    }
    BUCKETS - 1
}

#[derive(Debug)]
struct HistData {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Concurrent histogram. Recording takes a short uncontended lock; every
/// recording site is gated on [`crate::enabled`], so the lock is never
/// touched when telemetry is off.
#[derive(Debug, Default)]
pub struct Histogram {
    inner: Mutex<HistData>,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, v: f64) {
        let mut d = self.inner.lock();
        d.buckets[bucket_index(v)] += 1;
        d.count += 1;
        d.sum += v;
        if v < d.min {
            d.min = v;
        }
        if v > d.max {
            d.max = v;
        }
    }

    /// Merge a snapshot (e.g. shipped from another process or rank) into
    /// this live histogram. Strict: the snapshot must be empty or have
    /// exactly [`BUCKETS`] buckets — anything else means it came from an
    /// incompatible layout and silently re-bucketing would corrupt
    /// quantiles, so it is refused.
    pub fn merge(&self, other: &HistogramSnapshot) -> Result<(), MergeError> {
        if other.count == 0 {
            return Ok(());
        }
        if other.buckets.len() != BUCKETS {
            return Err(MergeError::BucketMismatch {
                expected: BUCKETS,
                got: other.buckets.len(),
            });
        }
        let mut d = self.inner.lock();
        for (b, &o) in d.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        d.count += other.count;
        d.sum += other.sum;
        if other.min < d.min {
            d.min = other.min;
        }
        if other.max > d.max {
            d.max = other.max;
        }
        Ok(())
    }

    /// Consistent point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let d = self.inner.lock();
        HistogramSnapshot {
            buckets: d.buckets.to_vec(),
            count: d.count,
            sum: d.sum,
            min: if d.count == 0 { 0.0 } else { d.min },
            max: if d.count == 0 { 0.0 } else { d.max },
        }
    }
}

/// Why two histograms cannot be combined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// The two sides disagree on bucket layout.
    BucketMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::BucketMismatch { expected, got } => write!(
                f,
                "histogram bucket layout mismatch: expected {expected} buckets, got {got}"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Serializable copy of a [`Histogram`]. Empty snapshots report 0 for every
/// statistic and act as the identity under [`HistogramSnapshot::merge`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate: the upper bound of the bucket where the
    /// cumulative count first reaches `ceil(q * count)`, clamped to the
    /// observed `[min, max]`. Exact when all observations share a bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                if i + 1 >= self.buckets.len() {
                    return self.max;
                }
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Strict variant of [`merge`](Self::merge): refuses snapshots whose
    /// bucket layouts disagree (both non-empty with different lengths)
    /// instead of silently resizing.
    pub fn try_merge(&mut self, other: &HistogramSnapshot) -> Result<(), MergeError> {
        if other.count == 0 {
            return Ok(());
        }
        if self.count > 0 && self.buckets.len() != other.buckets.len() {
            return Err(MergeError::BucketMismatch {
                expected: self.buckets.len(),
                got: other.buckets.len(),
            });
        }
        self.merge(other);
        Ok(())
    }

    /// Merge another snapshot into this one. Bucket counts, totals, and
    /// min/max merge exactly (and associatively); the floating `sum`
    /// accumulates in recording order, so it is associative only up to
    /// rounding — the proptest below pins both properties down.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "count={} mean={:.3e} min={:.3e} max={:.3e} p50={:.3e} p95={:.3e} p99={:.3e}",
            self.count,
            self.mean(),
            self.min,
            self.max,
            self.quantile(0.5),
            self.quantile(0.95),
            self.quantile(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Values exactly on a bound belong to the bucket they bound.
        assert_eq!(bucket_index(MIN_BOUND), 0);
        for k in 1..20 {
            let bound = MIN_BOUND * 2f64.powi(k);
            assert_eq!(bucket_index(bound), k as usize, "at bound 2^{k}");
            // Just above a bound spills into the next bucket.
            assert_eq!(bucket_index(bound * 1.0001), k as usize + 1);
        }
    }

    #[test]
    fn degenerate_values_have_a_home() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
        assert_eq!(bucket_index(f64::NAN), BUCKETS - 1);
    }

    #[test]
    fn upper_bounds_double() {
        assert_eq!(bucket_upper_bound(0), MIN_BOUND);
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_upper_bound(i), 2.0 * bucket_upper_bound(i - 1));
        }
        assert!(bucket_upper_bound(BUCKETS - 1).is_infinite());
    }

    #[test]
    fn quantiles_of_uniform_spread() {
        let h = Histogram::new();
        // 100 observations in strictly increasing buckets 10..20.
        for k in 10..20 {
            for _ in 0..10 {
                h.record(MIN_BOUND * 2f64.powi(k));
            }
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 = 50th observation = 5th group = bucket 14's bound.
        assert_eq!(s.quantile(0.5), bucket_upper_bound(14));
        // p95 lands in the last group (bucket 19), p100 = max.
        assert_eq!(s.quantile(0.95), bucket_upper_bound(19));
        assert_eq!(s.quantile(1.0), bucket_upper_bound(19));
        assert_eq!(s.min, MIN_BOUND * 2f64.powi(10));
        assert_eq!(s.max, MIN_BOUND * 2f64.powi(19));
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let h = Histogram::new();
        h.record(3e-9); // bucket 2, upper bound 4e-9 > max
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 3e-9);
        assert_eq!(s.quantile(0.99), 3e-9);
        assert_eq!(s.mean(), 3e-9);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        // Every quantile of an empty distribution is 0, including the
        // extremes — no NaNs, no panics.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0.0, "q={q}");
        }
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::new();
        h.record(0.037);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0.037, "q={q}");
        }
        assert_eq!(s.mean(), 0.037);
        assert_eq!(s.min, 0.037);
        assert_eq!(s.max, 0.037);
    }

    #[test]
    fn all_samples_in_overflow_bucket_report_max() {
        // Everything past the last finite bound lands in the +inf bucket;
        // quantiles cannot use a bucket bound there and must fall back to
        // the observed max (finite, not +inf).
        let h = Histogram::new();
        let huge = bucket_upper_bound(BUCKETS - 2) * 4.0;
        for k in 0..10 {
            h.record(huge * (1.0 + k as f64));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.buckets[BUCKETS - 1], 10, "all in overflow");
        assert_eq!(s.buckets[..BUCKETS - 1].iter().sum::<u64>(), 0);
        for q in [0.1, 0.5, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!(v.is_finite(), "q={q} gave {v}");
            assert_eq!(v, s.max, "q={q}");
        }
        assert_eq!(s.max, huge * 10.0);
    }

    #[test]
    fn live_merge_combines_ranks() {
        let local = Histogram::new();
        local.record(0.5);
        let remote = Histogram::new();
        remote.record(2.0);
        remote.record(8.0);
        local.merge(&remote.snapshot()).unwrap();
        let s = local.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.sum, 10.5);
    }

    #[test]
    fn live_merge_rejects_foreign_bucket_layout() {
        let h = Histogram::new();
        h.record(1.0);
        let alien = HistogramSnapshot {
            buckets: vec![1; 16],
            count: 1,
            sum: 1.0,
            min: 1.0,
            max: 1.0,
        };
        let err = h.merge(&alien).unwrap_err();
        assert_eq!(err, MergeError::BucketMismatch { expected: BUCKETS, got: 16 });
        assert!(err.to_string().contains("expected 64 buckets, got 16"));
        // The refused merge left the histogram untouched.
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn live_merge_accepts_empty_snapshot_of_any_shape() {
        let h = Histogram::new();
        h.record(1.0);
        let empty = HistogramSnapshot::default(); // zero buckets, zero count
        h.merge(&empty).unwrap();
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn try_merge_rejects_mismatched_nonempty_snapshots() {
        let mut a = HistogramSnapshot {
            buckets: vec![1; 8],
            count: 1,
            sum: 1.0,
            min: 1.0,
            max: 1.0,
        };
        let b = HistogramSnapshot {
            buckets: vec![1; 4],
            count: 1,
            sum: 2.0,
            min: 2.0,
            max: 2.0,
        };
        assert_eq!(
            a.try_merge(&b).unwrap_err(),
            MergeError::BucketMismatch { expected: 8, got: 4 }
        );
        // Identity cases still succeed: empty other, or empty self.
        a.try_merge(&HistogramSnapshot::default()).unwrap();
        let mut fresh = HistogramSnapshot::default();
        fresh.try_merge(&b).unwrap();
        assert_eq!(fresh.count, 1);
    }

    #[test]
    fn quantiles_stable_under_merge() {
        // Quantile estimates after merging two halves equal the estimates
        // of recording the whole stream into one histogram — the property
        // a cross-rank aggregation needs to report honest p95s.
        let evens: Vec<f64> = (10..20).step_by(2).map(|k| MIN_BOUND * 2f64.powi(k)).collect();
        let odds: Vec<f64> = (11..20).step_by(2).map(|k| MIN_BOUND * 2f64.powi(k)).collect();
        let mut merged = snap_of(&evens);
        merged.try_merge(&snap_of(&odds)).unwrap();
        let all: Vec<f64> = evens.iter().chain(odds.iter()).copied().collect();
        let whole = snap_of(&all);
        for q in [0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
            assert_eq!(merged.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    fn snap_of(values: &[f64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    proptest! {
        /// Merging is associative: bucket counts, count, min and max are
        /// exactly equal; the floating-point sum agrees within rounding.
        #[test]
        fn merge_is_associative(
            a in proptest::collection::vec(1e-9f64..1e3, 0..40),
            b in proptest::collection::vec(1e-9f64..1e3, 0..40),
            c in proptest::collection::vec(1e-9f64..1e3, 0..40),
        ) {
            let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));

            let mut left = sa.clone();
            left.merge(&sb);
            left.merge(&sc);

            let mut bc = sb.clone();
            bc.merge(&sc);
            let mut right = sa.clone();
            right.merge(&bc);

            prop_assert_eq!(&left.buckets, &right.buckets);
            prop_assert_eq!(left.count, right.count);
            prop_assert_eq!(left.min, right.min);
            prop_assert_eq!(left.max, right.max);
            let tol = 1e-9 * (1.0 + left.sum.abs());
            prop_assert!((left.sum - right.sum).abs() <= tol,
                "sums diverged: {} vs {}", left.sum, right.sum);
        }

        /// Merging all parts equals recording everything in one histogram
        /// (counter semantics: plain addition).
        #[test]
        fn merge_equals_single_recording(
            a in proptest::collection::vec(1e-9f64..1e3, 0..40),
            b in proptest::collection::vec(1e-9f64..1e3, 0..40),
        ) {
            let mut merged = snap_of(&a);
            merged.merge(&snap_of(&b));
            let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
            let whole = snap_of(&all);
            prop_assert_eq!(&merged.buckets, &whole.buckets);
            prop_assert_eq!(merged.count, whole.count);
            prop_assert_eq!(merged.min, whole.min);
            prop_assert_eq!(merged.max, whole.max);
        }
    }
}
