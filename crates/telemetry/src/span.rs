//! RAII wall-clock span timers.

use std::time::Instant;

/// Measures wall time from construction until [`Span::stop`] (or drop) and
/// records the elapsed seconds into the histogram named at construction —
/// but only when telemetry is enabled. The clock always runs, so callers
/// that need the measured value (e.g. the driver's iteration loop feeding
/// the virtual clock) can use `stop()`'s return value whether or not the
/// observation was kept.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    name: &'static str,
    start: Instant,
    recorded: bool,
}

impl Span {
    pub fn new(name: &'static str) -> Self {
        Span {
            name,
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Seconds elapsed so far, without ending the span.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// End the span, record the observation, and return elapsed seconds.
    pub fn stop(mut self) -> f64 {
        let dt = self.elapsed();
        self.recorded = true;
        crate::observe(self.name, dt);
        dt
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            crate::observe(self.name, self.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_returns_elapsed_seconds() {
        let s = Span::new("test.span");
        let dt = s.stop();
        assert!(dt >= 0.0);
        assert!(dt < 60.0, "a no-op span took {dt}s");
    }
}
