//! OpenMetrics / Prometheus text exposition for the metrics registry.
//!
//! Rendering works from a [`RegistrySnapshot`], so it can serve the live
//! global registry (`RESHAPE_METRICS=sched.prom` writes one at [`crate::flush`])
//! or any snapshot deserialized from a JSONL report. Registry keys may carry
//! an inline label block — `reshape_sim_utilization{window="3"}` — produced
//! by [`crate::gauge_labeled`]; the renderer groups such keys into one metric
//! family and passes the (already escaped) labels through.
//!
//! Formatting choices, pinned by the golden-file test:
//!
//! * names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` (bad chars become `_`);
//! * every family gets exactly one `# TYPE` line, families in sorted order;
//! * histograms emit cumulative `_bucket{le="..."}` lines for **occupied**
//!   buckets only (plus the mandatory `+Inf`), then `_sum` and `_count`,
//!   then a companion `<name>_quantile` gauge family with the p50/p95/p99
//!   estimates the text report shows;
//! * the output ends with `# EOF` per the OpenMetrics ABNF.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};
use crate::metrics::RegistrySnapshot;

/// Escape a label value for the exposition format: backslash, double quote,
/// and newline must be backslash-escaped.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Encode a label set as the `{k="v",...}` block appended to registry keys.
/// Values are escaped here, so the renderer can pass blocks through verbatim.
pub fn encode_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    out.push('}');
    out
}

/// Sanitize a metric or label name to the allowed character set.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Split a registry key into (sanitized family name, label block).
/// `"a.b{x=\"1\"}"` → `("a_b", "{x=\"1\"}")`; `"a.b"` → `("a_b", "")`.
fn split_key(key: &str) -> (String, &str) {
    match key.find('{') {
        Some(i) => (sanitize_name(&key[..i]), &key[i..]),
        None => (sanitize_name(key), ""),
    }
}

/// Format a float the way Prometheus expects (`+Inf`/`-Inf`/`NaN` spelled
/// out; otherwise Rust's shortest round-trip representation).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Inject an extra label (e.g. `le`) into an existing label block.
fn with_label(block: &str, key: &str, value: &str) -> String {
    if block.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        // "{a=\"1\"}" → "{a=\"1\",le=\"...\"}"
        format!("{},{key}=\"{value}\"}}", &block[..block.len() - 1])
    }
}

fn group_families<'a, V>(
    metrics: impl Iterator<Item = (&'a String, V)>,
) -> BTreeMap<String, Vec<(String, V)>> {
    let mut fams: BTreeMap<String, Vec<(String, V)>> = BTreeMap::new();
    for (key, v) in metrics {
        let (family, labels) = split_key(key);
        fams.entry(family).or_default().push((labels.to_string(), v));
    }
    fams
}

fn render_histogram(out: &mut String, family: &str, labels: &str, h: &HistogramSnapshot) {
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let le = if i + 1 >= h.buckets.len() {
            "+Inf".to_string()
        } else {
            fmt_f64(bucket_upper_bound(i))
        };
        let _ = writeln!(out, "{family}_bucket{} {cum}", with_label(labels, "le", &le));
    }
    // The +Inf bucket line is mandatory even when the overflow bucket is
    // empty (and for empty histograms): it carries the total count.
    if h.buckets.last().copied().unwrap_or(0) == 0 {
        let _ = writeln!(out, "{family}_bucket{} {}", with_label(labels, "le", "+Inf"), h.count);
    }
    let _ = writeln!(out, "{family}_sum{labels} {}", fmt_f64(h.sum));
    let _ = writeln!(out, "{family}_count{labels} {}", h.count);
}

/// Render a registry snapshot in the OpenMetrics text exposition format.
pub fn render_openmetrics(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();

    for (family, series) in group_families(snap.counters.iter()) {
        let _ = writeln!(out, "# TYPE {family} counter");
        for (labels, v) in series {
            let _ = writeln!(out, "{family}{labels} {v}");
        }
    }

    for (family, series) in group_families(snap.gauges.iter()) {
        let _ = writeln!(out, "# TYPE {family} gauge");
        for (labels, v) in series {
            let _ = writeln!(out, "{family}{labels} {}", fmt_f64(*v));
        }
    }

    for (family, series) in group_families(snap.histograms.iter()) {
        let _ = writeln!(out, "# TYPE {family} histogram");
        for (labels, h) in &series {
            render_histogram(&mut out, &family, labels, h);
        }
        // Companion gauge family with the quantile estimates the human
        // report prints, so dashboards get p50/p95/p99 without recomputing
        // from buckets.
        let _ = writeln!(out, "# TYPE {family}_quantile gauge");
        for (labels, h) in &series {
            for q in ["0.5", "0.95", "0.99"] {
                let _ = writeln!(
                    out,
                    "{family}_quantile{} {}",
                    with_label(labels, "quantile", q),
                    fmt_f64(h.quantile(q.parse().expect("static quantile")))
                );
            }
        }
    }

    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("redist.bytes-sent"), "redist_bytes_sent");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
    }

    #[test]
    fn encodes_label_blocks() {
        assert_eq!(encode_labels(&[]), "");
        assert_eq!(encode_labels(&[("window", "3")]), "{window=\"3\"}");
        assert_eq!(
            encode_labels(&[("job", "lu-8k"), ("node", "c0-1")]),
            "{job=\"lu-8k\",node=\"c0-1\"}"
        );
    }

    #[test]
    fn injects_le_into_existing_block() {
        assert_eq!(with_label("", "le", "+Inf"), "{le=\"+Inf\"}");
        assert_eq!(
            with_label("{w=\"1\"}", "le", "0.5"),
            "{w=\"1\",le=\"0.5\"}"
        );
    }

    #[test]
    fn fmt_handles_specials() {
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(0.25), "0.25");
    }
}
