//! Golden-file test for the OpenMetrics exposition format.
//!
//! The golden file pins the exact bytes: family grouping, `# TYPE` lines,
//! label pass-through, histogram bucket cumulation, quantile gauges, and
//! the trailing `# EOF`. Regenerate deliberately with
//! `BLESS=1 cargo test -p reshape-telemetry --test openmetrics_golden`
//! and review the diff like any other behavior change.

use reshape_telemetry::{encode_labels, render_openmetrics, Registry};

fn build_snapshot() -> reshape_telemetry::RegistrySnapshot {
    let r = Registry::default();
    // Dots in names must sanitize to underscores.
    r.counter("redist.msgs_total").add(7);
    r.counter("jobs_finished_total").add(3);
    // Labeled series share one family with the bare series.
    r.counter(&format!("jobs_finished_total{}", encode_labels(&[("queue", "batch")])))
        .add(2);
    r.gauge("sched_procs_free").set(12.0);
    r.gauge(&format!(
        "reshape_sim_utilization{}",
        encode_labels(&[("window", "0")])
    ))
    .set(0.5);
    r.gauge(&format!(
        "reshape_sim_utilization{}",
        encode_labels(&[("window", "1")])
    ))
    .set(0.75);
    // A label value that needs escaping: quote, backslash, newline.
    r.gauge(&format!(
        "app_info{}",
        encode_labels(&[("name", "lu \"8k\"\\demo\nline2")])
    ))
    .set(1.0);
    // Histogram: three observations, two buckets apart, exercising
    // cumulative le lines, sum/count, and quantile gauges.
    let h = r.histogram("redist_seconds");
    h.record(0.25);
    h.record(0.25);
    h.record(4.0);
    r.snapshot()
}

#[test]
fn rendering_matches_golden_file() {
    let got = render_openmetrics(&build_snapshot());
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/openmetrics.prom");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(golden_path).expect("golden file exists — run with BLESS=1 once");
    assert_eq!(
        got, want,
        "OpenMetrics output drifted from tests/golden/openmetrics.prom — \
         if intentional, re-bless with BLESS=1"
    );
}

#[test]
fn rendering_has_structural_invariants() {
    let out = render_openmetrics(&build_snapshot());
    // One TYPE line per family, families never repeat.
    let mut seen = std::collections::BTreeSet::new();
    for line in out.lines().filter(|l| l.starts_with("# TYPE ")) {
        let fam = line.split_whitespace().nth(2).unwrap();
        assert!(seen.insert(fam.to_string()), "family {fam} declared twice");
    }
    // Escaped label value survives intact on one line.
    assert!(
        out.contains(r#"app_info{name="lu \"8k\"\\demo\nline2"} 1"#),
        "escaped label line missing:\n{out}"
    );
    // Histogram invariant: the +Inf bucket equals the count.
    assert!(out.contains(r#"redist_seconds_bucket{le="+Inf"} 3"#));
    assert!(out.contains("redist_seconds_count 3"));
    assert!(out.contains("redist_seconds_sum 4.5"));
    // Quantile companions exist for p50/p95/p99.
    for q in ["0.5", "0.95", "0.99"] {
        assert!(
            out.contains(&format!("redist_seconds_quantile{{quantile=\"{q}\"}}")),
            "missing quantile {q}:\n{out}"
        );
    }
    assert!(out.ends_with("# EOF\n"));
}
