//! Trace-export round trip: spans emitted through the public API, exported
//! as Chrome-trace-event JSON, re-parsed, and checked for the invariants
//! downstream tooling relies on — every span's parent ID exists in the
//! file, and no span ends before it starts.

use reshape_telemetry::trace;

/// Emit a realistic little span forest: two job traces with the
/// decision → spawn → redist(+phases) → compute chain, plus infra spans
/// on trace 0, some via the begin/end API and one left open on purpose.
fn emit() -> Vec<trace::SpanRecord> {
    trace::reset();
    trace::set_enabled(true);

    for (job, base) in [(1u64, 0.0f64), (2, 100.0)] {
        let root = trace::begin(job, 0, format!("job {job}"), "job", "scheduler", base);
        let qw = trace::complete(job, root, "queue_wait", "queue_wait", "scheduler", base, base + 2.0);
        let it0 = trace::complete(job, qw, "iter 0", "compute", "sim", base + 2.0, base + 10.0);
        let dec = trace::complete(job, it0, "decision:expand", "decision", "scheduler", base + 10.0, base + 10.0);
        let sp = trace::complete(job, dec, "spawn 1x2->2x2", "spawn", "sim", base + 10.0, base + 10.0);
        let rd = trace::complete(job, sp, "redist 1x2->2x2", "redist", "sim", base + 10.0, base + 13.0);
        trace::complete(job, rd, "pack", "redist_pack", "sim", base + 10.0, base + 11.0);
        trace::complete(job, rd, "transfer", "redist_transfer", "sim", base + 11.0, base + 12.5);
        trace::complete(job, rd, "unpack", "redist_unpack", "sim", base + 12.5, base + 13.0);
        trace::complete(job, rd, "iter 1", "compute", "sim", base + 13.0, base + 20.0);
        trace::end(root, base + 20.0);
    }
    trace::complete(0, 0, "wal_append", "wal", "scheduler", 5.0, 5.0);
    // Deliberately left open: drain must close it at the latest time seen.
    trace::begin(0, 0, "wal_recovery", "recovery", "scheduler", 50.0);

    let spans = trace::drain_spans();
    trace::set_enabled(false);
    spans
}

#[test]
fn export_reparses_with_parent_closure_and_ordered_timestamps() {
    let spans = emit();
    assert_eq!(spans.len(), 22, "2 jobs x 10 spans + 2 infra spans");

    let json = trace::chrome_trace_json(&spans);
    let back = trace::parse_chrome_trace(&json).expect("exported JSON parses");
    assert_eq!(back.len(), spans.len(), "no events lost in the round trip");

    // Every span's parent ID exists in the re-parsed file (0 = no parent).
    let ids: std::collections::BTreeSet<u64> = back.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), back.len(), "span ids are unique");
    for s in &back {
        assert!(
            s.parent == 0 || ids.contains(&s.parent),
            "span {} ({}) has dangling parent {}",
            s.id,
            s.name,
            s.parent
        );
    }

    // No span ends before it starts — including the one left open, which
    // drain closed at the run's t_max (120.0 > its 50.0 start).
    for s in &back {
        assert!(s.end >= s.start, "span {} ({}) ends before it starts", s.id, s.name);
    }
    let open = back.iter().find(|s| s.name == "wal_recovery").expect("open span exported");
    assert!((open.end - 120.0).abs() < 1e-6, "open span closed at t_max, got {}", open.end);

    // The validator agrees, and the same checks hold for the file
    // write_trace_files would produce (it serializes this same JSON).
    assert!(trace::validate(&back).is_empty(), "{:?}", trace::validate(&back));

    // Round-tripped timestamps survive the microsecond encoding.
    for (a, b) in spans.iter().zip(&back) {
        assert_eq!((a.trace, a.id, a.parent), (b.trace, b.id, b.parent));
        assert_eq!((&a.name, &a.cat, &a.track), (&b.name, &b.cat, &b.track));
        assert!((a.start - b.start).abs() < 2e-6 && (a.end - b.end).abs() < 2e-6);
    }
}
