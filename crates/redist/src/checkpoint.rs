//! File-based checkpoint/restart redistribution — the baseline ReSHAPE is
//! compared against in Figure 3(b).
//!
//! Prior systems (DRMS, SRS) resize by checkpointing the global data through
//! a single node to disk and restarting on the new processor set. This
//! module reproduces that data path: every source panel funnels to rank 0,
//! is written to (and read back from) a file, and is scattered to the new
//! layout. The virtual-time cost model charges the serial funnel plus disk
//! bandwidth, which is what makes checkpointing 4.5–14.5× slower than
//! message-based redistribution in the paper.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use reshape_blockcyclic::{Descriptor, DistMatrix};
use reshape_mpisim::{from_bytes, to_bytes, Comm, NetModel, Pod};

const TAG_CKPT_GATHER: u32 = 8_500_000;
const TAG_CKPT_SCATTER: u32 = 8_500_001;

/// Disk characteristics of the checkpoint node.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointParams {
    /// Sequential write bandwidth, bytes/second.
    pub disk_write_bw: f64,
    /// Sequential read bandwidth, bytes/second.
    pub disk_read_bw: f64,
}

impl Default for CheckpointParams {
    fn default() -> Self {
        // A single local disk of the paper's era (~60 MB/s write, ~80 read).
        CheckpointParams {
            disk_write_bw: 60e6,
            disk_read_bw: 80e6,
        }
    }
}

/// Redistribute via checkpoint/restart through rank 0.
///
/// Collective over `comm` (which covers `max(P, Q)` ranks, old grid in the
/// low `P`, new grid in the low `Q`). If `file` is given the global matrix
/// genuinely round-trips through that file; otherwise the disk is only
/// charged in virtual time. Returns the new panel on destination ranks.
pub fn checkpoint_redistribute<T: Pod + Default>(
    comm: &Comm,
    src_desc: Descriptor,
    dst_desc: Descriptor,
    src: Option<&DistMatrix<T>>,
    params: &CheckpointParams,
    file: Option<&Path>,
) -> Option<DistMatrix<T>> {
    assert_eq!((src_desc.m, src_desc.n), (dst_desc.m, dst_desc.n), "shape mismatch");
    let p = src_desc.nprow * src_desc.npcol;
    let q = dst_desc.nprow * dst_desc.npcol;
    assert!(comm.size() >= p.max(q));
    let me = comm.rank();
    let volume_bytes = src_desc.m * src_desc.n * std::mem::size_of::<T>();

    // Phase 1: funnel all panels to rank 0.
    let full: Option<Vec<T>> = if me == 0 {
        let mut full = vec![T::default(); src_desc.m * src_desc.n];
        let place = |full: &mut Vec<T>, panel: &[T], pr: usize, pc: usize| {
            let lr = src_desc.local_rows(pr);
            let lc = src_desc.local_cols(pc);
            assert_eq!(panel.len(), lr * lc);
            for li in 0..lr {
                let gi = src_desc.local_to_global_row(li, pr);
                for lj in 0..lc {
                    let gj = src_desc.local_to_global_col(lj, pc);
                    full[gi * src_desc.n + gj] = panel[li * lc + lj];
                }
            }
        };
        let mine = src.expect("rank 0 is in the source grid");
        place(&mut full, mine.local_data(), 0, 0);
        for r in 1..p {
            let panel: Vec<T> = comm.recv(r, TAG_CKPT_GATHER);
            place(&mut full, &panel, r / src_desc.npcol, r % src_desc.npcol);
        }
        // Phase 2: the checkpoint file itself.
        if let Some(path) = file {
            let bytes = to_bytes(&full);
            let mut f = std::fs::File::create(path).expect("create checkpoint file");
            f.write_all(&bytes).expect("write checkpoint");
            f.sync_all().ok();
            drop(f);
            let mut f = std::fs::File::open(path).expect("reopen checkpoint file");
            f.seek(SeekFrom::Start(0)).expect("seek");
            let mut back = Vec::with_capacity(bytes.len());
            f.read_to_end(&mut back).expect("read checkpoint");
            assert_eq!(back.len(), bytes.len(), "checkpoint file truncated");
            full = from_bytes(&bytes::Bytes::from(back));
            // The checkpoint exists only to bridge the resize; once read
            // back it is dead weight (and a stale one would shadow the next
            // resize's data), so remove it eagerly.
            let _ = std::fs::remove_file(path);
        }
        // Charge disk time regardless of whether a real file was used.
        comm.advance(
            volume_bytes as f64 / params.disk_write_bw
                + volume_bytes as f64 / params.disk_read_bw,
        );
        Some(full)
    } else {
        if me < p {
            let mine = src.expect("source rank must supply its panel");
            comm.send(0, TAG_CKPT_GATHER, mine.local_data());
        }
        None
    };

    // Phase 3: scatter the new layout from rank 0.
    if me == 0 {
        let full = full.expect("root holds the matrix");
        for r in (0..q).rev() {
            let pr = r / dst_desc.npcol;
            let pc = r % dst_desc.npcol;
            let lr = dst_desc.local_rows(pr);
            let lc = dst_desc.local_cols(pc);
            let mut panel = Vec::with_capacity(lr * lc);
            for li in 0..lr {
                let gi = dst_desc.local_to_global_row(li, pr);
                for lj in 0..lc {
                    let gj = dst_desc.local_to_global_col(lj, pc);
                    panel.push(full[gi * dst_desc.n + gj]);
                }
            }
            if r == 0 {
                let mut out = DistMatrix::new(dst_desc, 0, 0);
                out.set_local_data(panel);
                return Some(out);
            }
            comm.send(r, TAG_CKPT_SCATTER, &panel);
        }
        unreachable!("loop returns at r == 0");
    } else if me < q {
        let panel: Vec<T> = comm.recv(0, TAG_CKPT_SCATTER);
        let mut out = DistMatrix::new(dst_desc, me / dst_desc.npcol, me % dst_desc.npcol);
        out.set_local_data(panel);
        Some(out)
    } else {
        None
    }
}

/// Analytic cost of checkpoint-based redistribution for an `m × n` matrix
/// of `elem_size`-byte elements moving from `p` to `q` processes.
///
/// The funnel through rank 0 serializes (P-1 receives + Q-1 sends at the
/// root NIC) and the disk adds a write + read of the full volume.
pub fn checkpoint_cost(
    m: usize,
    n: usize,
    elem_size: usize,
    p: usize,
    q: usize,
    net: &NetModel,
    params: &CheckpointParams,
) -> f64 {
    let volume = (m * n * elem_size) as f64;
    // Fractions of the matrix not already resident on rank 0 (approximate:
    // 1/p of the data is local to the root before, 1/q after).
    let inbound = volume * (1.0 - 1.0 / p as f64);
    let outbound = volume * (1.0 - 1.0 / q as f64);
    let wire = if net.bandwidth.is_finite() {
        (inbound + outbound) / net.bandwidth
    } else {
        0.0
    };
    let msgs = (p.saturating_sub(1) + q.saturating_sub(1)) as f64;
    wire + msgs * (net.latency + 2.0 * net.overhead)
        + volume / params.disk_write_bw
        + volume / params.disk_read_bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use reshape_mpisim::{NetModel, Universe};

    fn round_trip_via_checkpoint(file: bool) {
        let uni = Universe::new(4, 1, NetModel::ideal());
        let tmp = file.then(|| std::env::temp_dir().join(format!("reshape-ckpt-{}.bin", std::process::id())));
        uni.launch(4, None, "ckpt", move |comm| {
            let s = Descriptor::square(12, 2, 2, 2);
            let d = Descriptor::square(12, 2, 1, 4);
            let me = comm.rank();
            let src =
                DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i * 1000 + j) as f64);
            let out = checkpoint_redistribute(
                &comm,
                s,
                d,
                Some(&src),
                &CheckpointParams::default(),
                tmp.as_deref(),
            )
            .expect("all 4 ranks are in the destination grid");
            for li in 0..out.local_rows() {
                let gi = d.local_to_global_row(li, out.myrow);
                for lj in 0..out.local_cols() {
                    let gj = d.local_to_global_col(lj, out.mycol);
                    assert_eq!(out.get_local(li, lj), (gi * 1000 + gj) as f64);
                }
            }
        })
        .join_ok();
    }

    #[test]
    fn checkpoint_preserves_data_in_memory() {
        round_trip_via_checkpoint(false);
    }

    #[test]
    fn checkpoint_preserves_data_through_real_file() {
        round_trip_via_checkpoint(true);
    }

    #[test]
    fn checkpoint_file_removed_after_success() {
        let tmp = std::env::temp_dir().join(format!("reshape-ckpt-clean-{}.bin", std::process::id()));
        let uni = Universe::new(2, 1, NetModel::ideal());
        let path = tmp.clone();
        uni.launch(2, None, "ckpt-clean", move |comm| {
            let s = Descriptor::square(8, 2, 1, 2);
            let d = Descriptor::square(8, 2, 2, 1);
            let me = comm.rank();
            let src = DistMatrix::from_fn(s, 0, me, |i, j| (i * 9 + j) as f64);
            checkpoint_redistribute(
                &comm,
                s,
                d,
                Some(&src),
                &CheckpointParams::default(),
                Some(&path),
            )
            .expect("both ranks are in the destination grid");
        })
        .join_ok();
        assert!(!tmp.exists(), "checkpoint file must be cleaned up on success");
    }

    #[test]
    fn shrink_through_checkpoint() {
        let uni = Universe::new(4, 1, NetModel::ideal());
        uni.launch(4, None, "ckpt-shrink", |comm| {
            let s = Descriptor::square(8, 2, 2, 2);
            let d = Descriptor::square(8, 2, 1, 2);
            let me = comm.rank();
            let src = DistMatrix::from_fn(s, me / 2, me % 2, |i, j| (i + j) as f64);
            let out = checkpoint_redistribute(
                &comm,
                s,
                d,
                Some(&src),
                &CheckpointParams::default(),
                None,
            );
            if me < 2 {
                let out = out.unwrap();
                for li in 0..out.local_rows() {
                    let gi = d.local_to_global_row(li, out.myrow);
                    for lj in 0..out.local_cols() {
                        let gj = d.local_to_global_col(lj, out.mycol);
                        assert_eq!(out.get_local(li, lj), (gi + gj) as f64);
                    }
                }
            } else {
                assert!(out.is_none(), "departing ranks get no panel");
            }
        })
        .join_ok();
    }

    #[test]
    fn checkpoint_charges_virtual_disk_time() {
        let uni = Universe::new(2, 1, NetModel::ideal());
        uni.launch(2, None, "ckpt-time", |comm| {
            let s = Descriptor::square(64, 8, 1, 2);
            let d = Descriptor::square(64, 8, 2, 1);
            let me = comm.rank();
            let src = DistMatrix::from_fn(s, 0, me, |i, j| (i * j) as f64);
            let t0 = comm.vtime();
            checkpoint_redistribute(&comm, s, d, Some(&src), &CheckpointParams::default(), None);
            if me == 0 {
                let vol = (64 * 64 * 8) as f64;
                let expect = vol / 60e6 + vol / 80e6;
                assert!(comm.vtime() - t0 >= expect * 0.99);
            }
        })
        .join_ok();
    }

    #[test]
    fn checkpoint_cost_exceeds_schedule_cost() {
        // The whole point of the paper's Figure 3(b).
        let net = NetModel::gigabit_ethernet();
        let params = CheckpointParams::default();
        let ck = checkpoint_cost(8000, 8000, 8, 4, 8, &net, &params);
        let plan = crate::plan_2d(
            Descriptor::square(8000, 100, 2, 2),
            Descriptor::square(8000, 100, 2, 4),
        );
        let rd = crate::evaluate_2d(&plan, 8, &net).seconds;
        assert!(
            ck > 3.0 * rd,
            "checkpointing ({ck:.2}s) should dwarf schedule redistribution ({rd:.2}s)"
        );
    }
}
