//! 1-D block-cyclic redistribution schedules (Park et al., table-based).
//!
//! An `n`-element array in blocks of `b` lives block-cyclically on `p`
//! processes: block `k` belongs to source process `k mod p`. It must move to
//! the layout over `q` processes where block `k` belongs to `k mod q`.
//!
//! The destination-processor table is periodic with period `L = lcm(p, q)`
//! blocks and has generalized-circulant structure: the `j`-th block-row of
//! source `s` (blocks `s + j·p + m·L` for all `m`) goes to destination
//! `(s + j·p) mod q`. Fixing `j` and sweeping `s` hits destinations that are
//! distinct **mod q**, so slicing the sources into groups of `q` yields
//! steps that are partial permutations: every process sends at most one
//! message and receives at most one message per step — a contention-free
//! schedule. All blocks moving between one (source, destination) pair in a
//! step travel in a single coalesced message.

/// One coalesced message of a schedule step: `src` (rank in the old layout)
/// sends the listed global block indices to `dst` (rank in the new layout).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transfer1d {
    pub src: usize,
    pub dst: usize,
    /// Global block indices carried by this message, ascending.
    pub blocks: Vec<usize>,
}

/// A complete 1-D redistribution schedule.
#[derive(Clone, Debug)]
pub struct Redist1d {
    /// Total elements.
    pub n: usize,
    /// Block size in elements (unchanged by the move, as in the paper).
    pub b: usize,
    /// Source process count.
    pub p: usize,
    /// Destination process count.
    pub q: usize,
    /// Schedule: `steps[t]` is the set of messages of step `t`, each step a
    /// partial permutation of processes.
    pub steps: Vec<Vec<Transfer1d>>,
}

impl Redist1d {
    /// Total number of blocks (the last one possibly partial).
    pub fn nblocks(&self) -> usize {
        self.n.div_ceil(self.b)
    }

    /// Element count of global block `k` (handles the ragged last block).
    pub fn block_len(&self, k: usize) -> usize {
        let start = k * self.b;
        assert!(start < self.n, "block {k} out of range");
        (self.n - start).min(self.b)
    }

    /// Bytes moved by a transfer, given the element size.
    pub fn transfer_bytes(&self, t: &Transfer1d, elem_size: usize) -> usize {
        t.blocks.iter().map(|&k| self.block_len(k) * elem_size).sum()
    }

    /// Total bytes that cross the network (excludes src == dst transfers,
    /// which are local copies).
    pub fn network_bytes(&self, elem_size: usize) -> usize {
        self.steps
            .iter()
            .flatten()
            .filter(|t| t.src != t.dst)
            .map(|t| self.transfer_bytes(t, elem_size))
            .sum()
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Build the contention-free schedule for moving an `n`-element array with
/// block size `b` from `p` to `q` processes.
///
/// Blocks whose source and destination rank coincide still appear in the
/// schedule (the executor turns them into local copies); they are assigned
/// to steps like any other transfer so step-permutation invariants hold
/// uniformly.
pub fn plan_1d(n: usize, b: usize, p: usize, q: usize) -> Redist1d {
    assert!(b > 0 && p > 0 && q > 0, "degenerate redistribution");
    let nblocks = n.div_ceil(b);
    let period = lcm(p, q);
    // j indexes the block-rows of the source table within one period.
    let rows_per_period = period / p;
    // Sources are sliced into ⌈p/q⌉ groups of ≤ q to keep destinations
    // distinct within a step.
    let src_groups = p.div_ceil(q);
    let mut steps: Vec<Vec<Transfer1d>> = Vec::with_capacity(rows_per_period * src_groups);
    for j in 0..rows_per_period {
        for r in 0..src_groups {
            let mut step = Vec::new();
            for s in (r * q)..((r + 1) * q).min(p) {
                // Blocks of source s in block-row j across all periods.
                let first = s + j * p;
                if first >= nblocks {
                    continue;
                }
                let blocks: Vec<usize> = (first..nblocks).step_by(period).collect();
                if blocks.is_empty() {
                    continue;
                }
                let dst = first % q;
                step.push(Transfer1d { src: s, dst, blocks });
            }
            if !step.is_empty() {
                steps.push(step);
            }
        }
    }
    Redist1d { n, b, p, q, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// Check the two core schedule invariants: completeness (every block
    /// moved exactly once, to the right place) and contention-freedom
    /// (per-step partial permutation).
    fn check_schedule(plan: &Redist1d) {
        let nblocks = plan.nblocks();
        let mut moved = vec![false; nblocks];
        for step in &plan.steps {
            let mut senders = HashSet::new();
            let mut receivers = HashSet::new();
            for t in step {
                assert!(senders.insert(t.src), "source {} sends twice in a step", t.src);
                assert!(
                    receivers.insert(t.dst),
                    "destination {} receives twice in a step",
                    t.dst
                );
                for &k in &t.blocks {
                    assert!(k < nblocks);
                    assert_eq!(k % plan.p, t.src, "block {k} not owned by its sender");
                    assert_eq!(k % plan.q, t.dst, "block {k} sent to the wrong owner");
                    assert!(!moved[k], "block {k} moved twice");
                    moved[k] = true;
                }
            }
        }
        assert!(moved.iter().all(|&m| m), "some block was never moved");
    }

    #[test]
    fn expand_2_to_4() {
        let plan = plan_1d(16, 2, 2, 4);
        check_schedule(&plan);
        // p <= q: one source group, lcm/p = 2 block-rows → ≤ 2 steps.
        assert!(plan.steps.len() <= 2);
    }

    #[test]
    fn shrink_4_to_2() {
        let plan = plan_1d(16, 2, 4, 2);
        check_schedule(&plan);
        // p > q: sources sliced into 2 groups per block-row.
        for step in &plan.steps {
            assert!(step.len() <= 2, "no more than q messages per step");
        }
    }

    #[test]
    fn coprime_counts() {
        let plan = plan_1d(35, 1, 5, 7);
        check_schedule(&plan);
    }

    #[test]
    fn identical_counts_is_pure_local() {
        let plan = plan_1d(12, 2, 3, 3);
        check_schedule(&plan);
        // Every transfer is src == dst (layout unchanged).
        for step in &plan.steps {
            for t in step {
                assert_eq!(t.src, t.dst);
            }
        }
        assert_eq!(plan.network_bytes(8), 0);
    }

    #[test]
    fn ragged_last_block() {
        let plan = plan_1d(10, 4, 2, 3);
        check_schedule(&plan);
        assert_eq!(plan.nblocks(), 3);
        assert_eq!(plan.block_len(2), 2);
        assert_eq!(plan.block_len(0), 4);
    }

    #[test]
    fn single_source_fanout() {
        let plan = plan_1d(64, 4, 1, 8);
        check_schedule(&plan);
        // One source: every step has exactly one message.
        for step in &plan.steps {
            assert_eq!(step.len(), 1);
        }
    }

    #[test]
    fn fan_in_to_one() {
        let plan = plan_1d(64, 4, 8, 1);
        check_schedule(&plan);
        // One destination: each step carries exactly one message.
        for step in &plan.steps {
            assert_eq!(step.len(), 1);
        }
    }

    #[test]
    fn message_coalescing_across_periods() {
        // lcm(2,3)=6 blocks per period; 24 blocks = 4 periods. Each
        // transfer must carry its block from all 4 periods in one message.
        let plan = plan_1d(24, 1, 2, 3);
        check_schedule(&plan);
        for step in &plan.steps {
            for t in step {
                assert_eq!(t.blocks.len(), 4, "blocks from all periods coalesced");
            }
        }
    }

    #[test]
    fn fewer_blocks_than_procs() {
        let plan = plan_1d(3, 1, 8, 2);
        check_schedule(&plan);
    }

    proptest! {
        #[test]
        fn schedules_are_complete_and_contention_free(
            n in 1usize..4000,
            b in 1usize..32,
            p in 1usize..13,
            q in 1usize..13,
        ) {
            check_schedule(&plan_1d(n, b, p, q));
        }

        #[test]
        fn step_count_is_bounded(
            b in 1usize..8,
            p in 1usize..13,
            q in 1usize..13,
        ) {
            // With enough data the step count equals (lcm/p) * ceil(p/q):
            // the table height times the source-group slicing.
            let period = {
                fn gcd(a: usize, b: usize) -> usize { if b == 0 { a } else { gcd(b, a % b) } }
                p / gcd(p, q) * q
            };
            let n = period * b * 2; // two full periods
            let plan = plan_1d(n, b, p, q);
            prop_assert_eq!(plan.steps.len(), (period / p) * p.div_ceil(q));
        }
    }
}
